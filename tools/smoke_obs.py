#!/usr/bin/env python3
"""End-to-end observability smoke (``make smoke-obs``).

The telemetry loop as an operator would drive it, across real processes:

* a **server** (``python -m repro serve``) with its structured JSON request
  log on stderr;
* a few **clients** (``python -m repro query``) issuing traced requests —
  the same box read twice, so the second lands in the warm chunk cache;
* the **stats verb** (``python -m repro stats``) pulling the live registry
  snapshot over the wire, once as JSON and once as Prometheus text.

The driver asserts the snapshot shows the traffic it just generated
(nonzero cache hits, IO bytes, per-op latency bucket counts), that the
Prometheus rendering carries the histogram exposition, and that the
server's request log has one parseable line per request with latency,
cache-hit-ratio and a trace ID — the second read visibly warmer than the
first.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

FIELD = "baryon_density"
BOX = "0:15,0:15,0:15"


def python_cmd(*args: str) -> list:
    return [sys.executable, *args]


def run(env, *args: str) -> subprocess.CompletedProcess:
    proc = subprocess.run(python_cmd("-m", "repro", *args), env=env,
                          capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        print(f"repro {' '.join(args)} failed:\n{proc.stdout}\n{proc.stderr}",
              file=sys.stderr)
        raise SystemExit(1)
    return proc


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="smoke-obs-")
    plotfile = os.path.join(workdir, "plt.h5z")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    server = None
    try:
        run(env, "compress", "--preset", "nyx_1", plotfile)

        # ---- server on an ephemeral port, request log on stderr ---------
        server = subprocess.Popen(
            python_cmd("-m", "repro", "serve", "--port", "0"),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        ready = server.stdout.readline()
        match = re.search(r"serving on [\w.]+:(\d+)", ready)
        if not match:
            print(f"server never came up: {ready!r}", file=sys.stderr)
            return 1
        port = match.group(1)

        # ---- traced traffic: the repeat read must hit the warm cache ----
        for _ in range(2):
            run(env, "query", "read-field", plotfile, "--port", port,
                "--field", FIELD, "--box", BOX)
        run(env, "query", "ping", "--port", port)

        # ---- the stats verb, JSON form ----------------------------------
        snapshot = json.loads(
            run(env, "stats", f":{port}", "--json").stdout)
        registry = snapshot["registry"]
        assert registry["repro_cache_hits_total"]["samples"][0]["value"] > 0, \
            "warm repeat read produced no cache hits"
        assert registry["repro_io_bytes_read_total"]["samples"][0]["value"] > 0
        latency = {s["labels"]["op"]: s
                   for s in registry["repro_server_request_seconds"]["samples"]}
        assert latency["read_field"]["count"] == 2, latency.keys()
        assert latency["ping"]["count"] == 1
        assert sum(n for _, n in latency["read_field"]["buckets"]) > 0, \
            "read_field latency landed in no bucket"

        # ---- and the Prometheus text form -------------------------------
        prom = run(env, "stats", f":{port}", "--prom").stdout
        assert "# TYPE repro_server_request_seconds histogram" in prom
        assert re.search(
            r'repro_server_request_seconds_bucket\{op="read_field",le="[^"]+"}',
            prom), "no per-op latency buckets in the exposition"
        assert 'repro_server_requests_total{op="ping"} 1' in prom

        # ---- the request log: one parseable line per request ------------
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()
        records = [json.loads(line)
                   for line in server.stderr.read().splitlines()
                   if line.startswith("{")]
        reads = [r for r in records if r.get("op") == "read_field"]
        assert len(reads) == 2, f"expected 2 read_field log lines: {records}"
        for record in reads:
            assert record["ok"] is True
            assert record["latency_ms"] >= 0
            assert re.fullmatch(r"[0-9a-f]{16}", record["trace"])
        assert reads[1]["cache_hit_rate"] > reads[0]["cache_hit_rate"], \
            "the repeat read did not show up warmer in the request log"

        print(f"smoke-obs ok: {len(records)} logged requests, "
              f"cache hits visible in stats, per-op latency histograms "
              "rendered in both JSON and Prometheus form")
        return 0
    finally:
        if server is not None and server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""End-to-end HTTP gateway smoke (``make smoke-http``).

The gateway as an operator would deploy it, across real processes:

* a **server** (``python -m repro serve --http 0``) running TCP and HTTP
  over one shared request core, with bearer-token auth and a request-size
  limit on both transports;
* **curl-equivalent requests** (stdlib urllib, no CLI shortcuts) against
  ``/healthz``, ``/v1/query``, ``/v1/describe`` and ``/metrics``;
* the **query CLI over HTTP** (``python -m repro query --http``) reading a
  box through the gateway;
* **negative paths**: a missing token must get 401, a wrong token 401, an
  oversized body 413, an unknown op 404 — each with the structured JSON
  error envelope, and the same refusals on the TCP port.

The driver asserts an HTTP-served box read is byte-identical to the same
read over TCP, and that ``/metrics`` serves the Prometheus exposition with
the per-op counters the traffic just generated.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request

FIELD = "baryon_density"
BOX = "0:15,0:15,0:15"
TOKEN = "smoke-http-token"


def python_cmd(*args: str) -> list:
    return [sys.executable, *args]


def run(env, *args: str) -> subprocess.CompletedProcess:
    proc = subprocess.run(python_cmd("-m", "repro", *args), env=env,
                          capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        print(f"repro {' '.join(args)} failed:\n{proc.stdout}\n{proc.stderr}",
              file=sys.stderr)
        raise SystemExit(1)
    return proc


def http(port: str, method: str, path: str, body=None, token=None,
         expect: int = 200) -> dict:
    """One raw HTTP exchange; asserts the status and decodes the JSON body."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            status, raw = resp.status, resp.read()
    except urllib.error.HTTPError as err:
        status, raw = err.code, err.read()
    assert status == expect, \
        f"{method} {path}: HTTP {status}, expected {expect}: {raw[:300]!r}"
    try:
        return json.loads(raw.decode("utf-8"))
    except ValueError:
        return {"_raw": raw.decode("utf-8", "replace")}


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="smoke-http-")
    plotfile = os.path.join(workdir, "plt.h5z")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    env["SMOKE_HTTP_TOKEN"] = TOKEN
    server = None
    try:
        run(env, "compress", "--preset", "nyx_1", plotfile)

        # ---- one process, both transports, one auth policy ---------------
        server = subprocess.Popen(
            python_cmd("-m", "repro", "serve", "--port", "0", "--http", "0",
                       "--auth-token", "env:SMOKE_HTTP_TOKEN",
                       "--max-request-bytes", "1048576"),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        ready = server.stdout.readline()
        match = re.search(r"serving on [\w.]+:(\d+)", ready)
        if not match:
            print(f"server never came up: {ready!r}", file=sys.stderr)
            return 1
        tcp_port = match.group(1)
        ready = server.stdout.readline()
        match = re.search(r"http gateway on [\w.]+:(\d+)", ready)
        if not match:
            print(f"gateway never came up: {ready!r}", file=sys.stderr)
            return 1
        port = match.group(1)

        # ---- the happy paths ---------------------------------------------
        health = http(port, "GET", "/healthz")
        assert health["ok"] is True, health

        pong = http(port, "POST", "/v1/query",
                    body={"id": 1, "op": "ping"}, token=TOKEN)
        assert pong["ok"] is True and pong["result"]["pong"] is True, pong

        described = http(port, "POST", "/v1/describe",
                         body={"path": plotfile}, token=TOKEN)
        assert FIELD in described["result"]["fields"], described

        # ---- the negative paths: structured refusals with status codes ---
        missing = http(port, "POST", "/v1/query", body={"op": "ping"},
                       expect=401)
        assert missing["kind"] == "unauthorized", missing
        wrong = http(port, "POST", "/v1/query", body={"op": "ping"},
                     token="not-the-token", expect=401)
        assert wrong["kind"] == "unauthorized", wrong
        huge = http(port, "POST", "/v1/query",
                    body={"op": "ping", "junk": "x" * 2_000_000},
                    token=TOKEN, expect=413)
        assert huge["kind"] == "oversized_request", huge
        unknown = http(port, "POST", "/v1/florble", body={},
                       token=TOKEN, expect=404)
        assert unknown["kind"] == "unknown_op", unknown

        # ---- the same policy on the TCP port (one shared core) -----------
        proc = subprocess.run(
            python_cmd("-m", "repro", "query", "ping", "--port", tcp_port),
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 1, "tokenless TCP query was not refused"
        assert "authentication required" in proc.stderr, proc.stderr
        run(env, "query", "ping", "--port", tcp_port,
            "--auth-token", "env:SMOKE_HTTP_TOKEN")

        # ---- reads: HTTP vs TCP byte-identical through the CLIs ----------
        via_http = run(env, "query", "read-field", plotfile, "--http",
                       "--port", port, "--auth-token", "env:SMOKE_HTTP_TOKEN",
                       "--field", FIELD, "--box", BOX, "--json").stdout
        via_tcp = run(env, "query", "read-field", plotfile,
                      "--port", tcp_port, "--auth-token",
                      "env:SMOKE_HTTP_TOKEN",
                      "--field", FIELD, "--box", BOX, "--json").stdout
        assert json.loads(via_http) == json.loads(via_tcp), \
            "HTTP and TCP reads disagree"

        # ---- /metrics: the Prometheus exposition, live -------------------
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/metrics",
            headers={"Authorization": f"Bearer {TOKEN}"})
        with urllib.request.urlopen(request, timeout=60) as resp:
            assert resp.status == 200
            ctype = resp.headers["Content-Type"]
            prom = resp.read().decode("utf-8")
        assert ctype.startswith("text/plain"), ctype
        assert "# TYPE repro_server_requests_total counter" in prom
        assert 'repro_server_requests_total{op="ping"}' in prom
        assert re.search(
            r'repro_server_request_seconds_bucket\{op="read_field",le="[^"]+"}',
            prom), "no per-op latency buckets in the exposition"
        # refusals from both transports share one error counter
        assert 'repro_server_errors_total{kind="unauthorized"}' in prom
        # and /metrics itself requires the token
        http(port, "GET", "/metrics", expect=401)

        print("smoke-http ok: shared-core gateway served health/query/"
              "describe/metrics; 401/413/404 refused with structured "
              "envelopes; HTTP read identical to TCP read")
        return 0
    finally:
        if server is not None and server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

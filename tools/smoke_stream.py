#!/usr/bin/env python3
"""End-to-end live-streaming smoke (``make smoke-stream``).

Three real processes, the in situ deployment shape:

* a **producer** appending a small nyx series step by step through the
  crash-safe journal (``SeriesWriter(append=True)``), sleeping between
  dumps like a simulation would;
* a **server** (``python -m repro serve``) watching the live directory;
* a **subscriber** (``python -m repro query follow``) streaming one JSON
  line per committed step, each paired with a box read.

The driver asserts the subscriber saw every step exactly once in order plus
the finalized event, then runs ``repro series-verify`` over the finalized
directory — proving the journal left a byte-compatible plain series behind.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

NSTEPS = 5
FIELD = "baryon_density"

PRODUCER = """
import os, time
from repro.apps.nyx import NyxSimulation
from repro.series.writer import SeriesWriter

sim = NyxSimulation(coarse_shape=(24, 24, 24), nranks=2,
                    target_fine_density=0.03, max_grid_size=12, seed=7,
                    drift_rate=0.05, growth_rate=0.02, regrid_interval=4)
with SeriesWriter({directory!r}, keyframe_interval=3, error_bound=1e-3,
                  append=True,
                  backend=os.environ.get("REPRO_BACKEND")) as writer:
    for hierarchy in sim.run({nsteps}):
        writer.append(hierarchy)
        print("committed step", writer.nsteps - 1, flush=True)
        time.sleep(0.3)
print("producer done", flush=True)
"""


def python_cmd(*args: str) -> list:
    return [sys.executable, *args]


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="smoke-stream-")
    directory = os.path.join(workdir, "run")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    server = producer = None
    try:
        # ---- server on an ephemeral port --------------------------------
        server = subprocess.Popen(
            python_cmd("-m", "repro", "serve", "--port", "0",
                       "--watch-interval", "0.1"),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        ready = server.stdout.readline()
        match = re.search(r"serving on [\w.]+:(\d+)", ready)
        if not match:
            print(f"server never came up: {ready!r}", file=sys.stderr)
            return 1
        port = match.group(1)

        # ---- producer: journal commits with a dump cadence --------------
        producer = subprocess.Popen(
            python_cmd("-c", PRODUCER.format(directory=directory,
                                             nsteps=NSTEPS)),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        # wait for the first commit so `follow` finds a series directory
        journal = os.path.join(directory, "series.journal")
        deadline = time.time() + 120
        while not os.path.exists(journal) and time.time() < deadline:
            if producer.poll() is not None:
                print("producer died before its first commit:\n"
                      + producer.stdout.read(), file=sys.stderr)
                return 1
            time.sleep(0.05)

        # ---- subscriber: the follow verb, box reads included ------------
        follow = subprocess.run(
            python_cmd("-m", "repro", "query", "follow", directory,
                       "--port", port, "--field", FIELD,
                       "--box", "0:7,0:7,0:7"),
            env=env, capture_output=True, text=True, timeout=300)
        if follow.returncode != 0:
            print(f"follow failed:\n{follow.stdout}\n{follow.stderr}",
                  file=sys.stderr)
            return 1
        events = [json.loads(line) for line in follow.stdout.splitlines()
                  if line.startswith("{")]
        steps = [e["step_index"] for e in events if e["event"] == "step"]
        finalized = [e for e in events if e["event"] == "finalized"]
        assert steps == list(range(NSTEPS)), \
            f"expected steps 0..{NSTEPS - 1} exactly once, got {steps}"
        assert len(finalized) == 1, f"expected one finalized event: {events}"
        for e in events:
            if e["event"] == "step":
                assert e["shape"] == [8, 8, 8], e
                assert e["min"] <= e["mean"] <= e["max"], e

        if producer.wait(timeout=120) != 0:
            print("producer failed:\n" + producer.stdout.read(),
                  file=sys.stderr)
            return 1

        # ---- the finalized directory is a plain, verifiable series ------
        verify = subprocess.run(
            python_cmd("-m", "repro", "series-verify", directory),
            env=env, capture_output=True, text=True, timeout=300)
        if verify.returncode != 0:
            print(f"series-verify failed:\n{verify.stdout}\n{verify.stderr}",
                  file=sys.stderr)
            return 1
        print(f"smoke-stream ok: {NSTEPS} steps streamed exactly once, "
              "finalized series verified")
        return 0
    finally:
        for proc in (producer, server):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

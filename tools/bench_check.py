#!/usr/bin/env python3
"""The benchmark-regression gate: fresh BENCH_*.json vs committed baselines.

``make bench`` leaves one pytest-benchmark JSON per suite in the repo root
(``BENCH_entropy.json``, ``BENCH_writer.json``, ...).  This tool compares the
*median* of every benchmark in those files against the committed reference
copies under ``benchmarks/baselines/`` and fails (exit 1) when any median
regressed beyond the tolerance (default 25%), printing a per-benchmark delta
table either way.

Matching is by file name and benchmark name.  A benchmark present only in the
fresh results is reported as ``new`` (not a failure — baselines are updated
with ``--update``); one present only in the baseline is reported as
``missing`` and *does* fail, because a silently dropped benchmark would
otherwise disable its own gate.  A fresh file that does not exist at all is
skipped with a notice (``make bench`` degrades to plain pytest runs when
pytest-benchmark is absent, producing no JSON).

On top of the per-median regression gate, the tool asserts the
**parallel-vs-serial speedups** declared in :data:`SPEEDUP_TARGETS`: within
one fresh suite, the pooled benchmark's median must beat its serial sibling
by the target factor.  It also asserts the **remote-read targets** on the
fresh ``BENCH_remote.json`` (see :func:`check_remote`): request coalescing
must cut the full read's round-trips by at least
:data:`REMOTE_COALESCING_MIN`, and the progressive ``max_level=0`` probe must
fetch at most :data:`REMOTE_PROBE_BYTES_MAX` of the full read's bytes in at
most :data:`REMOTE_PROBE_TIME_MAX` of its wall time.  The **live-streaming
targets** on the fresh ``BENCH_stream.json`` (see :func:`check_stream`) hold
the journal to its point: a live ``refresh()`` must be at least
:data:`STREAM_REFRESH_MIN` times cheaper than a full reopen, and a
subscriber's mean commit-to-event lag must stay under
:data:`STREAM_LAG_MAX_SECONDS`.  The **observability-overhead target** on the
fresh ``BENCH_obs.json`` (see :func:`check_obs`) holds the metrics layer to
its pull-model promise: warm batched reads on an instrumented engine may
cost at most :data:`OBS_OVERHEAD_MAX` (5%) over the same reads with
``NULL_REGISTRY``.  The **HTTP-gateway target** on the fresh
``BENCH_http.json`` (see :func:`check_http`) holds the second transport to
its thin-shell promise: warm batched reads over the HTTP/JSON gateway may
cost at most :data:`HTTP_OVERHEAD_MAX` (2x) the same reads over the TCP
transport, both served by one shared request core and warm cache.  The
speedup target is declared for a 4-core machine and
auto-scales to the *recording* machine's core count (stamped into each
benchmark's ``extra_info.cpu_count`` by the perf conftest): below 2 cores it
relaxes to "no worse than serial", and when the fresh run's machine has
fewer cores than the baseline's the assertion is skipped with a printed
notice — a smaller box cannot be asked to reproduce a bigger box's speedup.

Deliberately dependency-free (stdlib only) so CI can run it before/without
installing the package.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, List, Optional, Tuple

#: default locations, relative to the repo root (= this file's parent's parent)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")
DEFAULT_TOLERANCE = 0.25

OK = "ok"
REGRESSED = "REGRESSED"
IMPROVED = "improved"
NEW = "new"
MISSING = "MISSING"

#: the core count the speedup targets below are declared for
SPEEDUP_REFERENCE_CORES = 4
#: (suite, parallel benchmark, serial benchmark, speedup target at 4 cores)
SPEEDUP_TARGETS: List[Tuple[str, str, str, float]] = [
    ("writer", "test_writer_plotfile_nyx1_shm_backend[sz_lr]",
     "test_writer_plotfile_nyx1[sz_lr]", 3.0),
    ("writer", "test_writer_plotfile_nyx1_shm_backend[sz_interp]",
     "test_writer_plotfile_nyx1[sz_interp]", 3.0),
    ("reader", "test_reader_full_shm_backend", "test_reader_full_serial", 3.0),
]


def load_entries(path: str) -> Dict[str, dict]:
    """``name → {"median": seconds, "extra_info": {...}}`` of one JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ValueError(f"{path} is not a pytest-benchmark JSON file")
    out: Dict[str, dict] = {}
    for bench in payload["benchmarks"]:
        stats = bench.get("stats") or {}
        median = stats.get("median")
        if median is None:
            raise ValueError(
                f"{path}: benchmark {bench.get('name')!r} has no stats.median")
        out[str(bench["name"])] = {
            "median": float(median),
            "extra_info": dict(bench.get("extra_info") or {}),
        }
    return out


def load_medians(path: str) -> Dict[str, float]:
    """``benchmark name → median seconds`` of one pytest-benchmark JSON file."""
    return {name: entry["median"] for name, entry in load_entries(path).items()}


def compare_medians(baseline: Dict[str, float], fresh: Dict[str, float],
                    tolerance: float, suite: str = "") -> List[dict]:
    """Delta rows for one suite; a row's status is REGRESSED when the fresh
    median exceeds the baseline by more than ``tolerance`` (fractional)."""
    rows: List[dict] = []
    for name in sorted(set(baseline) | set(fresh)):
        base = baseline.get(name)
        new = fresh.get(name)
        if base is None:
            status, delta = NEW, None
        elif new is None:
            status, delta = MISSING, None
        else:
            delta = (new - base) / base if base > 0 else 0.0
            if delta > tolerance:
                status = REGRESSED
            elif delta < -tolerance:
                status = IMPROVED
            else:
                status = OK
        rows.append({
            "suite": suite, "benchmark": name,
            "baseline_ms": None if base is None else base * 1e3,
            "fresh_ms": None if new is None else new * 1e3,
            "delta": delta, "status": status,
        })
    return rows


def compare_directories(baseline_dir: str, fresh_dir: str,
                        tolerance: float) -> Tuple[List[dict], List[str]]:
    """Compare every ``BENCH_*.json`` under ``baseline_dir`` against
    ``fresh_dir``; returns (all delta rows, notices for skipped files)."""
    rows: List[dict] = []
    notices: List[str] = []
    names = sorted(n for n in os.listdir(baseline_dir)
                   if n.startswith("BENCH_") and n.endswith(".json")) \
        if os.path.isdir(baseline_dir) else []
    if not names:
        notices.append(f"no baselines under {baseline_dir}; nothing to check")
        return rows, notices
    for name in names:
        fresh_path = os.path.join(fresh_dir, name)
        suite = name[len("BENCH_"):-len(".json")]
        if not os.path.isfile(fresh_path):
            notices.append(
                f"{name}: no fresh results in {fresh_dir} (make bench "
                "without pytest-benchmark produces none); skipped")
            continue
        baseline = load_medians(os.path.join(baseline_dir, name))
        fresh = load_medians(fresh_path)
        rows.extend(compare_medians(baseline, fresh, tolerance, suite=suite))
    # fresh suites with no baseline at all are worth a notice too
    for name in sorted(os.listdir(fresh_dir)):
        if name.startswith("BENCH_") and name.endswith(".json") \
                and name not in names:
            notices.append(f"{name}: no committed baseline; run with --update "
                           "to adopt it")
    return rows, notices


def has_regression(rows: List[dict]) -> bool:
    return any(row["status"] in (REGRESSED, MISSING) for row in rows)


# ----------------------------------------------------------------------
# parallel-vs-serial speedup assertions
# ----------------------------------------------------------------------
def effective_speedup_target(target: float, cores: Optional[int]) -> float:
    """The speedup a machine with ``cores`` cores is held to.

    ``target`` is declared for :data:`SPEEDUP_REFERENCE_CORES` cores.  Below
    2 cores a process pool cannot beat serial at all, so the gate relaxes to
    "no worse than serial" (1.0); between 2 and the reference count the
    target scales linearly; an unknown core count is treated like 1 core
    (the conservative reading — never fail on missing metadata).
    """
    if cores is None or cores < 2:
        return 1.0
    if cores >= SPEEDUP_REFERENCE_CORES:
        return float(target)
    return 1.0 + (float(target) - 1.0) * (cores - 1) / (SPEEDUP_REFERENCE_CORES - 1)


def _entry_cores(entry: Optional[dict]) -> Optional[int]:
    if entry is None:
        return None
    cores = entry.get("extra_info", {}).get("cpu_count")
    return int(cores) if cores is not None else None


def check_speedups(baseline_dir: str, fresh_dir: str,
                   tolerance: float) -> Tuple[List[str], List[str], int]:
    """Assert every :data:`SPEEDUP_TARGETS` pair in the fresh results.

    Returns ``(result lines, notices, failures)``.  A pair whose fresh suite
    file or benchmarks are absent is a notice (the median comparator already
    flags genuinely dropped benchmarks); a fresh run recorded on fewer cores
    than the baseline machine skips the assertion with a notice.  The
    regression ``tolerance`` also pads the speedup requirement, so bench
    noise does not flake the gate.
    """
    lines: List[str] = []
    notices: List[str] = []
    failures = 0
    for suite, parallel_name, serial_name, target in SPEEDUP_TARGETS:
        filename = f"BENCH_{suite}.json"
        fresh_path = os.path.join(fresh_dir, filename)
        if not os.path.isfile(fresh_path):
            notices.append(
                f"speedup {suite}: no fresh {filename}; skipped")
            continue
        fresh = load_entries(fresh_path)
        par, ser = fresh.get(parallel_name), fresh.get(serial_name)
        if par is None or ser is None:
            missing = parallel_name if par is None else serial_name
            notices.append(
                f"speedup {suite}: {missing!r} not in fresh results; skipped")
            continue
        fresh_cores = _entry_cores(par)
        baseline_path = os.path.join(baseline_dir, filename)
        baseline_cores = None
        if os.path.isfile(baseline_path):
            baseline_cores = _entry_cores(
                load_entries(baseline_path).get(parallel_name))
        if fresh_cores is not None and baseline_cores is not None \
                and fresh_cores < baseline_cores:
            notices.append(
                f"speedup {suite}: recording machine has {fresh_cores} "
                f"core(s) but the baseline was recorded on {baseline_cores}; "
                f"skipping the {parallel_name!r} speedup assertion")
            continue
        if par["median"] <= 0:
            notices.append(
                f"speedup {suite}: {parallel_name!r} has a zero median; skipped")
            continue
        speedup = ser["median"] / par["median"]
        goal = effective_speedup_target(target, fresh_cores)
        required = goal * (1.0 - tolerance)
        ok = speedup >= required
        if not ok:
            failures += 1
        cores_note = f"{fresh_cores}" if fresh_cores is not None else "?"
        lines.append(
            f"speedup {suite}: {parallel_name} {speedup:.2f}x over "
            f"{serial_name} ({'ok' if ok else 'FAIL'}; target {goal:.2f}x "
            f"on {cores_note} core(s), required >= {required:.2f}x after "
            f"{tolerance:.0%} tolerance)")
    return lines, notices, failures


# ----------------------------------------------------------------------
# remote-read assertions (BENCH_remote.json)
# ----------------------------------------------------------------------
#: the remote suite's full-resolution read and its coarse progressive probe
REMOTE_SUITE = "remote"
REMOTE_FULL_BENCH = "test_remote_read_full"
REMOTE_PROBE_BENCH = "test_remote_probe_coarse"
#: the full read must save at least this many round-trips per issued read
REMOTE_COALESCING_MIN = 3.0
#: the max_level=0 probe vs the full read: bytes and wall-time ceilings
REMOTE_PROBE_BYTES_MAX = 0.25
REMOTE_PROBE_TIME_MAX = 0.50


def check_remote(fresh_dir: str) -> Tuple[List[str], List[str], int]:
    """Assert the remote-read targets on a fresh ``BENCH_remote.json``.

    Returns ``(result lines, notices, failures)`` like :func:`check_speedups`.
    A missing suite file, benchmark or ``extra_info`` counter downgrades the
    assertion to a notice — the median comparator already fails genuinely
    dropped benchmarks — so machines that cannot run the suite do not fail
    the gate for the wrong reason.
    """
    lines: List[str] = []
    notices: List[str] = []
    failures = 0
    fresh_path = os.path.join(fresh_dir, f"BENCH_{REMOTE_SUITE}.json")
    if not os.path.isfile(fresh_path):
        notices.append(
            f"remote: no fresh BENCH_{REMOTE_SUITE}.json; skipped")
        return lines, notices, failures
    entries = load_entries(fresh_path)
    full = entries.get(REMOTE_FULL_BENCH)
    probe = entries.get(REMOTE_PROBE_BENCH)
    if full is None or probe is None:
        missing = REMOTE_FULL_BENCH if full is None else REMOTE_PROBE_BENCH
        notices.append(
            f"remote: {missing!r} not in fresh results; skipped")
        return lines, notices, failures

    def _io(entry: dict, key: str) -> Optional[float]:
        value = entry["extra_info"].get(f"io_{key}")
        return None if value is None else float(value)

    requests = _io(full, "requests")
    coalesced = _io(full, "coalesced_requests")
    if requests is None or coalesced is None:
        notices.append(
            f"remote: {REMOTE_FULL_BENCH!r} carries no io_* extra_info; "
            "coalescing assertion skipped")
    else:
        factor = requests / max(coalesced, 1.0)
        ok = factor >= REMOTE_COALESCING_MIN
        failures += 0 if ok else 1
        lines.append(
            f"remote: full read coalescing {factor:.2f}x "
            f"({requests:.0f} ranges -> {coalesced:.0f} reads; "
            f"{'ok' if ok else 'FAIL'}; required >= "
            f"{REMOTE_COALESCING_MIN:.1f}x)")

    full_bytes, probe_bytes = _io(full, "bytes_read"), _io(probe, "bytes_read")
    if full_bytes is None or probe_bytes is None or full_bytes <= 0:
        notices.append(
            "remote: bytes_read missing from extra_info; probe byte "
            "assertion skipped")
    else:
        ratio = probe_bytes / full_bytes
        ok = ratio <= REMOTE_PROBE_BYTES_MAX
        failures += 0 if ok else 1
        lines.append(
            f"remote: max_level=0 probe fetched {ratio:.1%} of the full "
            f"read's bytes ({'ok' if ok else 'FAIL'}; required <= "
            f"{REMOTE_PROBE_BYTES_MAX:.0%})")

    if full["median"] <= 0:
        notices.append(
            f"remote: {REMOTE_FULL_BENCH!r} has a zero median; "
            "time-to-first-array assertion skipped")
    else:
        ratio = probe["median"] / full["median"]
        ok = ratio <= REMOTE_PROBE_TIME_MAX
        failures += 0 if ok else 1
        lines.append(
            f"remote: time-to-first-array {ratio:.1%} of the full read "
            f"({'ok' if ok else 'FAIL'}; required <= "
            f"{REMOTE_PROBE_TIME_MAX:.0%})")
    return lines, notices, failures


# ----------------------------------------------------------------------
# observability-overhead assertions (BENCH_obs.json)
# ----------------------------------------------------------------------
#: the obs suite's instrumented and opted-out warm batched reads
OBS_SUITE = "obs"
OBS_INSTRUMENTED_BENCH = "test_obs_warm_batched_instrumented"
OBS_NULL_BENCH = "test_obs_warm_batched_null_registry"
#: instrumented warm batched reads may cost at most 5% over NULL_REGISTRY
OBS_OVERHEAD_MAX = 1.05


def check_obs(fresh_dir: str) -> Tuple[List[str], List[str], int]:
    """Assert the metrics-overhead ceiling on a fresh ``BENCH_obs.json``.

    Returns ``(result lines, notices, failures)`` like :func:`check_stream`.
    The preferred signal is the ``obs_overhead_ratio`` the suite stamps into
    the instrumented benchmark's ``extra_info`` — interleaved min-of-N
    timing, far less noisy than two independently recorded medians — with
    the median ratio as a fallback when the stamp is absent.
    """
    lines: List[str] = []
    notices: List[str] = []
    failures = 0
    fresh_path = os.path.join(fresh_dir, f"BENCH_{OBS_SUITE}.json")
    if not os.path.isfile(fresh_path):
        notices.append(f"obs: no fresh BENCH_{OBS_SUITE}.json; skipped")
        return lines, notices, failures
    entries = load_entries(fresh_path)
    instrumented = entries.get(OBS_INSTRUMENTED_BENCH)
    null = entries.get(OBS_NULL_BENCH)
    if instrumented is None or null is None:
        missing = OBS_INSTRUMENTED_BENCH if instrumented is None \
            else OBS_NULL_BENCH
        notices.append(f"obs: {missing!r} not in fresh results; skipped")
        return lines, notices, failures
    ratio = instrumented["extra_info"].get("obs_overhead_ratio")
    how = "interleaved min-of-N"
    if ratio is None:
        if null["median"] <= 0:
            notices.append(
                f"obs: {OBS_NULL_BENCH!r} has a zero median and no "
                "obs_overhead_ratio extra_info; skipped")
            return lines, notices, failures
        ratio = instrumented["median"] / null["median"]
        how = "median ratio (no obs_overhead_ratio extra_info)"
    ratio = float(ratio)
    ok = ratio <= OBS_OVERHEAD_MAX
    failures += 0 if ok else 1
    lines.append(
        f"obs: metrics overhead {(ratio - 1.0) * 100:+.1f}% on warm batched "
        f"reads, {how} ({'ok' if ok else 'FAIL'}; required <= "
        f"+{(OBS_OVERHEAD_MAX - 1.0) * 100:.0f}%)")
    return lines, notices, failures


# ----------------------------------------------------------------------
# HTTP-gateway-overhead assertions (BENCH_http.json)
# ----------------------------------------------------------------------
#: the http suite's warm batched reads over each transport (one shared core)
HTTP_SUITE = "http"
HTTP_BENCH = "test_http_warm_batched"
HTTP_TCP_BENCH = "test_tcp_warm_batched"
#: warm batched reads over the HTTP gateway may cost at most 2x TCP
HTTP_OVERHEAD_MAX = 2.0


def check_http(fresh_dir: str) -> Tuple[List[str], List[str], int]:
    """Assert the gateway-overhead ceiling on a fresh ``BENCH_http.json``.

    Returns ``(result lines, notices, failures)`` like :func:`check_obs`.
    The preferred signal is the ``http_overhead_ratio`` the suite stamps
    into the HTTP benchmark's ``extra_info`` — interleaved min-of-N timing
    over one shared warm cache — with the median ratio as a fallback when
    the stamp is absent.
    """
    lines: List[str] = []
    notices: List[str] = []
    failures = 0
    fresh_path = os.path.join(fresh_dir, f"BENCH_{HTTP_SUITE}.json")
    if not os.path.isfile(fresh_path):
        notices.append(f"http: no fresh BENCH_{HTTP_SUITE}.json; skipped")
        return lines, notices, failures
    entries = load_entries(fresh_path)
    over_http = entries.get(HTTP_BENCH)
    over_tcp = entries.get(HTTP_TCP_BENCH)
    if over_http is None or over_tcp is None:
        missing = HTTP_BENCH if over_http is None else HTTP_TCP_BENCH
        notices.append(f"http: {missing!r} not in fresh results; skipped")
        return lines, notices, failures
    ratio = over_http["extra_info"].get("http_overhead_ratio")
    how = "interleaved min-of-N"
    if ratio is None:
        if over_tcp["median"] <= 0:
            notices.append(
                f"http: {HTTP_TCP_BENCH!r} has a zero median and no "
                "http_overhead_ratio extra_info; skipped")
            return lines, notices, failures
        ratio = over_http["median"] / over_tcp["median"]
        how = "median ratio (no http_overhead_ratio extra_info)"
    ratio = float(ratio)
    ok = ratio <= HTTP_OVERHEAD_MAX
    failures += 0 if ok else 1
    lines.append(
        f"http: gateway overhead {ratio:.2f}x TCP on warm batched reads, "
        f"{how} ({'ok' if ok else 'FAIL'}; required <= "
        f"{HTTP_OVERHEAD_MAX:.1f}x)")
    return lines, notices, failures


# ----------------------------------------------------------------------
# live-streaming assertions (BENCH_stream.json)
# ----------------------------------------------------------------------
#: the stream suite's full live reopen and its journal-tail refresh
STREAM_SUITE = "stream"
STREAM_REOPEN_BENCH = "test_stream_reopen_live"
STREAM_REFRESH_BENCH = "test_stream_refresh_noop"
STREAM_LAG_BENCH = "test_stream_follow_event_lag"
#: refresh must beat a full reopen of the live directory by at least this
STREAM_REFRESH_MIN = 5.0
#: a subscriber's mean commit-to-event lag ceiling (the suite polls at 50ms)
STREAM_LAG_MAX_SECONDS = 2.0


def check_stream(fresh_dir: str) -> Tuple[List[str], List[str], int]:
    """Assert the live-streaming targets on a fresh ``BENCH_stream.json``.

    Returns ``(result lines, notices, failures)`` like :func:`check_remote`.
    The journal exists so a follower pays a stat + head probe per poll
    instead of re-parsing the whole manifest — so the refresh median must be
    at least :data:`STREAM_REFRESH_MIN` times cheaper than a full reopen —
    and the subscriber's recorded commit-to-event lag must stay under
    :data:`STREAM_LAG_MAX_SECONDS`.  Missing files/benchmarks downgrade to
    notices (the median comparator already fails dropped benchmarks).
    """
    lines: List[str] = []
    notices: List[str] = []
    failures = 0
    fresh_path = os.path.join(fresh_dir, f"BENCH_{STREAM_SUITE}.json")
    if not os.path.isfile(fresh_path):
        notices.append(f"stream: no fresh BENCH_{STREAM_SUITE}.json; skipped")
        return lines, notices, failures
    entries = load_entries(fresh_path)
    reopen = entries.get(STREAM_REOPEN_BENCH)
    refresh = entries.get(STREAM_REFRESH_BENCH)
    if reopen is None or refresh is None:
        missing = STREAM_REOPEN_BENCH if reopen is None else STREAM_REFRESH_BENCH
        notices.append(f"stream: {missing!r} not in fresh results; skipped")
    elif refresh["median"] <= 0:
        notices.append(
            f"stream: {STREAM_REFRESH_BENCH!r} has a zero median; skipped")
    else:
        factor = reopen["median"] / refresh["median"]
        ok = factor >= STREAM_REFRESH_MIN
        failures += 0 if ok else 1
        lines.append(
            f"stream: live refresh {factor:.1f}x cheaper than a full reopen "
            f"({'ok' if ok else 'FAIL'}; required >= "
            f"{STREAM_REFRESH_MIN:.1f}x)")
    lag_entry = entries.get(STREAM_LAG_BENCH)
    lag = None if lag_entry is None else \
        lag_entry["extra_info"].get("mean_event_lag_seconds")
    if lag is None:
        notices.append(
            "stream: mean_event_lag_seconds missing from extra_info; "
            "lag assertion skipped")
    else:
        ok = float(lag) <= STREAM_LAG_MAX_SECONDS
        failures += 0 if ok else 1
        lines.append(
            f"stream: mean commit-to-event lag {float(lag) * 1e3:.0f}ms "
            f"({'ok' if ok else 'FAIL'}; required <= "
            f"{STREAM_LAG_MAX_SECONDS * 1e3:.0f}ms)")
    return lines, notices, failures


def format_rows(rows: List[dict]) -> str:
    """A fixed-width delta table (stdlib-only sibling of analysis.format_table)."""
    columns = ["suite", "benchmark", "baseline_ms", "fresh_ms", "delta", "status"]

    def fmt(row: dict, column: str) -> str:
        value = row[column]
        if value is None:
            return "-"
        if column in ("baseline_ms", "fresh_ms"):
            return f"{value:.3f}"
        if column == "delta":
            return f"{value:+.1%}"
        return str(value)

    table = [[fmt(row, c) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in table)) if table else len(c)
              for i, c in enumerate(columns)]
    lines = [" | ".join(c.ljust(w) for c, w in zip(columns, widths)),
             "-+-".join("-" * w for w in widths)]
    lines += [" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in table]
    return "\n".join(lines)


def update_baselines(baseline_dir: str, fresh_dir: str) -> List[str]:
    """Adopt every fresh ``BENCH_*.json`` as the new committed baseline."""
    os.makedirs(baseline_dir, exist_ok=True)
    adopted = []
    for name in sorted(os.listdir(fresh_dir)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            shutil.copyfile(os.path.join(fresh_dir, name),
                            os.path.join(baseline_dir, name))
            adopted.append(name)
    return adopted


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh benchmark medians regressed past the "
                    "committed baselines")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                        help="committed reference JSONs "
                             "(default benchmarks/baselines)")
    parser.add_argument("--fresh-dir", default=REPO_ROOT,
                        help="where make bench wrote BENCH_*.json "
                             "(default the repo root)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown per median "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--update", action="store_true",
                        help="adopt the fresh results as the new baselines "
                             "instead of checking")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    if args.update:
        adopted = update_baselines(args.baseline_dir, args.fresh_dir)
        if not adopted:
            print(f"no BENCH_*.json under {args.fresh_dir} to adopt",
                  file=sys.stderr)
            return 1
        for name in adopted:
            print(f"baseline updated: {name}")
        return 0

    rows, notices = compare_directories(args.baseline_dir, args.fresh_dir,
                                        args.tolerance)
    speedup_lines, speedup_notices, speedup_failures = check_speedups(
        args.baseline_dir, args.fresh_dir, args.tolerance)
    remote_lines, remote_notices, remote_failures = check_remote(args.fresh_dir)
    stream_lines, stream_notices, stream_failures = check_stream(args.fresh_dir)
    obs_lines, obs_notices, obs_failures = check_obs(args.fresh_dir)
    http_lines, http_notices, http_failures = check_http(args.fresh_dir)
    for notice in notices + speedup_notices + remote_notices \
            + stream_notices + obs_notices + http_notices:
        print(f"note: {notice}")
    if rows:
        print(format_rows(rows))
    for line in speedup_lines + remote_lines + stream_lines + obs_lines \
            + http_lines:
        print(line)
    bad = [row for row in rows if row["status"] in (REGRESSED, MISSING)]
    if bad or speedup_failures or remote_failures or stream_failures \
            or obs_failures or http_failures:
        parts = []
        if bad:
            parts.append(f"{len(bad)} benchmark(s) regressed beyond "
                         f"{args.tolerance:.0%} (or went missing)")
        if speedup_failures:
            parts.append(f"{speedup_failures} speedup assertion(s) failed")
        if remote_failures:
            parts.append(f"{remote_failures} remote-read assertion(s) failed")
        if stream_failures:
            parts.append(f"{stream_failures} streaming assertion(s) failed")
        if obs_failures:
            parts.append(f"{obs_failures} observability assertion(s) failed")
        if http_failures:
            parts.append(f"{http_failures} http-gateway assertion(s) failed")
        print(f"\nFAIL: " + "; ".join(parts))
        return 1
    checked = sum(1 for row in rows if row["status"] in (OK, IMPROVED))
    print(f"\nbench-check: {checked} benchmark(s) within {args.tolerance:.0%} "
          f"of baseline; {len(speedup_lines)} speedup, {len(remote_lines)} "
          f"remote-read, {len(stream_lines)} streaming, {len(obs_lines)} "
          f"observability and {len(http_lines)} http-gateway assertion(s) "
          "held")
    return 0


if __name__ == "__main__":
    sys.exit(main())

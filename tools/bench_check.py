#!/usr/bin/env python3
"""The benchmark-regression gate: fresh BENCH_*.json vs committed baselines.

``make bench`` leaves one pytest-benchmark JSON per suite in the repo root
(``BENCH_entropy.json``, ``BENCH_writer.json``, ...).  This tool compares the
*median* of every benchmark in those files against the committed reference
copies under ``benchmarks/baselines/`` and fails (exit 1) when any median
regressed beyond the tolerance (default 25%), printing a per-benchmark delta
table either way.

Matching is by file name and benchmark name.  A benchmark present only in the
fresh results is reported as ``new`` (not a failure — baselines are updated
with ``--update``); one present only in the baseline is reported as
``missing`` and *does* fail, because a silently dropped benchmark would
otherwise disable its own gate.  A fresh file that does not exist at all is
skipped with a notice (``make bench`` degrades to plain pytest runs when
pytest-benchmark is absent, producing no JSON).

Deliberately dependency-free (stdlib only) so CI can run it before/without
installing the package.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, List, Optional, Tuple

#: default locations, relative to the repo root (= this file's parent's parent)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")
DEFAULT_TOLERANCE = 0.25

OK = "ok"
REGRESSED = "REGRESSED"
IMPROVED = "improved"
NEW = "new"
MISSING = "MISSING"


def load_medians(path: str) -> Dict[str, float]:
    """``benchmark name → median seconds`` of one pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ValueError(f"{path} is not a pytest-benchmark JSON file")
    out: Dict[str, float] = {}
    for bench in payload["benchmarks"]:
        stats = bench.get("stats") or {}
        median = stats.get("median")
        if median is None:
            raise ValueError(
                f"{path}: benchmark {bench.get('name')!r} has no stats.median")
        out[str(bench["name"])] = float(median)
    return out


def compare_medians(baseline: Dict[str, float], fresh: Dict[str, float],
                    tolerance: float, suite: str = "") -> List[dict]:
    """Delta rows for one suite; a row's status is REGRESSED when the fresh
    median exceeds the baseline by more than ``tolerance`` (fractional)."""
    rows: List[dict] = []
    for name in sorted(set(baseline) | set(fresh)):
        base = baseline.get(name)
        new = fresh.get(name)
        if base is None:
            status, delta = NEW, None
        elif new is None:
            status, delta = MISSING, None
        else:
            delta = (new - base) / base if base > 0 else 0.0
            if delta > tolerance:
                status = REGRESSED
            elif delta < -tolerance:
                status = IMPROVED
            else:
                status = OK
        rows.append({
            "suite": suite, "benchmark": name,
            "baseline_ms": None if base is None else base * 1e3,
            "fresh_ms": None if new is None else new * 1e3,
            "delta": delta, "status": status,
        })
    return rows


def compare_directories(baseline_dir: str, fresh_dir: str,
                        tolerance: float) -> Tuple[List[dict], List[str]]:
    """Compare every ``BENCH_*.json`` under ``baseline_dir`` against
    ``fresh_dir``; returns (all delta rows, notices for skipped files)."""
    rows: List[dict] = []
    notices: List[str] = []
    names = sorted(n for n in os.listdir(baseline_dir)
                   if n.startswith("BENCH_") and n.endswith(".json")) \
        if os.path.isdir(baseline_dir) else []
    if not names:
        notices.append(f"no baselines under {baseline_dir}; nothing to check")
        return rows, notices
    for name in names:
        fresh_path = os.path.join(fresh_dir, name)
        suite = name[len("BENCH_"):-len(".json")]
        if not os.path.isfile(fresh_path):
            notices.append(
                f"{name}: no fresh results in {fresh_dir} (make bench "
                "without pytest-benchmark produces none); skipped")
            continue
        baseline = load_medians(os.path.join(baseline_dir, name))
        fresh = load_medians(fresh_path)
        rows.extend(compare_medians(baseline, fresh, tolerance, suite=suite))
    # fresh suites with no baseline at all are worth a notice too
    for name in sorted(os.listdir(fresh_dir)):
        if name.startswith("BENCH_") and name.endswith(".json") \
                and name not in names:
            notices.append(f"{name}: no committed baseline; run with --update "
                           "to adopt it")
    return rows, notices


def has_regression(rows: List[dict]) -> bool:
    return any(row["status"] in (REGRESSED, MISSING) for row in rows)


def format_rows(rows: List[dict]) -> str:
    """A fixed-width delta table (stdlib-only sibling of analysis.format_table)."""
    columns = ["suite", "benchmark", "baseline_ms", "fresh_ms", "delta", "status"]

    def fmt(row: dict, column: str) -> str:
        value = row[column]
        if value is None:
            return "-"
        if column in ("baseline_ms", "fresh_ms"):
            return f"{value:.3f}"
        if column == "delta":
            return f"{value:+.1%}"
        return str(value)

    table = [[fmt(row, c) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in table)) if table else len(c)
              for i, c in enumerate(columns)]
    lines = [" | ".join(c.ljust(w) for c, w in zip(columns, widths)),
             "-+-".join("-" * w for w in widths)]
    lines += [" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in table]
    return "\n".join(lines)


def update_baselines(baseline_dir: str, fresh_dir: str) -> List[str]:
    """Adopt every fresh ``BENCH_*.json`` as the new committed baseline."""
    os.makedirs(baseline_dir, exist_ok=True)
    adopted = []
    for name in sorted(os.listdir(fresh_dir)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            shutil.copyfile(os.path.join(fresh_dir, name),
                            os.path.join(baseline_dir, name))
            adopted.append(name)
    return adopted


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh benchmark medians regressed past the "
                    "committed baselines")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                        help="committed reference JSONs "
                             "(default benchmarks/baselines)")
    parser.add_argument("--fresh-dir", default=REPO_ROOT,
                        help="where make bench wrote BENCH_*.json "
                             "(default the repo root)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown per median "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--update", action="store_true",
                        help="adopt the fresh results as the new baselines "
                             "instead of checking")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    if args.update:
        adopted = update_baselines(args.baseline_dir, args.fresh_dir)
        if not adopted:
            print(f"no BENCH_*.json under {args.fresh_dir} to adopt",
                  file=sys.stderr)
            return 1
        for name in adopted:
            print(f"baseline updated: {name}")
        return 0

    rows, notices = compare_directories(args.baseline_dir, args.fresh_dir,
                                        args.tolerance)
    for notice in notices:
        print(f"note: {notice}")
    if rows:
        print(format_rows(rows))
    bad = [row for row in rows if row["status"] in (REGRESSED, MISSING)]
    if bad:
        print(f"\nFAIL: {len(bad)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%} (or went missing)")
        return 1
    checked = sum(1 for row in rows if row["status"] in (OK, IMPROVED))
    print(f"\nbench-check: {checked} benchmark(s) within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The shared-memory execution backend: wire format, lifecycle, identity.

The identity tests are the acceptance bar for the shm backend: byte-identical
plotfiles and element-wise identical reads against the serial backend, for
every registered spatial codec.  The lifecycle tests pin the pool semantics —
persistent executor across ``map`` calls, idempotent ``close``, in-band worker
errors that leave the pool usable — and that no ``/dev/shm`` segment of this
run outlives the call that created it.
"""

from dataclasses import dataclass
from typing import ClassVar, Tuple

import numpy as np
import pytest

import repro
from repro.core import AMRICConfig, AMRICWriter
from repro.parallel import shm
from repro.parallel.backend import (
    SerialBackend,
    SharedMemoryBackend,
    make_backend,
)

pytestmark = pytest.mark.skipif(
    not shm.HAVE_SHARED_MEMORY,
    reason="multiprocessing.shared_memory unavailable")

WORKERS = 2
SPATIAL_CODECS = ["sz_lr", "sz_interp", "sz_1d", "zfp_like"]


# ----------------------------------------------------------------------
# module-level work functions and payloads (process pools import them)
# ----------------------------------------------------------------------
@dataclass
class ArrayJob:
    data: np.ndarray
    scale: float
    #: bulk fields the shm backend ships as shared-memory descriptors
    _shm_fields: ClassVar[Tuple[str, ...]] = ("data",)


@dataclass
class ArrayResult:
    data: np.ndarray
    total: float
    _shm_fields: ClassVar[Tuple[str, ...]] = ("data",)


def scale_job(job: ArrayJob) -> ArrayResult:
    out = job.data * job.scale
    return ArrayResult(data=out, total=float(out.sum()))


def failing_job(job: ArrayJob) -> ArrayResult:
    if job.scale < 0:
        raise ValueError("negative scale")
    return scale_job(job)


def make_jobs(n: int = 6, size: int = 16384):
    """Jobs whose payloads (128 KiB) are comfortably above the shm floor."""
    rng = np.random.default_rng(7)
    return [ArrayJob(data=rng.standard_normal(size), scale=float(i + 1))
            for i in range(n)]


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_bulk_payloads_become_descriptors(self):
        jobs = make_jobs(3)
        assert shm.batch_bulk_nbytes(jobs) >= 3 * 16384 * 8
        wire_items, segment = shm.pack_batch(jobs)
        try:
            assert segment is not None
            assert segment.name.startswith(shm.segment_prefix())
            assert len(wire_items) == len(jobs)
            for wire in wire_items:
                assert isinstance(wire.data, shm.ShmArrayRef)
                assert wire.data.segment == segment.name
        finally:
            segment.close()
            segment.unlink()

    def test_plain_items_pickle_through_without_a_segment(self):
        wire_items, segment = shm.pack_batch([1, 2, 3])
        assert segment is None
        assert wire_items == [1, 2, 3]

    def test_descriptors_round_trip_values(self):
        jobs = make_jobs(2)
        expected = [scale_job(j) for j in jobs]
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            results = backend.map(scale_job, jobs)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got.data, want.data)
            assert got.total == want.total


# ----------------------------------------------------------------------
# backend lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_pool_persists_across_maps(self):
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            backend.map(scale_job, make_jobs(2))
            executor = backend._executor
            assert executor is not None
            backend.map(scale_job, make_jobs(2))
            assert backend._executor is executor      # same pool, no respawn

    def test_close_is_idempotent_and_backend_reusable(self):
        backend = SharedMemoryBackend(max_workers=WORKERS)
        assert backend.map(scale_job, make_jobs(1))[0].total == \
            pytest.approx(scale_job(make_jobs(1)[0]).total)
        backend.close()
        backend.close()
        # a closed backend rebuilds its pool lazily
        assert len(backend.map(scale_job, make_jobs(2))) == 2
        backend.close()

    def test_empty_batch(self):
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            assert backend.map(scale_job, []) == []

    def test_no_segments_leak_after_map_and_close(self):
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            results = backend.map(scale_job, make_jobs(4))
            assert len(results) == 4
            # result segments are unlinked on adoption, the batch segment when
            # the map returns — nothing should be left in the namespace even
            # while the result views are still alive
            assert shm.live_segments() == []
        assert shm.live_segments() == []

    def test_worker_error_propagates_and_pool_survives(self):
        jobs = make_jobs(4)
        jobs[2] = ArrayJob(data=jobs[2].data, scale=-1.0)
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            with pytest.raises(ValueError, match="negative scale"):
                backend.map(failing_job, jobs)
            # the error travelled in-band: no stranded sibling segments, and
            # the pool is still usable for the next batch
            assert shm.live_segments() == []
            results = backend.map(scale_job, make_jobs(3))
            assert len(results) == 3
        assert shm.live_segments() == []

    def test_parallel_width_reports_pool_size(self):
        assert SharedMemoryBackend(max_workers=3).parallel_width() == 3
        assert SerialBackend().parallel_width() == 1


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_make_backend_shm(self):
        backend = make_backend("shm", 2)
        assert isinstance(backend, SharedMemoryBackend)
        assert backend.max_workers == 2
        backend.close()
        assert isinstance(make_backend("shared_memory"), SharedMemoryBackend)

    def test_config_accepts_shm(self):
        cfg = AMRICConfig(backend="shm", backend_workers=2)
        assert cfg.backend == "shm"

    def test_cli_honours_repro_backend_shm(self, monkeypatch):
        from repro.cli import build_parser

        monkeypatch.setenv("REPRO_BACKEND", "shm")
        args = build_parser().parse_args(["verify", "whatever.h5z"])
        assert args.backend == "shm"


# ----------------------------------------------------------------------
# identity against serial (the acceptance bar)
# ----------------------------------------------------------------------
class TestIdentity:
    @pytest.mark.parametrize("compressor", SPATIAL_CODECS)
    def test_plotfile_bytes_identical_to_serial(self, nyx_hierarchy,
                                                compressor, tmp_path):
        cfg = AMRICConfig(compressor=compressor, error_bound=1e-3)
        serial_path = str(tmp_path / "serial.h5z")
        shm_path = str(tmp_path / "shm.h5z")
        serial = AMRICWriter(cfg).write_plotfile(nyx_hierarchy, serial_path)
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            pooled = AMRICWriter(cfg, backend=backend).write_plotfile(
                nyx_hierarchy, shm_path)
        assert serial.backend == "serial" and pooled.backend == "shm"
        with open(serial_path, "rb") as a, open(shm_path, "rb") as b:
            assert a.read() == b.read()
        assert serial.records == pooled.records
        assert serial.rank_workloads == pooled.rank_workloads
        assert shm.live_segments() == []

    def test_full_read_identical_to_serial(self, nyx_hierarchy, tmp_path):
        path = str(tmp_path / "plt.h5z")
        repro.write(nyx_hierarchy, path, compressor="sz_lr", error_bound=1e-3)
        with repro.open(path) as handle:
            serial = handle.read()
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            with repro.open(path) as handle:
                pooled = handle.read(backend=backend)
        for level in range(serial.nlevels):
            for name in serial.component_names:
                np.testing.assert_array_equal(
                    serial[level].multifab.to_global(name, serial[level].domain),
                    pooled[level].multifab.to_global(name, pooled[level].domain))
        assert shm.live_segments() == []

    def test_series_bytes_identical_to_serial(self, tmp_path):
        """Temporal encode jobs ride the same descriptor path: every step
        file of a delta-compressed series must hash identically."""
        from repro.apps.nyx import NyxSimulation
        from repro.series.writer import write_series

        def steps():
            sim = NyxSimulation(coarse_shape=(24, 24, 24), nranks=2,
                                target_fine_density=0.03, max_grid_size=12,
                                seed=42, drift_rate=0.05, growth_rate=0.02,
                                regrid_interval=3)
            return list(sim.run(4))

        serial_dir = tmp_path / "serial"
        shm_dir = tmp_path / "shm"
        write_series(steps(), str(serial_dir), keyframe_interval=3,
                     error_bound=1e-3)
        with SharedMemoryBackend(max_workers=WORKERS) as backend:
            write_series(steps(), str(shm_dir), keyframe_interval=3,
                         error_bound=1e-3, backend=backend)
        step_files = sorted(p.name for p in serial_dir.iterdir()
                            if p.suffix == ".h5z")
        assert step_files
        for name in step_files:
            assert (serial_dir / name).read_bytes() == \
                (shm_dir / name).read_bytes(), name
        assert shm.live_segments() == []

    def test_engine_box_reads_identical_to_inline(self, nyx_hierarchy, tmp_path):
        """The query engine's pooled decode path (``backend='shm'``) answers
        box queries element-wise identically to the inline default."""
        from repro.service.engine import BoxQuery, QueryEngine

        path = str(tmp_path / "plt.h5z")
        repro.write(nyx_hierarchy, path, compressor="sz_interp",
                    error_bound=1e-3)
        name = nyx_hierarchy.component_names[0]
        queries = [BoxQuery(path=path, field=name, level=0, box=box)
                   for box in nyx_hierarchy[0].boxarray.boxes[:3]]
        with QueryEngine() as inline_engine:
            inline = inline_engine.read_batch(queries)
        with QueryEngine(backend="shm", max_workers=WORKERS) as shm_engine:
            pooled = shm_engine.read_batch(queries)
        for a, b in zip(inline, pooled):
            np.testing.assert_array_equal(a, b)
        assert shm.live_segments() == []

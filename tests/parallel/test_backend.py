"""Execution backends, byte apportionment and the workload tally."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import RankWorkload, SimComm
from repro.parallel.backend import (
    ParallelBackend,
    SerialBackend,
    WorkloadTally,
    _tuned_chunksize,
    apportion,
    make_backend,
)


def _square(x):
    return x * x


class TestBackends:
    def test_serial_preserves_order(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_thread_matches_serial(self):
        items = list(range(20))
        with ParallelBackend("thread", max_workers=4) as backend:
            assert backend.map(_square, items) == SerialBackend().map(_square, items)

    def test_process_matches_serial(self):
        with ParallelBackend("process", max_workers=2) as backend:
            assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty_batch(self):
        with ParallelBackend("thread") as backend:
            assert backend.map(_square, []) == []

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ParallelBackend("gpu")

    def test_make_backend_specs(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend("serial"), SerialBackend)
        assert make_backend("thread").kind == "thread"
        assert make_backend("process").kind == "process"
        backend = SerialBackend()
        assert make_backend(backend) is backend
        with pytest.raises(ValueError):
            make_backend("quantum")

    def test_close_is_idempotent(self):
        backend = ParallelBackend("thread", max_workers=1)
        backend.map(_square, [1])
        backend.close()
        backend.close()
        # a closed backend can be reused: the pool is rebuilt lazily
        assert backend.map(_square, [5]) == [25]

    def test_simcomm_run_jobs_counts_barrier(self):
        comm = SimComm(4)
        out = comm.run_jobs(SerialBackend(), _square, [1, 2, 3])
        assert out == [1, 4, 9]
        assert comm.counters.barriers == 1

    def test_tuned_chunksize_batches_ipc(self):
        # ~4 waves across the pool, never below one item per round-trip
        assert _tuned_chunksize(100, 4) == 6
        assert _tuned_chunksize(3, 4) == 1
        assert _tuned_chunksize(0, 4) == 1
        assert _tuned_chunksize(64, 1) == 16

    def test_process_map_uses_tuned_chunksize(self, monkeypatch):
        seen = {}
        backend = ParallelBackend("process", max_workers=2)

        class FakeExecutor:
            def map(self, fn, items, chunksize=None):
                seen["chunksize"] = chunksize
                return map(fn, items)

            def shutdown(self, wait=True):
                pass

        monkeypatch.setattr(backend, "_ensure_executor", lambda: FakeExecutor())
        assert backend.map(_square, list(range(40))) == [x * x for x in range(40)]
        assert seen["chunksize"] == _tuned_chunksize(40, 2)

    def test_broken_pool_is_torn_down_and_rebuilt(self):
        backend = ParallelBackend("thread", max_workers=1)

        def boom(_):
            raise RuntimeError("worker exploded")

        with pytest.raises(RuntimeError, match="worker exploded"):
            backend.map(boom, [1, 2])
        # the failed map must not leave the dead executor behind
        assert backend._executor is None
        assert backend.map(_square, [3]) == [9]
        backend.close()

    def test_parallel_width(self):
        assert SerialBackend().parallel_width() == 1
        assert ParallelBackend("thread", max_workers=5).parallel_width() == 5


class TestApportion:
    def test_conserves_simple(self):
        shares = apportion(10, [1, 1, 1])
        assert sum(shares) == 10
        assert shares == [4, 3, 3]      # tie broken toward the lower index

    def test_rounding_case_that_broke_round(self):
        # independent round() gives 3 × round(33.5) = 3 × 34 = 102 ≠ 100
        shares = apportion(100, [1, 1, 1])
        assert sum(shares) == 100

    def test_zero_weights_split_evenly(self):
        assert sum(apportion(7, [0, 0])) == 7

    def test_proportionality(self):
        shares = apportion(1000, [3, 1])
        assert shares == [750, 250]

    def test_errors(self):
        with pytest.raises(ValueError):
            apportion(-1, [1])
        with pytest.raises(ValueError):
            apportion(5, [])
        with pytest.raises(ValueError):
            apportion(5, [1, -2])

    @given(total=st.integers(0, 10 ** 9),
           weights=st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=32))
    def test_conservation_property(self, total, weights):
        shares = apportion(total, weights)
        assert sum(shares) == total
        assert all(s >= 0 for s in shares)
        # no share exceeds its ceiling quota
        wsum = sum(weights) or len(weights)
        w = weights if sum(weights) else [1] * len(weights)
        for share, weight in zip(shares, w):
            assert share <= total * weight / wsum + 1


class TestWorkloadTally:
    def test_conserves_compressed_bytes(self):
        tally = WorkloadTally(4)
        tally.add_dataset(ranks=[0, 2, 3], per_rank_elements=[100, 50, 49],
                          chunk_elements=100, compressed_bytes=1001)
        tally.add_dataset(ranks=[1, 2], per_rank_elements=[10, 30],
                          chunk_elements=30, compressed_bytes=333)
        assert tally.total_compressed == 1001 + 333
        workloads = tally.workloads()
        assert sum(w.compressed_bytes for w in workloads) == 1001 + 333
        assert workloads[0].raw_bytes == 100 * 8
        assert workloads[1].compressor_launches == 1
        assert all(isinstance(w, RankWorkload) for w in workloads)

    def test_padding_accounting(self):
        tally = WorkloadTally(2)
        tally.add_dataset(ranks=[0, 1], per_rank_elements=[100, 60],
                          chunk_elements=100, compressed_bytes=10,
                          count_padding=True)
        workloads = tally.workloads()
        assert workloads[0].padded_bytes == 0
        assert workloads[1].padded_bytes == 40 * 8

    def test_idle_rank_reports_zero_chunks(self):
        # regression: workloads() used to clamp chunks_written to >= 1, so a
        # rank that wrote nothing was billed for one write in the I/O model
        tally = WorkloadTally(3)
        tally.add_dataset(ranks=[0, 2], per_rank_elements=[10, 20],
                          chunk_elements=20, compressed_bytes=100)
        workloads = tally.workloads()
        assert workloads[1].chunks_written == 0
        assert workloads[1].raw_bytes == 0
        assert workloads[0].chunks_written == 1
        assert workloads[2].chunks_written == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadTally(0)
        with pytest.raises(ValueError):
            WorkloadTally(2).add_dataset(ranks=[0], per_rank_elements=[1, 2],
                                         chunk_elements=2, compressed_bytes=1)

"""Fixtures for the backend tests: a small hierarchy for identity checks."""

import pytest

from repro.apps import nyx_run


@pytest.fixture(scope="session")
def nyx_hierarchy():
    """A small Nyx-like two-level hierarchy (session-scoped: it is read-only)."""
    return nyx_run(coarse_shape=(32, 32, 32), nranks=4, target_fine_density=0.03,
                   seed=101).hierarchy

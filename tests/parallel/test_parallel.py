"""Tests for the simulated MPI communicator, file-system model and I/O cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import IOCostModel, ParallelFileSystem, RankWorkload, SimComm
from repro.parallel.collective import padding_overhead, plan_shared_dataset


class TestSimComm:
    def test_size_and_ranks(self):
        comm = SimComm(8)
        assert comm.size == 8
        assert list(comm.ranks()) == list(range(8))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimComm(0)

    def test_allreduce_max_and_counters(self):
        comm = SimComm(4)
        assert comm.allreduce([3, 9, 1, 5]) == 9
        assert comm.allreduce([3, 9, 1, 5], op=sum) == 18
        assert comm.counters.reductions == 2

    def test_allreduce_length_check(self):
        with pytest.raises(ValueError):
            SimComm(3).allreduce([1, 2])

    def test_allgather(self):
        comm = SimComm(3)
        assert comm.allgather(["a", "b", "c"]) == ["a", "b", "c"]

    def test_scatter_boxes_round_robin(self):
        comm = SimComm(3)
        owners = comm.scatter_boxes(7)
        assert owners[0] == [0, 3, 6]
        assert owners[2] == [2, 5]

    def test_collective_write_counter(self):
        comm = SimComm(2)
        comm.record_collective_write(3)
        comm.barrier()
        assert comm.counters.collective_writes == 3
        assert comm.counters.barriers == 1


class TestFilesystem:
    def test_bandwidth_scaling_and_saturation(self):
        fs = ParallelFileSystem(per_node_bandwidth=1e9, peak_bandwidth=4e9)
        assert fs.aggregate_bandwidth(1) == 1e9
        assert fs.aggregate_bandwidth(4) == 4e9
        assert fs.aggregate_bandwidth(100) == 4e9

    def test_write_seconds(self):
        fs = ParallelFileSystem(per_node_bandwidth=1e9, peak_bandwidth=1e9,
                                write_latency=0.01)
        assert fs.write_seconds(1e9, nodes=1, nwrites=0) == pytest.approx(1.0)
        assert fs.write_seconds(0, nodes=1, nwrites=10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelFileSystem(per_node_bandwidth=0)
        fs = ParallelFileSystem()
        with pytest.raises(ValueError):
            fs.aggregate_bandwidth(0)
        with pytest.raises(ValueError):
            fs.write_seconds(-1, 1)


class TestSharedDatasetLayout:
    def test_plan_basics(self):
        layout = plan_shared_dataset([100, 300, 200], pass_actual_size=True)
        assert layout.chunk_elements == 300
        assert layout.total_padded_elements == 0
        assert layout.padded_elements_for_rank(0) == 0

    def test_padding_without_actual_size(self):
        layout = plan_shared_dataset([100, 300, 200], pass_actual_size=False)
        assert layout.total_padded_elements == (300 - 100) + 0 + (300 - 200)
        assert layout.padded_elements_for_rank(0) == 200

    def test_padding_overhead_fraction(self):
        assert padding_overhead([100, 100]) == 0.0
        assert padding_overhead([100, 300]) == pytest.approx(200 / 400)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shared_dataset([])
        with pytest.raises(ValueError):
            plan_shared_dataset([0, 0])
        with pytest.raises(ValueError):
            plan_shared_dataset([-1, 5])

    @given(st.lists(st.integers(1, 10**6), min_size=1, max_size=50))
    def test_padding_nonnegative_property(self, sizes):
        layout = plan_shared_dataset(sizes, pass_actual_size=False)
        assert layout.total_padded_elements >= 0
        assert layout.chunk_elements >= max(sizes)


class TestIOCostModel:
    def make_workloads(self, nranks=64, raw=8 * 2**20, ratio=10.0, launches=1):
        return [RankWorkload(raw_bytes=raw, compressed_bytes=int(raw / ratio),
                             compressor_launches=launches) for _ in range(nranks)]

    def test_nodes_for(self):
        model = IOCostModel(ranks_per_node=32)
        assert model.nodes_for(32) == 1
        assert model.nodes_for(33) == 2
        with pytest.raises(ValueError):
            model.nodes_for(0)

    def test_nocomp_vs_compressed_write(self):
        """Compression reduces write time when the data is large and compressible."""
        model = IOCostModel()
        raw = 512 * 2**20
        nocomp = model.evaluate(
            [RankWorkload(raw, raw, 0) for _ in range(64)], compression_enabled=False)
        comp = model.evaluate(
            [RankWorkload(raw, raw // 100, 1) for _ in range(64)], compression_enabled=True)
        assert comp.total_seconds < nocomp.total_seconds

    def test_many_launches_dominate(self):
        """The AMReX small-chunk penalty: thousands of launches swamp everything."""
        model = IOCostModel()
        few = model.evaluate(self.make_workloads(launches=6))
        many = model.evaluate(self.make_workloads(launches=6 * 2048))
        assert many.compression_seconds > few.compression_seconds * 50
        assert many.total_seconds > few.total_seconds

    def test_padding_increases_time(self):
        model = IOCostModel()
        base = self.make_workloads()
        padded = [RankWorkload(w.raw_bytes, w.compressed_bytes, w.compressor_launches,
                               padded_bytes=w.raw_bytes) for w in base]
        assert model.evaluate(padded).total_seconds > model.evaluate(base).total_seconds

    def test_serialized_datasets_slower(self):
        """One-dataset-per-rank serialises the collective writes."""
        model = IOCostModel()
        workloads = self.make_workloads(nranks=128, raw=64 * 2**20, ratio=20)
        shared = model.evaluate(workloads, ndatasets=1)
        serialized = model.evaluate_serialized_datasets(workloads)
        assert serialized.write_seconds > shared.write_seconds

    def test_breakdown_fields(self):
        model = IOCostModel()
        bd = model.evaluate(self.make_workloads())
        d = bd.as_dict()
        assert d["total"] == pytest.approx(d["prep"] + d["io"])
        assert d["io"] == pytest.approx(d["compression"] + d["write"])

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            IOCostModel().evaluate([])

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            RankWorkload(-1, 0, 0)

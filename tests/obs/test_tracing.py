"""Trace IDs, context propagation, and span instrumentation."""

import re
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    current_trace_id,
    get_registry,
    new_trace_id,
    span,
    trace_scope,
)


class TestTraceIds:
    def test_format_and_uniqueness(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", t) for t in ids)

    def test_no_trace_outside_a_scope(self):
        assert current_trace_id() is None

    def test_scope_binds_and_restores(self):
        with trace_scope("abc123"):
            assert current_trace_id() == "abc123"
            with trace_scope("nested"):
                assert current_trace_id() == "nested"
            assert current_trace_id() == "abc123"
        assert current_trace_id() is None

    def test_none_scope_is_passthrough(self):
        """trace_scope(None) keeps the surrounding binding visible."""
        with trace_scope("outer"):
            with trace_scope(None) as seen:
                assert seen == "outer"
                assert current_trace_id() == "outer"

    def test_scope_is_thread_local(self):
        seen = {}

        def other_thread():
            seen["other"] = current_trace_id()

        with trace_scope("mine"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert seen["other"] is None


class TestSpans:
    def test_span_records_latency_and_count(self):
        reg = MetricsRegistry()
        with span("decode", registry=reg):
            pass
        labels = {"span": "decode"}
        assert reg.counter("repro_span_total", labels).value == 1
        hist = reg.histogram("repro_span_seconds", labels)
        assert hist.count == 1
        assert hist.sum >= 0

    def test_span_bytes_and_attributes(self):
        reg = MetricsRegistry()
        with span("read", registry=reg, dataset="density") as sp:
            sp.add_bytes(1024)
            sp.add_bytes(1024)
        assert sp.attributes == {"dataset": "density"}
        assert sp.elapsed is not None
        assert reg.counter("repro_span_bytes_total",
                           {"span": "read"}).value == 2048

    def test_span_counts_errors_and_reraises(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span("boom", registry=reg):
                raise RuntimeError("nope")
        labels = {"span": "boom"}
        assert reg.counter("repro_span_errors_total", labels).value == 1
        assert reg.counter("repro_span_total", labels).value == 1

    def test_span_captures_current_trace(self):
        reg = MetricsRegistry()
        with trace_scope("feedbeef00000000"):
            with span("traced", registry=reg) as sp:
                pass
        assert sp.trace_id == "feedbeef00000000"

    def test_default_registry_is_the_process_wide_one(self):
        before = get_registry().counter("repro_span_total",
                                        {"span": "default-reg"}).value
        with span("default-reg"):
            pass
        after = get_registry().counter("repro_span_total",
                                       {"span": "default-reg"}).value
        assert after == before + 1

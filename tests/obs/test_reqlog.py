"""Structured JSON-lines request logs."""

import io
import json
import threading

from repro.obs import RequestLog, make_request_log


class TestRequestLog:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = RequestLog(stream)
        log.log("request", op="ping", latency_ms=0.2)
        log.log("request", op="read_field", trace="abc")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert log.records == 2
        first = json.loads(lines[0])
        assert first["event"] == "request"
        assert first["op"] == "ping"
        assert "ts" in first
        assert json.loads(lines[1])["trace"] == "abc"

    def test_unserialisable_values_are_stringified(self):
        stream = io.StringIO()
        RequestLog(stream).log("request", weird={1, 2})
        record = json.loads(stream.getvalue())
        assert "weird" in record         # logged, not raised on

    def test_concurrent_writers_never_interleave(self):
        stream = io.StringIO()
        log = RequestLog(stream)

        def work(i):
            for _ in range(200):
                log.log("request", worker=i, payload="x" * 64)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 800
        for line in lines:
            json.loads(line)             # every line parses on its own


class TestMakeRequestLog:
    def test_none_passes_through(self):
        assert make_request_log(None) is None

    def test_existing_log_passes_through(self):
        log = RequestLog(io.StringIO())
        assert make_request_log(log) is log

    def test_stream_is_wrapped(self):
        wrapped = make_request_log(io.StringIO())
        assert isinstance(wrapped, RequestLog)

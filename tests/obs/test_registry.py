"""MetricsRegistry: instruments, concurrency, collectors, merge, exposition."""

import math
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    quantile_from_buckets,
    render_prometheus,
)

GOLDEN = Path(__file__).parent / "golden_exposition.prom"


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("reads_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_refuses_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("x").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("bytes_held")
        gauge.set(100)
        gauge.inc(10)
        gauge.dec(60)
        assert gauge.value == 50

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("c", labels={"op": "ping"})
        b = reg.counter("c", labels={"op": "ping"})
        c = reg.counter("c", labels={"op": "read"})
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("c", labels={"a": 1, "b": 2})
        b = reg.counter("c", labels={"b": 2, "a": 1})
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_bounds_are_inclusive(self):
        """An observation equal to a bound lands in that bound's bucket."""
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)       # le=1.0, inclusively
        hist.observe(1.5)       # le=2.0
        hist.observe(4.0)       # le=4.0, inclusively
        hist.observe(100.0)     # +Inf
        assert hist.cumulative() == [
            (1.0, 1), (2.0, 2), (4.0, 3), (float("inf"), 4)]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)

    def test_buckets_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h", buckets=(1.0, 1.0))

    def test_quantiles_interpolate_within_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(10.0, 20.0, 40.0))
        for _ in range(100):
            hist.observe(15.0)      # all mass in (10, 20]
        # p50: rank 50 of 100 inside the second bucket -> interpolated
        assert 10.0 < hist.quantile(0.5) <= 20.0
        assert hist.quantile(1.0) == 20.0

    def test_quantile_of_empty_histogram_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.histogram("h").quantile(0.5))

    def test_quantile_inf_bucket_answers_largest_finite_bound(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 2.0

    def test_quantile_from_serialized_snapshot_rows(self):
        """p50/p99 are derivable from the wire-shaped bucket rows alone."""
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=list(DEFAULT_LATENCY_BUCKETS))
        for value in (0.002, 0.002, 0.002, 0.09):
            hist.observe(value)
        rows = reg.snapshot()["h"]["samples"][0]["buckets"]
        assert quantile_from_buckets(rows, 0.5) == \
            pytest.approx(hist.quantile(0.5))
        assert 0.05 < quantile_from_buckets(rows, 0.99) <= 0.1

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            quantile_from_buckets([(1.0, 1)], 1.5)


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def _worker_snapshot(n: int):
    """Process-pool worker: build a private registry, return its snapshot."""
    reg = MetricsRegistry()
    reg.counter("jobs_total").inc(n)
    reg.gauge("last_n").set(n)
    hist = reg.histogram("job_seconds", buckets=(0.5, 1.0))
    for _ in range(n):
        hist.observe(0.25)
    return reg.snapshot()


class TestConcurrency:
    def test_threaded_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total")
        hist = reg.histogram("h", buckets=(1.0,))

        def work():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert hist.count == 8000

    def test_process_pool_snapshots_merge(self):
        """Worker registries roll up: counters/buckets add, gauges set."""
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snap in pool.map(_worker_snapshot, [3, 5]):
                parent.merge_snapshot(snap)
        assert parent.counter("jobs_total").value == 8
        hist = parent.histogram("job_seconds", buckets=(0.5, 1.0))
        assert hist.count == 8
        assert hist.cumulative()[0] == (0.5, 8)
        assert parent.gauge("last_n").value in (3.0, 5.0)  # last merge wins

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 4.0)).observe(0.5)
        a.merge_snapshot(a.snapshot())       # same buckets: fine
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge_snapshot(b.snapshot())


# ----------------------------------------------------------------------
# collectors
# ----------------------------------------------------------------------
class TestCollectors:
    def test_collector_samples_appear_in_snapshot(self):
        reg = MetricsRegistry()
        reg.add_collector(lambda: [("ext_total", "counter", {}, 7.0)])
        snap = reg.snapshot()
        assert snap["ext_total"]["samples"] == [{"labels": {}, "value": 7.0}]

    def test_collector_sample_replaces_pushed_sample(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(1)
        reg.add_collector(lambda: [("x_total", "counter", {}, 99.0)])
        assert reg.snapshot()["x_total"]["samples"][0]["value"] == 99.0

    def test_raising_collector_is_dropped_and_counted(self):
        reg = MetricsRegistry()

        def bad():
            raise RuntimeError("dead handle")

        reg.add_collector(bad)
        snap = reg.snapshot()
        assert snap["repro_collector_errors_total"]["samples"][0]["value"] == 1
        # dropped: the next snapshot does not re-count it
        reg.snapshot()
        assert reg.counter("repro_collector_errors_total").value == 1

    def test_remove_collector(self):
        reg = MetricsRegistry()
        collector = lambda: [("y_total", "counter", {}, 1.0)]  # noqa: E731
        reg.add_collector(collector)
        reg.remove_collector(collector)
        assert "y_total" not in reg.snapshot()


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def _golden_registry() -> MetricsRegistry:
    """A small fixed registry covering every exposition shape."""
    reg = MetricsRegistry()
    reg.counter("demo_requests_total", labels={"op": "ping"}).inc(3)
    reg.counter("demo_requests_total", labels={"op": "read"}).inc(2)
    reg.gauge("demo_cache_bytes").set(4096)
    hist = reg.histogram("demo_latency_seconds", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.004, 0.004, 0.2):
        hist.observe(value)
    reg.add_collector(
        lambda: [("demo_io_bytes_total", "counter",
                  {"source": 'a"b\\c'}, 512.0)])
    return reg


class TestExposition:
    def test_matches_golden_file(self):
        rendered = _golden_registry().to_prometheus()
        assert rendered == GOLDEN.read_text()

    def test_renders_wire_roundtripped_snapshot(self):
        """A snapshot that crossed JSON renders identically to a local one."""
        import json

        reg = _golden_registry()
        roundtripped = json.loads(json.dumps(reg.snapshot()))
        assert render_prometheus(roundtripped) == reg.to_prometheus()

    def test_deterministic_ordering(self):
        a = MetricsRegistry()
        a.counter("b_total").inc()
        a.counter("a_total", labels={"z": 1}).inc()
        a.counter("a_total", labels={"a": 1}).inc()
        lines = a.to_prometheus().splitlines()
        assert lines == ['# TYPE a_total counter', 'a_total{a="1"} 1',
                         'a_total{z="1"} 1', '# TYPE b_total counter',
                         'b_total 1']


# ----------------------------------------------------------------------
# the null registry and the process-wide default
# ----------------------------------------------------------------------
class TestRegistryPlumbing:
    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("x").inc(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        NULL_REGISTRY.add_collector(
            lambda: [("x", "counter", {}, 1.0)])
        assert NULL_REGISTRY.snapshot() == {}

    def test_get_registry_is_process_wide(self):
        assert get_registry() is get_registry()

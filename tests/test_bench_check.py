"""The benchmark-regression comparator behind ``make bench-check``."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_check",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "tools", "bench_check.py"))
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


def _bench_json(medians):
    return {"benchmarks": [{"name": name, "stats": {"median": median}}
                           for name, median in medians.items()]}


def _write(path, medians):
    path.write_text(json.dumps(_bench_json(medians)))


def _write_suite(path, entries):
    """Write a pytest-benchmark JSON whose entries may carry extra_info:
    ``entries`` maps name -> (median, extra_info dict)."""
    path.write_text(json.dumps({"benchmarks": [
        {"name": name, "stats": {"median": median}, "extra_info": extra}
        for name, (median, extra) in entries.items()]}))


class TestComparator:
    def test_within_tolerance_is_ok(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 1.2}, 0.25)
        assert rows[0]["status"] == bench_check.OK
        assert rows[0]["delta"] == pytest.approx(0.2)

    def test_regression_beyond_tolerance_fails(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 1.3}, 0.25)
        assert rows[0]["status"] == bench_check.REGRESSED
        assert bench_check.has_regression(rows)

    def test_improvement_beyond_tolerance_is_not_a_failure(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 0.5}, 0.25)
        assert rows[0]["status"] == bench_check.IMPROVED
        assert not bench_check.has_regression(rows)

    def test_identical_medians_pass(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 1.0}, 0.0)
        assert rows[0]["status"] == bench_check.OK

    def test_new_benchmark_is_tolerated(self):
        rows = bench_check.compare_medians({}, {"t": 1.0}, 0.25)
        assert rows[0]["status"] == bench_check.NEW
        assert not bench_check.has_regression(rows)

    def test_dropped_benchmark_fails(self):
        # silently deleting a benchmark must not disable its own gate
        rows = bench_check.compare_medians({"t": 1.0}, {}, 0.25)
        assert rows[0]["status"] == bench_check.MISSING
        assert bench_check.has_regression(rows)

    def test_delta_table_mentions_every_benchmark(self):
        rows = bench_check.compare_medians(
            {"fast": 0.001, "slow": 2.0}, {"fast": 0.0011, "slow": 3.0}, 0.25)
        table = bench_check.format_rows(rows)
        assert "fast" in table and "slow" in table
        assert "REGRESSED" in table and "+50.0%" in table


#: the reader speedup gate pair, used as the exemplar in the tests below
_READER_PAIR = next(t for t in bench_check.SPEEDUP_TARGETS if t[0] == "reader")


class TestSpeedupGate:
    def _reader_suite(self, tmp_path, serial_median, shm_median,
                      fresh_cores, baseline_cores=None):
        """Baseline+fresh dirs holding only the reader speedup pair."""
        _, shm_name, serial_name, _ = _READER_PAIR
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        if baseline_cores is not None:
            _write_suite(baseline / "BENCH_reader.json", {
                serial_name: (serial_median, {"cpu_count": baseline_cores}),
                shm_name: (shm_median, {"cpu_count": baseline_cores}),
            })
        _write_suite(tmp_path / "BENCH_reader.json", {
            serial_name: (serial_median, {"cpu_count": fresh_cores}),
            shm_name: (shm_median, {"cpu_count": fresh_cores}),
        })
        return str(baseline), str(tmp_path)

    def test_target_relaxes_to_parity_below_two_cores(self):
        assert bench_check.effective_speedup_target(3.0, 1) == 1.0
        assert bench_check.effective_speedup_target(3.0, None) == 1.0

    def test_target_full_at_reference_cores_and_above(self):
        assert bench_check.effective_speedup_target(3.0, 4) == 3.0
        assert bench_check.effective_speedup_target(3.0, 16) == 3.0

    def test_target_scales_linearly_in_between(self):
        # 2 of 4 cores -> one third of the way from 1.0 to 3.0
        assert bench_check.effective_speedup_target(3.0, 2) == \
            pytest.approx(1.0 + 2.0 / 3.0)
        assert bench_check.effective_speedup_target(3.0, 3) == \
            pytest.approx(1.0 + 4.0 / 3.0)

    def test_meets_target_on_reference_machine(self, tmp_path):
        base, fresh = self._reader_suite(tmp_path, serial_median=3.0,
                                         shm_median=0.9, fresh_cores=4)
        lines, notices, failures = bench_check.check_speedups(base, fresh, 0.25)
        assert failures == 0
        assert any("3.33x" in line and "ok" in line for line in lines)

    def test_misses_target_on_reference_machine(self, tmp_path):
        base, fresh = self._reader_suite(tmp_path, serial_median=3.0,
                                         shm_median=2.0, fresh_cores=4)
        lines, notices, failures = bench_check.check_speedups(base, fresh, 0.25)
        assert failures == 1
        assert any("FAIL" in line for line in lines)

    def test_single_core_machine_only_needs_parity(self, tmp_path):
        # 0.9x of serial on one core passes with the 25% tolerance pad
        base, fresh = self._reader_suite(tmp_path, serial_median=1.0,
                                         shm_median=1.1, fresh_cores=1)
        _, _, failures = bench_check.check_speedups(base, fresh, 0.25)
        assert failures == 0

    def test_single_core_machine_still_fails_when_far_slower(self, tmp_path):
        base, fresh = self._reader_suite(tmp_path, serial_median=1.0,
                                         shm_median=2.0, fresh_cores=1)
        _, _, failures = bench_check.check_speedups(base, fresh, 0.25)
        assert failures == 1

    def test_fewer_cores_than_baseline_skips_with_notice(self, tmp_path):
        # slow enough to fail the 4-core gate — but the baseline was recorded
        # on 4 cores and this machine has 1, so the assertion is skipped
        base, fresh = self._reader_suite(tmp_path, serial_median=1.0,
                                         shm_median=5.0, fresh_cores=1,
                                         baseline_cores=4)
        lines, notices, failures = bench_check.check_speedups(base, fresh, 0.25)
        assert failures == 0
        assert not lines
        assert any("skipping" in n and "core" in n for n in notices)

    def test_missing_fresh_suite_is_a_notice(self, tmp_path):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        lines, notices, failures = bench_check.check_speedups(
            str(baseline), str(tmp_path), 0.25)
        assert failures == 0 and not lines
        assert any("no fresh" in n for n in notices)

    def test_speedup_failure_fails_main(self, tmp_path, capsys):
        base, fresh = self._reader_suite(tmp_path, serial_median=1.0,
                                         shm_median=2.0, fresh_cores=4,
                                         baseline_cores=4)
        rc = bench_check.main(["--baseline-dir", base, "--fresh-dir", fresh])
        out = capsys.readouterr().out
        assert rc == 1
        assert "speedup assertion(s) failed" in out


class TestEndToEnd:
    def test_fresh_baselines_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        medians = {"test_a": 0.01, "test_b": 2.5}
        _write(baseline / "BENCH_x.json", medians)
        _write(tmp_path / "BENCH_x.json", medians)   # fresh == baseline
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        assert rc == 0
        assert "2 benchmark(s) within" in capsys.readouterr().out

    def test_degraded_median_fails_with_table(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        _write(baseline / "BENCH_x.json", {"test_a": 0.01, "test_b": 1.0})
        _write(tmp_path / "BENCH_x.json", {"test_a": 0.01, "test_b": 1.5})
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "REGRESSED" in out and "test_b" in out

    def test_tolerance_is_configurable(self, tmp_path):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        _write(baseline / "BENCH_x.json", {"t": 1.0})
        _write(tmp_path / "BENCH_x.json", {"t": 1.4})
        args = ["--baseline-dir", str(baseline), "--fresh-dir", str(tmp_path)]
        assert bench_check.main(args) == 1                       # 25% default
        assert bench_check.main([*args, "--tolerance", "0.5"]) == 0

    def test_missing_fresh_file_is_a_notice_not_a_failure(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        _write(baseline / "BENCH_x.json", {"t": 1.0})
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        assert rc == 0
        assert "no fresh results" in capsys.readouterr().out

    def test_update_adopts_fresh_results(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        _write(tmp_path / "BENCH_x.json", {"t": 1.0})
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path), "--update"])
        assert rc == 0
        adopted = json.loads((baseline / "BENCH_x.json").read_text())
        assert adopted["benchmarks"][0]["stats"]["median"] == 1.0

    def test_not_a_benchmark_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a pytest-benchmark"):
            bench_check.load_medians(str(path))


class TestRemoteGate:
    def _remote_suite(self, tmp_path, *, full_median=2.0, probe_median=0.2,
                      full_io=(170, 14, 1_000_000), probe_io=(6, 3, 60_000)):
        """A fresh BENCH_remote.json with the full read and the coarse probe."""
        def extra(io):
            requests, coalesced, nbytes = io
            return {"io_requests": requests,
                    "io_coalesced_requests": coalesced,
                    "io_bytes_read": nbytes}

        _write_suite(tmp_path / "BENCH_remote.json", {
            bench_check.REMOTE_FULL_BENCH: (full_median, extra(full_io)),
            bench_check.REMOTE_PROBE_BENCH: (probe_median, extra(probe_io)),
        })
        return str(tmp_path)

    def test_all_targets_hold(self, tmp_path):
        fresh = self._remote_suite(tmp_path)
        lines, notices, failures = bench_check.check_remote(fresh)
        assert failures == 0
        assert len(lines) == 3
        assert all("ok" in line for line in lines)

    def test_weak_coalescing_fails(self, tmp_path):
        fresh = self._remote_suite(tmp_path, full_io=(28, 14, 1_000_000))
        lines, _, failures = bench_check.check_remote(fresh)
        assert failures == 1
        assert any("coalescing" in line and "FAIL" in line for line in lines)

    def test_heavy_probe_bytes_fail(self, tmp_path):
        fresh = self._remote_suite(tmp_path, probe_io=(6, 3, 400_000))
        lines, _, failures = bench_check.check_remote(fresh)
        assert failures == 1
        assert any("bytes" in line and "FAIL" in line for line in lines)

    def test_slow_probe_fails(self, tmp_path):
        fresh = self._remote_suite(tmp_path, probe_median=1.5)
        lines, _, failures = bench_check.check_remote(fresh)
        assert failures == 1
        assert any("time-to-first-array" in line and "FAIL" in line
                   for line in lines)

    def test_missing_suite_is_a_notice(self, tmp_path):
        lines, notices, failures = bench_check.check_remote(str(tmp_path))
        assert failures == 0 and not lines
        assert any("no fresh" in n for n in notices)

    def test_missing_extra_info_is_a_notice(self, tmp_path):
        _write(tmp_path / "BENCH_remote.json", {
            bench_check.REMOTE_FULL_BENCH: 2.0,
            bench_check.REMOTE_PROBE_BENCH: 0.2,
        })
        lines, notices, failures = bench_check.check_remote(str(tmp_path))
        assert failures == 0
        # byte + coalescing assertions skip; the timing one still runs
        assert any("skipped" in n for n in notices)
        assert any("time-to-first-array" in line for line in lines)

    def test_remote_failure_fails_main(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        self._remote_suite(tmp_path, probe_median=1.9)
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "remote-read assertion(s) failed" in out

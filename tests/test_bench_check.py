"""The benchmark-regression comparator behind ``make bench-check``."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_check",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "tools", "bench_check.py"))
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


def _bench_json(medians):
    return {"benchmarks": [{"name": name, "stats": {"median": median}}
                           for name, median in medians.items()]}


def _write(path, medians):
    path.write_text(json.dumps(_bench_json(medians)))


class TestComparator:
    def test_within_tolerance_is_ok(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 1.2}, 0.25)
        assert rows[0]["status"] == bench_check.OK
        assert rows[0]["delta"] == pytest.approx(0.2)

    def test_regression_beyond_tolerance_fails(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 1.3}, 0.25)
        assert rows[0]["status"] == bench_check.REGRESSED
        assert bench_check.has_regression(rows)

    def test_improvement_beyond_tolerance_is_not_a_failure(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 0.5}, 0.25)
        assert rows[0]["status"] == bench_check.IMPROVED
        assert not bench_check.has_regression(rows)

    def test_identical_medians_pass(self):
        rows = bench_check.compare_medians({"t": 1.0}, {"t": 1.0}, 0.0)
        assert rows[0]["status"] == bench_check.OK

    def test_new_benchmark_is_tolerated(self):
        rows = bench_check.compare_medians({}, {"t": 1.0}, 0.25)
        assert rows[0]["status"] == bench_check.NEW
        assert not bench_check.has_regression(rows)

    def test_dropped_benchmark_fails(self):
        # silently deleting a benchmark must not disable its own gate
        rows = bench_check.compare_medians({"t": 1.0}, {}, 0.25)
        assert rows[0]["status"] == bench_check.MISSING
        assert bench_check.has_regression(rows)

    def test_delta_table_mentions_every_benchmark(self):
        rows = bench_check.compare_medians(
            {"fast": 0.001, "slow": 2.0}, {"fast": 0.0011, "slow": 3.0}, 0.25)
        table = bench_check.format_rows(rows)
        assert "fast" in table and "slow" in table
        assert "REGRESSED" in table and "+50.0%" in table


class TestEndToEnd:
    def test_fresh_baselines_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        medians = {"test_a": 0.01, "test_b": 2.5}
        _write(baseline / "BENCH_x.json", medians)
        _write(tmp_path / "BENCH_x.json", medians)   # fresh == baseline
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        assert rc == 0
        assert "2 benchmark(s) within" in capsys.readouterr().out

    def test_degraded_median_fails_with_table(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        _write(baseline / "BENCH_x.json", {"test_a": 0.01, "test_b": 1.0})
        _write(tmp_path / "BENCH_x.json", {"test_a": 0.01, "test_b": 1.5})
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "REGRESSED" in out and "test_b" in out

    def test_tolerance_is_configurable(self, tmp_path):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        _write(baseline / "BENCH_x.json", {"t": 1.0})
        _write(tmp_path / "BENCH_x.json", {"t": 1.4})
        args = ["--baseline-dir", str(baseline), "--fresh-dir", str(tmp_path)]
        assert bench_check.main(args) == 1                       # 25% default
        assert bench_check.main([*args, "--tolerance", "0.5"]) == 0

    def test_missing_fresh_file_is_a_notice_not_a_failure(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        baseline.mkdir()
        _write(baseline / "BENCH_x.json", {"t": 1.0})
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path)])
        assert rc == 0
        assert "no fresh results" in capsys.readouterr().out

    def test_update_adopts_fresh_results(self, tmp_path, capsys):
        baseline = tmp_path / "baselines"
        _write(tmp_path / "BENCH_x.json", {"t": 1.0})
        rc = bench_check.main(["--baseline-dir", str(baseline),
                               "--fresh-dir", str(tmp_path), "--update"])
        assert rc == 0
        adopted = json.loads((baseline / "BENCH_x.json").read_text())
        assert adopted["benchmarks"][0]["stats"]["median"] == 1.0

    def test_not_a_benchmark_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a pytest-benchmark"):
            bench_check.load_medians(str(path))

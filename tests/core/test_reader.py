"""The staged read pipeline: self-describing headers, lazy access, fallbacks.

Covers the PR-3 acceptance criteria:

* ``repro.open(path)`` reconstructs a hierarchy from the plotfile alone that
  is element-wise identical to the template-based read, for every registered
  codec and every execution backend;
* ``read_field`` with a box decodes only the intersecting chunks (asserted by
  decode-call counting);
* pre-header plotfiles still read via the explicit template fallback;
* corrupt / truncated / version-skewed headers raise :class:`ValueError`,
  never a garbage hierarchy.
"""

import json
import struct

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.compress.registry import available_codecs
from repro.core import AMRICConfig, AMRICReader, AMRICWriter
from repro.core.header import FORMAT_VERSION, PlotfileHeader
from repro.core.reader import scan_plotfile
from repro.core import stages
from repro.h5lite.file import H5LiteFile
from repro.parallel.backend import ParallelBackend

BACKENDS = ("serial", "thread", "process")


def _to_globals(hierarchy):
    return {(lvl, name): hierarchy[lvl].multifab.to_global(name, hierarchy[lvl].domain)
            for lvl in range(hierarchy.nlevels)
            for name in hierarchy.component_names}


def _write(hierarchy, path, **cfg_kwargs):
    cfg = AMRICConfig(**cfg_kwargs)
    report = repro.write(hierarchy, str(path), config=cfg)
    return cfg, report


def _rewrite_superblock(path, mutate):
    """Load the trailing JSON superblock, mutate it, rewrite the file."""
    data = path.read_bytes()
    (offset,) = struct.unpack_from("<Q", data, 4)
    superblock = json.loads(data[offset:].decode("utf-8"))
    mutate(superblock)
    path.write_bytes(data[:offset] + json.dumps(superblock).encode("utf-8"))


@pytest.fixture(scope="module")
def multirank_hierarchy():
    """Several coarse boxes across 4 ranks → multi-chunk level-0 datasets."""
    from repro.apps import nyx_run

    return nyx_run(coarse_shape=(32, 32, 32), nranks=4, max_grid_size=16,
                   target_fine_density=0.03, seed=303).hierarchy


@pytest.fixture(scope="module")
def legacy_plotfile(nyx_hierarchy, tmp_path_factory):
    """A pre-header plotfile (what PR-2 writers produced)."""
    path = tmp_path_factory.mktemp("legacy") / "plt_legacy.h5z"
    cfg, _ = _write(nyx_hierarchy, path, error_bound=1e-3)
    _rewrite_superblock(path, lambda sb: sb.__setitem__("header", None))
    return str(path), cfg


class TestSelfDescribingRoundTrip:
    @pytest.mark.parametrize("codec", sorted(available_codecs()))
    def test_no_template_matches_template_read_all_codecs(
            self, nyx_hierarchy, tmp_path, codec):
        path = tmp_path / f"plt_{codec}.h5z"
        cfg, _ = _write(nyx_hierarchy, path, compressor=codec, error_bound=1e-3)
        reader = AMRICReader(cfg)
        with_template = _to_globals(reader.read_plotfile(str(path), nyx_hierarchy))
        no_template = _to_globals(reader.read_plotfile(str(path)))
        assert set(with_template) == set(no_template)
        for key, expected in with_template.items():
            np.testing.assert_array_equal(no_template[key], expected, err_msg=str(key))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_bit_identical(self, nyx_hierarchy, tmp_path, backend):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        serial = _to_globals(AMRICReader().read_plotfile(str(path)))
        with AMRICReader(backend=backend) as reader:
            other = _to_globals(reader.read_plotfile(str(path)))
        for key, expected in serial.items():
            np.testing.assert_array_equal(other[key], expected, err_msg=str(key))

    def test_caller_supplied_backend_not_closed(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with ParallelBackend("thread", max_workers=2) as backend:
            reader = AMRICReader(backend=backend)
            reader.read_plotfile(str(path))
            reader.close()                       # must not shut the pool down
            again = reader = AMRICReader(backend=backend)
            again.read_plotfile(str(path))       # pool still usable

    def test_header_round_trips_structure_and_metadata(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as handle:
            assert handle.is_self_describing
            header = handle.header
            assert header.version == FORMAT_VERSION
            assert header.components == tuple(nyx_hierarchy.component_names)
            assert header.ref_ratios == tuple(nyx_hierarchy.ref_ratios)
            assert [lvl.nboxes for lvl in header.levels] == \
                [len(l.boxarray) for l in nyx_hierarchy.levels]
            back = handle.read()
        assert back.time == nyx_hierarchy.time
        assert back.step == nyx_hierarchy.step
        for lvl in range(nyx_hierarchy.nlevels):
            assert list(back[lvl].boxarray.boxes) == \
                list(nyx_hierarchy[lvl].boxarray.boxes)
            assert back[lvl].multifab.distribution == \
                nyx_hierarchy[lvl].multifab.distribution

    def test_template_read_of_headered_file_ignores_header(self, nyx_hierarchy, tmp_path):
        """The template fallback is a genuinely independent path."""
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        # poison the header: the template read must not even parse it
        _rewrite_superblock(path, lambda sb: sb.__setitem__(
            "header", {"format": "amric-plotfile", "version": FORMAT_VERSION + 7}))
        back = AMRICReader().read_plotfile(str(path), nyx_hierarchy)
        assert np.isfinite(back[0].multifab.to_global(
            "baryon_density", back[0].domain)).all()

    def test_nocomp_plotfile_opens_without_template(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "raw.h5z"
        repro.write(nyx_hierarchy, str(path), method="nocomp")
        with repro.open(str(path)) as handle:
            assert handle.codec == "none"
            back = handle.read()
        for (lvl, name), original in _to_globals(nyx_hierarchy).items():
            restored = back[lvl].multifab.to_global(name, back[lvl].domain)
            np.testing.assert_array_equal(restored, original)

    def test_amrex_plotfile_info_but_no_staged_read(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "amrex.h5z"
        repro.write(nyx_hierarchy, str(path), method="amrex_1d", error_bound=1e-2)
        with repro.open(str(path)) as handle:
            assert handle.header.method == "amrex_1d"
            assert handle.describe()["codec"] == "sz_1d"
            with pytest.raises(ValueError, match="box-major"):
                handle.read()


class TestLazyRandomAccess:
    def test_read_field_decodes_only_intersecting_chunks(self, multirank_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(multirank_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as full_handle:
            info = full_handle.dataset_info("level_0/baryon_density")
            assert info.nchunks > 1, "need a multi-chunk dataset for the test"
            full_handle.read_field("baryon_density", level=0, refill=False)
            full_chunks = full_handle.stats.chunks_decoded
            assert full_chunks >= info.nchunks

        with repro.open(str(path)) as handle:
            # one unit block of one rank: strictly fewer chunks than the dataset
            plan = handle._scan()
            slot = plan.dataset(0, "baryon_density").slots[0]
            handle.read_field("baryon_density", level=0, box=slot.block.box,
                              refill=False)
            assert handle.stats.chunks_decoded == 1
            assert handle.stats.chunks_decoded < info.nchunks

    def test_full_read_reuses_random_access_cache(self, multirank_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(multirank_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as fresh:
            fresh.read()
            total = fresh.stats.chunks_decoded
        with repro.open(str(path)) as handle:
            plan = handle._scan()
            slot = plan.dataset(0, "baryon_density").slots[0]
            handle.read_field("baryon_density", level=0, box=slot.block.box,
                              refill=False)
            warmed = handle.stats.chunks_decoded
            assert warmed >= 1
            back = handle.read()
            # the full read decoded everything except the cached chunks
            assert handle.stats.chunks_decoded == total
            assert handle.stats.cache_hits >= warmed
        expected = _to_globals(multirank_hierarchy)
        for (lvl, name), orig in expected.items():
            assert back[lvl].multifab.to_global(name, back[lvl].domain).shape \
                == orig.shape

    def test_read_field_cache_hits_on_repeat(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as handle:
            box = Box.from_shape((8, 8, 8))
            handle.read_field("temperature", level=0, box=box, refill=False)
            first = handle.stats.chunks_decoded
            handle.read_field("temperature", level=0, box=box, refill=False)
            assert handle.stats.chunks_decoded == first
            assert handle.stats.cache_hits > 0

    def test_read_field_matches_full_read(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as handle:
            back = handle.read()
            for level in range(back.nlevels):
                expected = back[level].multifab.to_global(
                    "baryon_density", back[level].domain)
                dense = handle.read_field("baryon_density", level=level)
                mask = back[level].boxarray.coverage_mask(back[level].domain)
                np.testing.assert_array_equal(dense[mask], expected[mask])

    def test_read_field_box_subset_matches_dense(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as handle:
            dense = handle.read_field("xmom", level=0)
            box = Box((5, 3, 7), (20, 17, 30))
            window = handle.read_field("xmom", level=0, box=box)
            domain = handle._scan().structure[0].domain
            np.testing.assert_array_equal(
                window, dense[box.slices(origin=domain.lo)])

    def test_read_field_refill_uses_conservative_average(self, nyx_hierarchy, tmp_path):
        from repro.amr.upsample import average_down, covered_mask

        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as handle:
            back = handle.read()
            coarse = handle.read_field("baryon_density", level=0, refill=True)
        mask = covered_mask(nyx_hierarchy, 0)
        assert mask.any()
        # the refilled region equals the average-down of the reconstruction
        fine = back[1].multifab.to_global("baryon_density", back[1].domain)
        expected = average_down(fine, nyx_hierarchy.ref_ratios[0])
        np.testing.assert_allclose(coarse[mask], expected[mask], rtol=0, atol=1e-12)

    def test_read_field_validates_level_and_field(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with repro.open(str(path)) as handle:
            with pytest.raises(ValueError, match="level 9"):
                handle.read_field("baryon_density", level=9)
            with pytest.raises(KeyError, match="no_such_field"):
                handle.read_field("no_such_field")


class TestLegacyFallback:
    def test_headerless_requires_template(self, legacy_plotfile):
        path, _ = legacy_plotfile
        with pytest.raises(ValueError, match="no self-describing header"):
            AMRICReader().read_plotfile(path)

    def test_headerless_reads_with_template(self, legacy_plotfile, nyx_hierarchy):
        path, cfg = legacy_plotfile
        back = AMRICReader(cfg).read_plotfile(path, nyx_hierarchy)
        for name in nyx_hierarchy.component_names:
            vrange = nyx_hierarchy[1].multifab.value_range(name)
            orig = nyx_hierarchy[1].multifab.to_global(name, nyx_hierarchy[1].domain)
            rec = back[1].multifab.to_global(name, back[1].domain)
            mask = nyx_hierarchy[1].boxarray.coverage_mask(nyx_hierarchy[1].domain)
            assert np.max(np.abs(orig[mask] - rec[mask])) <= \
                1e-3 * max(vrange, 1e-30) * (1 + 1e-6)

    def test_headerless_handle_still_inspects(self, legacy_plotfile, nyx_hierarchy):
        path, _ = legacy_plotfile
        with repro.open(path) as handle:
            assert not handle.is_self_describing
            assert handle.fields == tuple(nyx_hierarchy.component_names)
            assert handle.levels == (0, 1)
            back = handle.read(template=nyx_hierarchy)
        assert back.nlevels == nyx_hierarchy.nlevels


class TestCorruptHeaders:
    def _written(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        return path

    def test_version_skew_raises(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)

        def skew(sb):
            sb["header"]["version"] = FORMAT_VERSION + 1

        _rewrite_superblock(path, skew)
        with pytest.raises(ValueError, match="not supported"):
            repro.open(str(path))

    def test_wrong_format_tag_raises(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)
        _rewrite_superblock(path, lambda sb: sb["header"].__setitem__(
            "format", "not-a-plotfile"))
        with pytest.raises(ValueError, match="format"):
            repro.open(str(path))

    @pytest.mark.parametrize("key", ["levels", "components", "ref_ratios",
                                     "codec", "unit_block_size"])
    def test_missing_required_key_raises(self, nyx_hierarchy, tmp_path, key):
        path = self._written(nyx_hierarchy, tmp_path)
        _rewrite_superblock(path, lambda sb: sb["header"].pop(key))
        with pytest.raises(ValueError, match="malformed plotfile header"):
            repro.open(str(path))

    def test_garbled_structure_raises_not_garbage(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)

        def garble(sb):
            # a box whose hi < lo - 1 cannot construct a Box
            sb["header"]["levels"][0]["boxes"][0] = [[0, 0, 0], [-5, -5, -5]]

        _rewrite_superblock(path, garble)
        with pytest.raises(ValueError):
            repro.open(str(path)).read()

    def test_rank_out_of_range_raises(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)

        def garble(sb):
            sb["header"]["levels"][0]["rank_of_box"][0] = 999

        _rewrite_superblock(path, garble)
        with pytest.raises(ValueError, match="rank assignments"):
            repro.open(str(path))

    def test_structure_mismatching_file_raises(self, multirank_hierarchy, tmp_path):
        """A valid header for a *different* hierarchy must not place garbage."""
        path = self._written(multirank_hierarchy, tmp_path)

        def shrink(sb):
            lvl0 = sb["header"]["levels"][0]
            keep = max(1, len(lvl0["boxes"]) - 1)
            lvl0["boxes"] = lvl0["boxes"][:keep]
            lvl0["rank_of_box"] = lvl0["rank_of_box"][:keep]

        _rewrite_superblock(path, shrink)
        with pytest.raises(ValueError, match="does not match this file"):
            repro.open(str(path)).read()

    def test_truncated_file_raises(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            repro.open(str(path))

    def test_truncated_preamble_raises(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)
        path.write_bytes(path.read_bytes()[:6])
        with pytest.raises(ValueError, match="truncated"):
            repro.open(str(path))

    def test_non_object_header_raises(self, nyx_hierarchy, tmp_path):
        path = self._written(nyx_hierarchy, tmp_path)
        _rewrite_superblock(path, lambda sb: sb.__setitem__("header", [1, 2, 3]))
        with pytest.raises(ValueError, match="expected an object"):
            repro.open(str(path))


class TestStagedPipelinePieces:
    def test_scan_plan_covers_every_dataset(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "plt.h5z"
        _write(nyx_hierarchy, path, error_bound=1e-3)
        with H5LiteFile(str(path), "r") as f:
            plan = scan_plotfile(f)
            assert {d.name for d in plan.datasets} == set(f.dataset_names())
            for dplan in plan.datasets:
                info = f.datasets[dplan.name]
                assert dplan.nchunks == info.nchunks
                assert sum(s.size for s in dplan.slots) <= info.nelements
                # rank-aligned plotfiles: every slot stays inside its chunk
                for slot in dplan.slots:
                    chunk = slot.offset // dplan.chunk_elements
                    assert (slot.offset + slot.size - 1) // dplan.chunk_elements == chunk

    def test_in_memory_write_has_no_header_to_scan(self, nyx_hierarchy):
        # commit_header is a no-op without a file; nothing to assert beyond
        # "doesn't explode" and the report still being complete
        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(
            nyx_hierarchy, None)
        assert report.path is None
        assert report.ndatasets > 0

    def test_commit_header_writes_parseable_json(self, nyx_hierarchy, tmp_path):
        path = tmp_path / "hdr.h5z"
        cfg = AMRICConfig(error_bound=1e-3)
        with H5LiteFile(str(path), "w") as f:
            stages.commit_header(f, nyx_hierarchy, cfg)
            f.create_dataset("x", np.arange(8.0))
        with H5LiteFile(str(path), "r") as f:
            header = PlotfileHeader.from_json(f.header)
        assert header.codec == cfg.compressor
        assert header.unit_block_size == cfg.unit_block_size

"""Tests for SLE strategies, layout change, chunk planning and the AMRIC filter."""

import numpy as np
import pytest

from repro.compress.metrics import psnr
from repro.compress.sz_lr import SZLRCompressor
from repro.core.config import AMRICConfig
from repro.core.filter_mod import AMRICLevelFilter, ChunkPlan, plan_level_chunks
from repro.core.layout import build_rank_buffer_box_major, build_rank_buffer_field_major
from repro.core.preprocess import preprocess_level
from repro.core.sle import (
    STRATEGIES,
    compress_blocks_individual,
    compress_blocks_lm,
    compress_blocks_sle,
)


def _unit_blocks_from(hierarchy, level=1, field="baryon_density", unit=16, limit=None):
    from repro.core.preprocess import extract_block_data

    pre = preprocess_level(hierarchy, level, unit_block_size=unit)
    blocks = pre.unit_blocks if limit is None else pre.unit_blocks[:limit]
    return extract_block_data(hierarchy[level], field, blocks)


class TestSLEStrategies:
    @pytest.fixture(scope="class")
    def blocks(self, nyx_hierarchy):
        # many small unit blocks — the regime SLE is designed for (§3.2)
        return _unit_blocks_from(nyx_hierarchy, level=0, unit=8)

    def test_all_strategies_roundtrip_shapes(self, blocks):
        comp = SZLRCompressor(1e-3)
        for name, fn in STRATEGIES.items():
            encoded = fn(blocks, comp)
            assert encoded.strategy == name
            assert len(encoded.reconstructions) == len(blocks)
            for orig, rec in zip(blocks, encoded.reconstructions):
                assert rec.shape == orig.shape

    def test_sle_beats_individual_encoding_size(self, blocks):
        """SLE's premise: a shared Huffman table removes per-block overhead."""
        comp = SZLRCompressor(1e-3)
        sle = compress_blocks_sle(blocks, comp)
        individual = compress_blocks_individual(blocks, comp)
        assert sle.compressed_nbytes < individual.compressed_nbytes

    def test_sle_predicts_better_than_lm(self, blocks):
        """Prediction confined to unit blocks (SLE) beats prediction across the
        artificial seams of linear merging, at matched error bound."""
        comp = SZLRCompressor(1e-3)
        sle = compress_blocks_sle(blocks, comp)
        lm = compress_blocks_lm(blocks, comp)
        orig = np.concatenate([b.reshape(-1) for b in blocks])
        rec_sle = np.concatenate([r.reshape(-1) for r in sle.reconstructions])
        rec_lm = np.concatenate([r.reshape(-1) for r in lm.reconstructions])
        mse_sle = float(np.mean((orig - rec_sle) ** 2))
        mse_lm = float(np.mean((orig - rec_lm) ** 2))
        assert mse_sle <= mse_lm * 1.05

    def test_error_bound_respected_by_all(self, blocks):
        comp = SZLRCompressor(1e-3)
        vrange = max(float(b.max()) for b in blocks) - min(float(b.min()) for b in blocks)
        for fn in STRATEGIES.values():
            encoded = fn(blocks, comp)
            for orig, rec in zip(blocks, encoded.reconstructions):
                assert np.max(np.abs(orig - rec)) <= 1e-3 * vrange * (1 + 1e-9)

    def test_empty_blocks_rejected(self):
        comp = SZLRCompressor(1e-3)
        for fn in STRATEGIES.values():
            with pytest.raises(ValueError):
                fn([], comp)


class TestLayout:
    def test_field_major_groups_fields(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 0, unit_block_size=16)
        rank = pre.unit_blocks[0].rank
        names = nyx_hierarchy.component_names
        fm = build_rank_buffer_field_major(nyx_hierarchy[0], pre.unit_blocks, rank, names)
        assert fm.layout == "field_major"
        # field ranges are contiguous, ordered, and cover the buffer
        stops = [fm.field_ranges[n][1] for n in names]
        starts = [fm.field_ranges[n][0] for n in names]
        assert starts[0] == 0 and stops[-1] == fm.nelements
        assert all(stops[i] == starts[i + 1] for i in range(len(names) - 1))
        # the per-field slice matches the level data
        field0 = fm.field_slice(names[0])
        assert field0.size == fm.nelements // len(names)

    def test_box_major_interleaves_fields(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 0, unit_block_size=16)
        rank = pre.unit_blocks[0].rank
        names = nyx_hierarchy.component_names
        bm = build_rank_buffer_box_major(nyx_hierarchy[0], pre.unit_blocks, rank, names)
        fm = build_rank_buffer_field_major(nyx_hierarchy[0], pre.unit_blocks, rank, names)
        assert bm.nelements == fm.nelements
        # same multiset of values, different order
        np.testing.assert_allclose(np.sort(bm.data), np.sort(fm.data))
        # box-major: consecutive segments cycle through the fields
        seg_fields = [s[0] for s in bm.segments[:len(names)]]
        assert seg_fields == list(names)
        # field-major has no contiguous range bookkeeping for box-major
        with pytest.raises(KeyError):
            bm.field_slice(names[0])

    def test_box_major_smallest_segment_caps_chunk(self, nyx_hierarchy):
        """The §3.3 constraint: the chunk cannot exceed the smallest field segment."""
        pre = preprocess_level(nyx_hierarchy, 0, unit_block_size=16)
        rank = pre.unit_blocks[0].rank
        bm = build_rank_buffer_box_major(nyx_hierarchy[0], pre.unit_blocks, rank,
                                         nyx_hierarchy.component_names)
        fm = build_rank_buffer_field_major(nyx_hierarchy[0], pre.unit_blocks, rank,
                                           nyx_hierarchy.component_names)
        field_elems = fm.nelements // len(nyx_hierarchy.component_names)
        assert bm.smallest_segment < field_elems


class TestChunkPlanning:
    def test_plan_level_chunks_modified(self):
        layout = plan_level_chunks([1000, 4000, 2500], modify_filter=True)
        assert layout.chunk_elements == 4000
        assert layout.total_padded_elements == 0

    def test_plan_level_chunks_naive(self):
        layout = plan_level_chunks([1000, 4000, 2500], modify_filter=False)
        assert layout.total_padded_elements == 3000 + 0 + 1500


class TestAMRICLevelFilter:
    def _blocks_and_chunk(self, hierarchy, field="baryon_density"):
        from repro.core.preprocess import extract_block_data

        pre = preprocess_level(hierarchy, 1, unit_block_size=16)
        blocks = pre.blocks_on_rank(pre.unit_blocks[0].rank)
        data = extract_block_data(hierarchy[1], field, blocks)
        flat = np.concatenate([d.reshape(-1) for d in data])
        vrange = float(max(d.max() for d in data) - min(d.min() for d in data))
        plan = ChunkPlan(field=field, block_shapes=[d.shape for d in data],
                         value_range=vrange)
        return data, flat, plan

    @pytest.mark.parametrize("compressor", ["sz_lr", "sz_interp"])
    def test_encode_decode_roundtrip(self, nyx_hierarchy, compressor):
        data, flat, plan = self._blocks_and_chunk(nyx_hierarchy)
        chunk_elements = flat.size + 100  # oversized global chunk
        chunk = np.zeros(chunk_elements)
        chunk[:flat.size] = flat
        filt = AMRICLevelFilter(compressor=compressor, error_bound=1e-3)
        filt.queue_plan(plan)
        payload = filt.encode(chunk, actual_elements=flat.size)
        decoded = filt.decode(payload, chunk_elements)
        # decoded valid prefix matches the recorded reconstructions
        recons = filt.last_reconstructions[0]
        rec_flat = np.concatenate([r.reshape(-1) for r in recons])
        np.testing.assert_allclose(decoded[:flat.size], rec_flat, atol=0, rtol=0)
        # error bound holds
        assert np.max(np.abs(decoded[:flat.size] - flat)) <= 1e-3 * plan.value_range * (1 + 1e-9)

    def test_encode_without_plan_raises(self):
        filt = AMRICLevelFilter()
        with pytest.raises(RuntimeError):
            filt.encode(np.zeros(10))

    def test_plan_size_mismatch_raises(self, nyx_hierarchy):
        data, flat, plan = self._blocks_and_chunk(nyx_hierarchy)
        filt = AMRICLevelFilter()
        filt.queue_plan(plan)
        with pytest.raises(ValueError):
            filt.encode(np.zeros(flat.size + 10), actual_elements=flat.size + 5)

    def test_filter_stats_track_padding(self, nyx_hierarchy):
        data, flat, plan = self._blocks_and_chunk(nyx_hierarchy)
        filt = AMRICLevelFilter()
        filt.queue_plan(plan)
        chunk = np.zeros(flat.size + 500)
        chunk[:flat.size] = flat
        filt.encode(chunk, actual_elements=flat.size)
        assert filt.stats.calls == 1
        assert filt.stats.padded_elements == 500

    def test_invalid_compressor_name(self):
        with pytest.raises(ValueError):
            AMRICLevelFilter(compressor="zfp")


class TestConfig:
    def test_defaults_valid(self):
        cfg = AMRICConfig()
        assert cfg.compressor == "sz_lr"
        assert cfg.use_sle and cfg.adaptive_block_size

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            AMRICConfig(compressor="lz4")
        with pytest.raises(ValueError):
            AMRICConfig(unit_block_size=1)
        with pytest.raises(ValueError):
            AMRICConfig(error_bound=-1.0)
        with pytest.raises(ValueError):
            AMRICConfig(interp_arrangement="random")

    def test_with_overrides(self):
        cfg = AMRICConfig()
        off = cfg.with_overrides(use_sle=False, remove_redundancy=False)
        assert not off.use_sle and not off.remove_redundancy
        assert cfg.use_sle  # original untouched

    def test_make_compressors_via_registry(self):
        cfg = AMRICConfig(error_bound=1e-4, sz_block_size=4)
        lr = cfg.make_codec("sz_lr", block_size=cfg.sz_block_size)
        assert lr.block_size == 4
        lr8 = cfg.make_codec("sz_lr", block_size=8)
        assert lr8.block_size == 8
        interp = cfg.make_codec("sz_interp", anchor_stride=cfg.interp_anchor_stride)
        assert interp.anchor_stride == cfg.interp_anchor_stride

    def test_legacy_make_helpers_removed(self):
        # the deprecated make_sz_lr/make_sz_interp shims are gone; everything
        # routes through the codec registry (make_codec)
        cfg = AMRICConfig()
        assert not hasattr(cfg, "make_sz_lr")
        assert not hasattr(cfg, "make_sz_interp")

"""Cross-source read identity and progressive (max_level) reads.

The PR-7 acceptance bar: reads through every :class:`ByteSource`
implementation are element-wise identical to :class:`LocalFileSource`,
across codecs, for plotfiles and series, with the shm backend included.
Plus the progressive-read semantics of ``max_level`` and the I/O counters
that :class:`~repro.core.reader.ReadStats` now carries.
"""

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.analysis.reporting import io_stats_rows
from repro.h5lite.source import MemorySource, RangeSource
from repro.parallel import shm
from repro.series.writer import write_series
from repro.service.engine import BoxQuery, QueryEngine

SPATIAL_CODECS = ("sz_lr", "sz_interp", "sz_1d", "zfp_like")

#: every non-default way to reach the bytes (None = LocalFileSource baseline)
SOURCES = ("mmap", "memory", "block:4k,gap:8k,readahead:2")

BACKENDS = ("serial", "thread", "process") + \
    (("shm",) if shm.HAVE_SHARED_MEMORY else ())


def _to_globals(hierarchy):
    return {(lvl, name): hierarchy[lvl].multifab.to_global(name, hierarchy[lvl].domain)
            for lvl in range(hierarchy.nlevels)
            for name in hierarchy.component_names}


@pytest.fixture(scope="module", params=SPATIAL_CODECS)
def codec_plotfile(request, nyx_hierarchy, tmp_path_factory):
    path = tmp_path_factory.mktemp("src") / f"plt_{request.param}.h5z"
    repro.write(nyx_hierarchy, str(path), compressor=request.param,
                error_bound=1e-3)
    return str(path)


@pytest.fixture(scope="module")
def baseline(codec_plotfile):
    with repro.open(codec_plotfile) as handle:
        return _to_globals(handle.read())


@pytest.fixture(scope="module")
def series_dir(tmp_path_factory):
    from repro.apps.nyx import NyxSimulation

    sim = NyxSimulation(coarse_shape=(24, 24, 24), nranks=2,
                        target_fine_density=0.03, max_grid_size=12, seed=42,
                        drift_rate=0.05)
    path = str(tmp_path_factory.mktemp("src_series") / "run")
    write_series(list(sim.run(4)), path, keyframe_interval=2,
                 error_bound=1e-3)
    return path


class TestPlotfileIdentity:
    @pytest.mark.parametrize("source", SOURCES)
    def test_full_read_identical_across_sources(self, codec_plotfile,
                                                baseline, source):
        with repro.open(codec_plotfile, source=source) as handle:
            got = _to_globals(handle.read())
        assert set(got) == set(baseline)
        for key, expected in baseline.items():
            np.testing.assert_array_equal(got[key], expected, err_msg=str(key))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_identical_over_mmap(self, codec_plotfile, baseline,
                                          backend):
        # mmap hands out memoryview payloads: the process/shm backends must
        # materialise them at the pool boundary and still decode identically
        with repro.open(codec_plotfile, backend=backend,
                        source="mmap") as handle:
            got = _to_globals(handle.read())
        for key, expected in baseline.items():
            np.testing.assert_array_equal(got[key], expected, err_msg=str(key))

    def test_box_read_identical_over_range_source(self, codec_plotfile):
        box = Box((4, 4, 4), (24, 24, 24))
        with repro.open(codec_plotfile) as handle:
            expected = handle.read_field("baryon_density", level=0, box=box)
        with repro.open(codec_plotfile,
                        source="block:2k,cache:64k") as handle:
            got = handle.read_field("baryon_density", level=0, box=box)
        np.testing.assert_array_equal(got, expected)

    def test_source_instance_is_used_as_is(self, codec_plotfile, baseline):
        source = MemorySource.from_file(codec_plotfile)
        with repro.open(codec_plotfile, source=source) as handle:
            got = _to_globals(handle.read())
        for key, expected in baseline.items():
            np.testing.assert_array_equal(got[key], expected, err_msg=str(key))


class TestSeriesIdentity:
    @pytest.mark.parametrize("source", SOURCES)
    def test_reads_identical_across_sources(self, series_dir, source):
        with repro.open_series(series_dir) as series:
            expected_field = series.read_field("baryon_density", step=3)
            times, expected_slice = series.time_slice(
                "baryon_density", box=Box((0, 0, 0), (8, 8, 8)))
        with repro.open_series(series_dir, source=source) as series:
            np.testing.assert_array_equal(
                series.read_field("baryon_density", step=3), expected_field)
            got_times, got_slice = series.time_slice(
                "baryon_density", box=Box((0, 0, 0), (8, 8, 8)))
            np.testing.assert_array_equal(got_times, times)
            np.testing.assert_array_equal(got_slice, expected_slice)

    def test_rejects_single_source_instance(self, series_dir):
        source = MemorySource(b"x")
        with pytest.raises(ValueError, match="one file per step"):
            repro.open_series(series_dir, source=source)

    def test_factory_opens_every_step(self, series_dir):
        built = []

        def factory(path):
            src = MemorySource.from_file(path)
            built.append(path)
            return src

        with repro.open_series(series_dir, source=factory) as series:
            series.read_field("baryon_density", step=0)
            series.read_field("baryon_density", step=3)
        assert len(built) >= 2                  # step 3 chains back to a key


class TestProgressiveReads:
    @pytest.fixture(scope="class")
    def plotfile(self, nyx_hierarchy, tmp_path_factory):
        path = tmp_path_factory.mktemp("prog") / "plt.h5z"
        repro.write(nyx_hierarchy, str(path), error_bound=1e-3)
        return str(path)

    def test_max_level_zero_matches_refill_off(self, plotfile):
        with repro.open(plotfile) as handle:
            capped = handle.read_field("baryon_density", level=0, max_level=0)
            no_refill = handle.read_field("baryon_density", level=0,
                                          refill=False)
            full = handle.read_field("baryon_density", level=0)
        np.testing.assert_array_equal(capped, no_refill)
        # the cap must matter: the hierarchy has refined regions, so the
        # full-resolution read differs where refill recursed
        assert not np.array_equal(capped, full)

    def test_max_level_at_finest_is_full_resolution(self, plotfile):
        with repro.open(plotfile) as handle:
            nlevels = len(handle.header.levels)
            capped = handle.read_field("baryon_density", level=0,
                                       max_level=nlevels - 1)
            full = handle.read_field("baryon_density", level=0)
        np.testing.assert_array_equal(capped, full)

    def test_level_above_cap_raises(self, plotfile):
        with repro.open(plotfile) as handle:
            with pytest.raises(ValueError, match="finer than max_level"):
                handle.read_field("baryon_density", level=1, max_level=0)

    def test_coarse_probe_fetches_fewer_bytes(self, plotfile):
        with repro.open(plotfile, source="block:1k,cache:64k") as handle:
            handle.read_field("baryon_density", level=0, max_level=0)
            coarse_bytes = handle.stats.bytes_read
        with repro.open(plotfile, source="block:1k,cache:64k") as handle:
            handle.read_field("baryon_density", level=0)
            full_bytes = handle.stats.bytes_read
        assert coarse_bytes < full_bytes


class TestIOStats:
    def test_superblock_read_is_charged(self, codec_plotfile):
        with repro.open(codec_plotfile) as handle:
            assert handle.stats.bytes_read > 0          # preamble + superblock
            assert handle.stats.requests >= 2
            assert handle.stats.coalesced_requests >= 1

    def test_full_read_counters(self, codec_plotfile):
        with repro.open(codec_plotfile) as handle:
            handle.read()
            stats = handle.stats
            assert stats.requests >= stats.coalesced_requests >= 1
            assert stats.bytes_read > 0
            rows = {r["metric"]: r["value"] for r in io_stats_rows(handle)}
            assert rows["bytes_read"] == stats.bytes_read
            assert rows["source_requests"] == stats.requests

    def test_range_source_rows_carry_cache_counters(self, codec_plotfile):
        with repro.open(codec_plotfile,
                        source="block:4k,cache:64k") as handle:
            assert isinstance(handle.source_stats.hit_rate, float)
            handle.read()
            rows = {r["metric"]: r["value"] for r in io_stats_rows(handle)}
            assert rows["source_cache_hits"] >= 0
            assert rows["source_coalescing_factor"] >= 1.0

    def test_series_accumulates_step_io(self, series_dir):
        with repro.open_series(series_dir, source="memory") as series:
            opened = series.stats.bytes_read    # superblocks charged at open?
            series.read_field("baryon_density", step=3)
            assert series.stats.bytes_read > opened
            assert series.stats.requests >= series.stats.coalesced_requests

    def test_engine_surfaces_io_totals(self, codec_plotfile):
        with QueryEngine(source="mmap") as engine:
            expected = engine.read_field(codec_plotfile, "baryon_density")
            with repro.open(codec_plotfile) as handle:
                np.testing.assert_array_equal(
                    expected, handle.read_field("baryon_density"))
            stats = engine.stats()
            assert stats["io_bytes_read"] > 0
            assert stats["io_requests"] >= stats["io_coalesced_requests"]

    def test_engine_honours_max_level(self, codec_plotfile):
        with QueryEngine() as engine:
            capped = engine.read_field(codec_plotfile, "baryon_density",
                                       level=0, max_level=0)
        with repro.open(codec_plotfile) as handle:
            np.testing.assert_array_equal(
                capped, handle.read_field("baryon_density", level=0,
                                          refill=False))

    def test_boxquery_max_level_round_trips(self):
        query = BoxQuery(path="p", field="f", level=0, max_level=1)
        assert BoxQuery.from_json(query.to_json()) == query
        assert BoxQuery.from_json({"path": "p", "field": "f"}).max_level is None

"""Tests for §3.1 pre-processing: redundancy removal, truncation, reorganisation."""

import numpy as np
import pytest

from repro.core.adaptive import residue_block_shapes, select_sz_block_size
from repro.core.preprocess import (
    extract_block_data,
    kept_regions_for_level,
    pack_blocks_cluster,
    pack_blocks_linear,
    preprocess_level,
    truncate_regions,
    unpack_blocks,
)


class TestRedundancyRemoval:
    def test_coarse_level_loses_covered_cells(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 0, unit_block_size=16, remove_redundancy=True)
        covered = nyx_hierarchy.covered_cells(0)
        assert pre.removed_cells == covered
        assert pre.kept_cells == nyx_hierarchy[0].num_cells - covered
        assert 0 < pre.removed_fraction < 1

    def test_finest_level_keeps_everything(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 1, unit_block_size=16, remove_redundancy=True)
        assert pre.removed_cells == 0
        assert pre.kept_cells == nyx_hierarchy[1].num_cells

    def test_removal_disabled(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 0, unit_block_size=16, remove_redundancy=False)
        assert pre.removed_cells == 0
        assert pre.kept_cells == nyx_hierarchy[0].num_cells

    def test_kept_regions_disjoint_from_fine(self, nyx_hierarchy):
        kept = kept_regions_for_level(nyx_hierarchy, 0, True)
        fine_coarsened = nyx_hierarchy[1].boxarray.coarsen(nyx_hierarchy.ref_ratios[0])
        for regions in kept:
            for region in regions:
                assert not fine_coarsened.intersects(region)

    def test_unit_blocks_respect_size_and_ownership(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 0, unit_block_size=8)
        dm = nyx_hierarchy[0].multifab.distribution
        for block in pre.unit_blocks:
            assert all(s <= 8 for s in block.box.shape)
            assert block.rank == dm[block.box_index]
            # the block must live inside its parent box
            assert nyx_hierarchy[0].boxarray[block.box_index].contains(block.box)

    def test_truncate_invalid_unit_size(self, nyx_hierarchy):
        kept = kept_regions_for_level(nyx_hierarchy, 0, True)
        with pytest.raises(ValueError):
            truncate_regions(kept, nyx_hierarchy[0].multifab.distribution, 0)

    def test_extract_block_data_matches_source(self, nyx_hierarchy):
        pre = preprocess_level(nyx_hierarchy, 1, unit_block_size=16)
        level = nyx_hierarchy[1]
        data = extract_block_data(level, "baryon_density", pre.unit_blocks[:5])
        for block, arr in zip(pre.unit_blocks[:5], data):
            assert arr.shape == block.box.shape
            fab = level.multifab[block.box_index]
            comp = level.multifab.component_index("baryon_density")
            np.testing.assert_array_equal(
                arr, fab.component(comp)[block.box.slices(origin=fab.box.lo)])


class TestPacking:
    def _blocks(self, n=7, shape=(8, 8, 8), seed=0):
        rng = np.random.default_rng(seed)
        return [rng.normal(size=shape) for _ in range(n)]

    def test_cluster_roundtrip(self):
        blocks = self._blocks(10)
        packed, arrangement = pack_blocks_cluster(blocks)
        back = unpack_blocks(packed, arrangement)
        assert len(back) == 10
        for a, b in zip(blocks, back):
            np.testing.assert_array_equal(a, b)

    def test_linear_roundtrip_with_mixed_shapes(self):
        rng = np.random.default_rng(1)
        blocks = [rng.normal(size=(8, 8, 8)), rng.normal(size=(8, 8, 4)),
                  rng.normal(size=(4, 8, 8))]
        packed, arrangement = pack_blocks_linear(blocks)
        back = unpack_blocks(packed, arrangement)
        for a, b in zip(blocks, back):
            np.testing.assert_array_equal(a, b)

    def test_cluster_is_more_cubic_than_linear(self):
        blocks = self._blocks(27)
        cluster, arr_c = pack_blocks_cluster(blocks)
        linear, arr_l = pack_blocks_linear(blocks)
        def aspect(shape):
            return max(shape) / min(shape)
        assert aspect(cluster.shape) < aspect(linear.shape)
        assert cluster.size >= 27 * 512
        assert linear.shape[2] == 27 * 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pack_blocks_cluster([])
        with pytest.raises(ValueError):
            pack_blocks_linear([])


class TestAdaptiveBlockSize:
    def test_equation_1(self):
        # unit mod 6 <= 2  -> 4
        assert select_sz_block_size(8) == 4     # 8 mod 6 == 2
        assert select_sz_block_size(12) == 4    # 12 mod 6 == 0
        assert select_sz_block_size(32) == 4    # 32 mod 6 == 2
        # unit mod 6 > 2   -> 6
        assert select_sz_block_size(16) == 6    # 16 mod 6 == 4
        assert select_sz_block_size(22) == 6    # 22 mod 6 == 4
        # very large unit blocks -> 6 regardless
        assert select_sz_block_size(64) == 6
        assert select_sz_block_size(128) == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            select_sz_block_size(0)

    def test_residue_block_shapes_unit8_block6(self):
        """Figure 8a: an 8³ unit block under 6³ truncation leaves thin residues."""
        shapes = residue_block_shapes(8, 6)
        assert (6, 6, 6) in shapes
        assert (6, 6, 2) in shapes
        assert (2, 2, 2) in shapes
        assert len(shapes) == 8
        # total volume preserved
        assert sum(a * b * c for a, b, c in shapes) == 8 ** 3

    def test_residue_block_shapes_unit8_block4(self):
        """Figure 8b: with 4³ blocks there are no thin residues."""
        shapes = residue_block_shapes(8, 4)
        assert set(shapes) == {(4, 4, 4)}
        assert len(shapes) == 8

"""The staged writer pipeline (plan/pack/encode/commit) and backend equivalence."""

import os

import numpy as np
import pytest

from repro.core import AMRICConfig, AMRICReader, AMRICWriter
from repro.core.stages import (
    FilterSpec,
    encode_job,
    make_encode_job,
    pack_dataset,
    plan_write,
)
from repro.parallel import SimComm
from repro.parallel.backend import ParallelBackend


class TestPlanStage:
    def test_plan_structure(self, nyx_hierarchy):
        cfg = AMRICConfig(error_bound=1e-3)
        plan = plan_write(nyx_hierarchy, cfg)
        assert len(plan.levels) == nyx_hierarchy.nlevels
        assert plan.total_cells == nyx_hierarchy.num_cells
        assert plan.removed_cells == nyx_hierarchy.covered_cells(0)
        # one dataset per level per field
        assert len(plan.datasets) == nyx_hierarchy.nlevels * nyx_hierarchy.ncomp
        for dplan in plan.datasets:
            assert dplan.chunk_elements == max(dplan.per_rank_elements)
            for spec in dplan.rank_specs:
                assert spec.valid_elements == sum(b.size for b in spec.blocks)
                assert spec.actual_elements == spec.valid_elements  # modify_filter on

    def test_plan_naive_filter_pads(self, nyx_hierarchy):
        cfg = AMRICConfig(error_bound=1e-3, modify_filter=False)
        plan = plan_write(nyx_hierarchy, cfg)
        for dplan in plan.datasets:
            for spec in dplan.rank_specs:
                assert spec.actual_elements == dplan.chunk_elements

    def test_plan_charges_allreduce_per_dataset(self, nyx_hierarchy):
        cfg = AMRICConfig(error_bound=1e-3)
        comm = SimComm(max(lvl.multifab.distribution.nranks
                           for lvl in nyx_hierarchy.levels))
        plan = plan_write(nyx_hierarchy, cfg, comm)
        assert comm.counters.reductions == len(plan.datasets)


class TestPackEncodeStages:
    def test_pack_fills_chunks_and_pads(self, nyx_hierarchy):
        cfg = AMRICConfig(error_bound=1e-3)
        plan = plan_write(nyx_hierarchy, cfg)
        dplan = plan.datasets[0]
        packed = pack_dataset(nyx_hierarchy[dplan.level], dplan)
        assert packed.data.size == dplan.total_elements
        ce = dplan.chunk_elements
        for i, spec in enumerate(dplan.rank_specs):
            chunk = packed.data[i * ce:(i + 1) * ce]
            assert np.all(chunk[spec.valid_elements:] == 0.0)   # padding tail
            flat = np.concatenate([d.reshape(-1) for d in packed.originals[i]])
            np.testing.assert_array_equal(chunk[:spec.valid_elements], flat)

    def test_encode_job_is_pure(self, nyx_hierarchy):
        """The same job encodes to the same bytes every time (no hidden state)."""
        cfg = AMRICConfig(error_bound=1e-3)
        plan = plan_write(nyx_hierarchy, cfg)
        dplan = plan.datasets[0]
        packed = pack_dataset(nyx_hierarchy[dplan.level], dplan)
        job = make_encode_job(packed, FilterSpec.from_config(cfg))
        first = encode_job(job)
        second = encode_job(job)
        assert first.payloads == second.payloads
        assert first.filter_calls == len(dplan.rank_specs)


class TestBackendEquivalence:
    """Serial and pooled backends must agree to the byte."""

    @pytest.mark.parametrize("compressor", ["sz_lr", "sz_interp"])
    def test_thread_backend_byte_identical(self, nyx_hierarchy, compressor, tmp_path):
        cfg = AMRICConfig(compressor=compressor, error_bound=1e-3)
        serial_path = str(tmp_path / "serial.h5z")
        thread_path = str(tmp_path / "thread.h5z")
        serial = AMRICWriter(cfg).write_plotfile(nyx_hierarchy, serial_path)
        with ParallelBackend("thread", max_workers=4) as backend:
            threaded = AMRICWriter(cfg, backend=backend).write_plotfile(
                nyx_hierarchy, thread_path)
        assert serial.backend == "serial" and threaded.backend == "parallel"
        with open(serial_path, "rb") as a, open(thread_path, "rb") as b:
            assert a.read() == b.read()
        # identical reports, field by field
        assert serial.records == threaded.records
        assert serial.rank_workloads == threaded.rank_workloads
        assert serial.collectives == threaded.collectives

    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_pool_backends_byte_identical_files(self, nyx_hierarchy, kind, tmp_path):
        """The full pool matrix, down to the file hash (process pools pickle
        the encode jobs into separate interpreters and must still agree)."""
        cfg = AMRICConfig(error_bound=1e-3)
        serial_path = str(tmp_path / "serial.h5z")
        pooled_path = str(tmp_path / "pooled.h5z")
        AMRICWriter(cfg).write_plotfile(nyx_hierarchy, serial_path)
        with ParallelBackend(kind, max_workers=2) as backend:
            AMRICWriter(cfg, backend=backend).write_plotfile(nyx_hierarchy, pooled_path)
        with open(serial_path, "rb") as a, open(pooled_path, "rb") as b:
            assert a.read() == b.read()

    def test_config_backend_string(self, nyx_hierarchy):
        serial = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        # writer-owned pools are released by close() / the context manager
        with AMRICWriter(AMRICConfig(error_bound=1e-3, backend="thread",
                                     backend_workers=2)) as writer:
            pooled = writer.write_plotfile(nyx_hierarchy)
        assert serial.records == pooled.records

    def test_mismatched_comm_rejected(self, nyx_hierarchy):
        nranks = max(lvl.multifab.distribution.nranks
                     for lvl in nyx_hierarchy.levels)
        writer = AMRICWriter(AMRICConfig(error_bound=1e-3),
                             comm=SimComm(nranks + 3))
        with pytest.raises(ValueError, match="ranks"):
            writer.write_plotfile(nyx_hierarchy)

    def test_parallel_file_reads_back(self, nyx_hierarchy, tmp_path):
        cfg = AMRICConfig(error_bound=1e-3, backend="thread")
        path = str(tmp_path / "plt.h5z")
        AMRICWriter(cfg).write_plotfile(nyx_hierarchy, path)
        back = AMRICReader(cfg).read_plotfile(path, nyx_hierarchy)
        for name in nyx_hierarchy.component_names:
            vrange = nyx_hierarchy[1].multifab.value_range(name)
            orig = nyx_hierarchy[1].multifab.to_global(name, nyx_hierarchy[1].domain)
            rec = back[1].multifab.to_global(name, back[1].domain)
            mask = nyx_hierarchy[1].boxarray.coverage_mask(nyx_hierarchy[1].domain)
            assert np.max(np.abs(orig[mask] - rec[mask])) <= \
                1e-3 * max(vrange, 1e-30) * (1 + 1e-6)


class TestReportAccounting:
    def test_compressed_bytes_conserved_per_rank(self, nyx_hierarchy):
        """The largest-remainder split must conserve the total exactly."""
        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        assert sum(w.compressed_bytes for w in report.rank_workloads) == \
            report.compressed_bytes

    def test_collective_counters(self, nyx_hierarchy, tmp_path):
        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(
            nyx_hierarchy, str(tmp_path / "plt.h5z"))
        assert report.collectives["collective_writes"] == report.ndatasets
        assert report.collectives["reductions"] == report.ndatasets
        # one encode barrier per level that holds data
        assert report.collectives["barriers"] == nyx_hierarchy.nlevels
        assert os.path.exists(report.path)

    def test_psnr_weighted_and_worst(self, nyx_hierarchy):
        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        weighted = report.psnr
        worst = report.worst_psnr
        assert set(weighted) == set(nyx_hierarchy.component_names)
        for name, recs in ((n, [r for r in report.records if r.field == n])
                           for n in weighted):
            # the weighted aggregate matches pooling the squared errors by hand
            n = sum(r.n_elements for r in recs)
            mse = sum(r.sq_error for r in recs) / n
            vrange = max(r.value_max for r in recs) - min(r.value_min for r in recs)
            expected = 20 * np.log10(vrange) - 10 * np.log10(mse)
            assert weighted[name] == pytest.approx(expected)
            assert worst[name] == min(r.psnr for r in recs)
            # pooling can only improve on (or match) the worst level
            assert weighted[name] >= worst[name] - 1e-9

    def test_psnr_falls_back_when_legacy_records_mixed_in(self, nyx_hierarchy):
        """A field with any record lacking the error terms uses the worst level."""
        from repro.core.pipeline import LevelFieldRecord

        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        name = report.records[0].field
        report.records.append(LevelFieldRecord(
            level=99, field=name, raw_bytes=800, compressed_bytes=100,
            psnr=1.0, max_error=0.5, filter_calls=1, nblocks=1))  # legacy: n_elements=0
        assert report.psnr[name] == report.worst_psnr[name] == 1.0

    def test_records_carry_error_terms(self, nyx_hierarchy):
        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        for rec in report.records:
            assert rec.n_elements == rec.raw_bytes // 8
            assert rec.value_max >= rec.value_min
            assert rec.mse >= 0.0

"""Shared fixtures for the AMRIC core tests: small two-level hierarchies."""

import numpy as np
import pytest

from repro.apps import nyx_run, warpx_run


@pytest.fixture(scope="session")
def nyx_hierarchy():
    """A small Nyx-like two-level hierarchy (session-scoped: it is read-only)."""
    return nyx_run(coarse_shape=(32, 32, 32), nranks=4, target_fine_density=0.03,
                   seed=101).hierarchy


@pytest.fixture(scope="session")
def warpx_hierarchy():
    return warpx_run(coarse_shape=(16, 16, 128), nranks=4, target_fine_density=0.03,
                     seed=202).hierarchy

"""Integration tests for the AMRIC writer/reader and the baseline writers."""

import os

import numpy as np
import pytest

from repro.amr.upsample import covered_mask
from repro.baselines import AMReXOriginalWriter, NoCompressionWriter, tac_compress, zmesh_compress
from repro.core import AMRICConfig, AMRICReader, AMRICWriter


class TestAMRICWriter:
    @pytest.mark.parametrize("compressor", ["sz_lr", "sz_interp"])
    def test_write_report_structure(self, nyx_hierarchy, compressor, tmp_path):
        writer = AMRICWriter(AMRICConfig(compressor=compressor, error_bound=1e-3))
        report = writer.write_plotfile(nyx_hierarchy, str(tmp_path / "plt.h5z"))
        assert report.compression_ratio > 2
        assert report.removed_cells == nyx_hierarchy.covered_cells(0)
        assert report.total_cells == nyx_hierarchy.num_cells
        # one dataset per level per field
        assert report.ndatasets == nyx_hierarchy.nlevels * nyx_hierarchy.ncomp
        assert set(r.field for r in report.records) == set(nyx_hierarchy.component_names)
        assert os.path.getsize(report.path) < report.raw_bytes
        assert np.isfinite(report.mean_psnr)
        row = report.as_row()
        assert row["method"].startswith("amric")

    def test_in_memory_write_matches_file_write(self, nyx_hierarchy):
        writer = AMRICWriter(AMRICConfig(error_bound=1e-3))
        in_memory = writer.write_plotfile(nyx_hierarchy, None)
        assert in_memory.path is None
        assert in_memory.compression_ratio > 2
        assert in_memory.total_filter_calls > 0

    def test_error_bound_respected_end_to_end(self, nyx_hierarchy, tmp_path):
        cfg = AMRICConfig(compressor="sz_lr", error_bound=1e-3)
        writer = AMRICWriter(cfg)
        path = str(tmp_path / "plt.h5z")
        report = writer.write_plotfile(nyx_hierarchy, path)
        reader = AMRICReader(cfg)
        back = reader.read_plotfile(path, nyx_hierarchy)
        for name in nyx_hierarchy.component_names:
            vrange = nyx_hierarchy[1].multifab.value_range(name)
            orig = nyx_hierarchy[1].multifab.to_global(name, nyx_hierarchy[1].domain)
            rec = back[1].multifab.to_global(name, back[1].domain)
            # restrict to cells covered by fine boxes (fill value elsewhere)
            mask = nyx_hierarchy[1].boxarray.coverage_mask(nyx_hierarchy[1].domain)
            err = np.max(np.abs(orig[mask] - rec[mask]))
            assert err <= 1e-3 * max(vrange, 1e-30) * (1 + 1e-6)

    def test_reader_fills_covered_coarse_regions(self, nyx_hierarchy, tmp_path):
        cfg = AMRICConfig(error_bound=1e-3)
        path = str(tmp_path / "plt.h5z")
        AMRICWriter(cfg).write_plotfile(nyx_hierarchy, path)
        back = AMRICReader(cfg).read_plotfile(path, nyx_hierarchy)
        mask = covered_mask(nyx_hierarchy, 0)
        rec = back[0].multifab.to_global("baryon_density", back[0].domain)
        orig = nyx_hierarchy[0].multifab.to_global("baryon_density", nyx_hierarchy[0].domain)
        # covered coarse cells are refilled with something close to the original
        # coarse values (they were averaged down from the reconstructed fine level)
        rel_err = np.abs(rec[mask] - orig[mask]) / orig[mask].max()
        assert np.median(rel_err) < 0.2

    def test_per_rank_workloads_consistent(self, nyx_hierarchy):
        report = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        total_raw = sum(w.raw_bytes for w in report.rank_workloads)
        assert total_raw == report.raw_bytes
        assert sum(w.compressor_launches for w in report.rank_workloads) == \
            report.total_filter_calls

    def test_smaller_error_bound_lower_cr_higher_psnr(self, nyx_hierarchy):
        loose = AMRICWriter(AMRICConfig(error_bound=1e-2)).write_plotfile(nyx_hierarchy)
        tight = AMRICWriter(AMRICConfig(error_bound=1e-4)).write_plotfile(nyx_hierarchy)
        assert loose.compression_ratio > tight.compression_ratio
        assert tight.mean_psnr > loose.mean_psnr

    def test_redundancy_removal_improves_ratio(self, nyx_hierarchy):
        on = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        off = AMRICWriter(AMRICConfig(error_bound=1e-3, remove_redundancy=False)) \
            .write_plotfile(nyx_hierarchy)
        # removal processes strictly less data (the covered coarse cells) and
        # must not inflate the stored size; the byte saving itself scales with
        # the covered fraction, which is small for this 2-level test hierarchy
        assert on.removed_cells > 0 and off.removed_cells == 0
        assert on.raw_bytes < off.raw_bytes
        assert on.compressed_bytes <= off.compressed_bytes * 1.05

    def test_writer_overrides_kwargs(self, nyx_hierarchy):
        writer = AMRICWriter(error_bound=1e-2, compressor="sz_interp")
        assert writer.config.compressor == "sz_interp"
        report = writer.write_plotfile(nyx_hierarchy)
        assert report.error_bound == 1e-2


class TestBaselineWriters:
    def test_nocomp_report(self, nyx_hierarchy, tmp_path):
        report = NoCompressionWriter().write_plotfile(nyx_hierarchy, str(tmp_path / "n.h5z"))
        assert report.compression_ratio == pytest.approx(1.0)
        assert report.mean_psnr == float("inf")
        assert report.raw_bytes == nyx_hierarchy.nbytes
        assert os.path.getsize(report.path) >= report.raw_bytes

    def test_amrex_writer_report(self, nyx_hierarchy, tmp_path):
        writer = AMReXOriginalWriter(error_bound=1e-2)
        report = writer.write_plotfile(nyx_hierarchy, str(tmp_path / "a.h5z"))
        assert report.compression_ratio > 1.5
        assert report.raw_bytes == nyx_hierarchy.nbytes   # no redundancy removal
        assert np.isfinite(report.mean_psnr)
        # the small chunk size forces many compressor launches
        expected_calls = int(np.ceil(nyx_hierarchy.nbytes / 8 / 1024))
        assert sum(w.compressor_launches for w in report.rank_workloads) >= expected_calls * 0.9

    def test_amrex_chunk_validation(self):
        with pytest.raises(ValueError):
            AMReXOriginalWriter(chunk_elements=1)

    def test_amric_beats_amrex_on_ratio_and_quality(self, nyx_hierarchy):
        """The Table 2 / Table 3 headline, on the scaled-down Nyx run."""
        amric = AMRICWriter(AMRICConfig(error_bound=1e-3)).write_plotfile(nyx_hierarchy)
        amrex = AMReXOriginalWriter(error_bound=1e-2).write_plotfile(nyx_hierarchy)
        assert amric.compression_ratio > amrex.compression_ratio
        assert amric.mean_psnr > amrex.mean_psnr
        # and far fewer compressor launches
        assert amric.total_filter_calls * 10 < \
            sum(w.compressor_launches for w in amrex.rank_workloads)


class TestOfflineBaselines:
    def test_zmesh_stats(self, nyx_hierarchy):
        stats = zmesh_compress(nyx_hierarchy, "baryon_density", 1e-3)
        assert stats.method == "zmesh"
        assert stats.compression_ratio > 2
        assert np.isfinite(stats.psnr)

    def test_zmesh_reorder_length(self, nyx_hierarchy):
        from repro.baselines import zmesh_reorder

        stream = zmesh_reorder(nyx_hierarchy, "baryon_density")
        covered = nyx_hierarchy.covered_cells(0)
        expected = (nyx_hierarchy[0].num_cells - covered) + covered * 8
        assert stream.size == expected

    def test_tac_stats(self, nyx_hierarchy):
        stats = tac_compress(nyx_hierarchy, "baryon_density", 1e-3, partition_size=16)
        assert stats.method == "tac"
        assert stats.compression_ratio > 1.5
        assert stats.extra["partitions"] >= 1

    def test_amric_beats_tac_rate_distortion(self, nyx_hierarchy):
        """Figure 16's headline: AMRIC > TAC at matched error bound."""
        eb = 1e-3
        tac = tac_compress(nyx_hierarchy, "baryon_density", eb, partition_size=16)
        amric = AMRICWriter(AMRICConfig(error_bound=eb)).write_plotfile(nyx_hierarchy)
        amric_density = [r for r in amric.records if r.field == "baryon_density"]
        amric_cr = sum(r.raw_bytes for r in amric_density) / \
            max(sum(r.compressed_bytes for r in amric_density), 1)
        assert amric_cr > tac.compression_ratio

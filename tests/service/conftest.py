"""Shared fixtures for the service-layer tests: one plotfile, one series."""

import pytest

import repro
from repro.apps import nyx_run
from repro.apps.nyx import NyxSimulation


@pytest.fixture(scope="session")
def service_plotfile(tmp_path_factory):
    """A mid-size two-level plotfile every service test can share (read-only)."""
    hierarchy = nyx_run(coarse_shape=(32, 32, 32), nranks=4,
                        target_fine_density=0.03, seed=11).hierarchy
    path = tmp_path_factory.mktemp("service") / "nyx.h5z"
    repro.write(hierarchy, str(path), error_bound=1e-3)
    return str(path)


@pytest.fixture(scope="session")
def service_series(tmp_path_factory):
    """A 6-step delta-compressed series (keyframes at steps 0 and 4)."""
    sim = NyxSimulation(coarse_shape=(16, 16, 16), nranks=2,
                        target_fine_density=0.05, max_grid_size=8, seed=3,
                        drift_rate=0.05, growth_rate=0.02, regrid_interval=4)
    directory = tmp_path_factory.mktemp("service") / "run"
    repro.write_series(sim.run(6), str(directory), keyframe_interval=4,
                       error_bound=1e-3)
    return str(directory)

"""The transport-neutral request core: dispatch, admission, telemetry."""

import io
import json

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.service.core import (
    ERROR_OVERSIZED_REQUEST,
    ERROR_RATE_LIMITED,
    ERROR_UNAUTHORIZED,
    ERROR_UNKNOWN_OP,
    ERROR_UNSUPPORTED_VERSION,
    PROTOCOL_VERSION,
    RateLimiter,
    RequestContext,
    RequestHandler,
    check_version,
    error_envelope,
    resolve_auth_token,
)


class TestDispatch:
    def test_ping(self):
        with RequestHandler() as handler:
            response = handler.handle({"id": 1, "op": "ping"})
        assert response["ok"] is True
        assert response["id"] == 1
        assert response["v"] == PROTOCOL_VERSION
        assert response["result"]["pong"] is True

    def test_read_field_identical_to_direct(self, service_plotfile):
        box = Box((2, 2, 2), (17, 17, 17))
        with RequestHandler() as handler:
            response = handler.handle(
                {"id": 1, "op": "read_field", "path": service_plotfile,
                 "field": "baryon_density", "level": 0,
                 "box": [list(box.lo), list(box.hi)]})
        with repro.open(service_plotfile) as direct:
            expected = direct.read_field("baryon_density", box=box)
        assert np.array_equal(response["result"], expected)

    def test_unknown_op_kind(self):
        with RequestHandler() as handler:
            response = handler.handle({"id": 5, "op": "florble"})
        assert response["ok"] is False
        assert response["kind"] == ERROR_UNKNOWN_OP

    def test_engine_errors_become_replies_not_raises(self, tmp_path):
        with RequestHandler() as handler:
            response = handler.handle(
                {"id": 2, "op": "describe", "path": str(tmp_path / "nope")})
        assert response["ok"] is False
        assert "nope" in response["error"]

    def test_newer_protocol_version_is_refused(self):
        with RequestHandler() as handler:
            response = handler.handle(
                {"v": PROTOCOL_VERSION + 1, "id": 3, "op": "ping"})
        assert response["ok"] is False
        assert response["kind"] == ERROR_UNSUPPORTED_VERSION
        # the shared negotiation rule agrees
        assert check_version({"v": PROTOCOL_VERSION + 1}) is not None
        assert check_version({"v": PROTOCOL_VERSION, "op": "ping"}) is None
        assert check_version({"op": "ping"}) is None  # version-1 peer

    def test_subscribe_is_not_a_unary_op(self):
        with RequestHandler() as handler:
            response = handler.handle({"id": 4, "op": "subscribe"})
        assert response["ok"] is False
        assert "streaming" in response["error"]


class TestAuth:
    def test_open_service_needs_no_token(self):
        with RequestHandler() as handler:
            assert handler.handle({"id": 1, "op": "ping"})["ok"] is True

    def test_missing_token_refused(self):
        with RequestHandler(auth_token="s3cret") as handler:
            response = handler.handle({"id": 1, "op": "ping"})
        assert response["ok"] is False
        assert response["kind"] == ERROR_UNAUTHORIZED

    def test_wrong_token_refused(self):
        with RequestHandler(auth_token="s3cret") as handler:
            response = handler.handle(
                {"id": 1, "op": "ping", "auth": "wrong"})
        assert response["ok"] is False
        assert response["kind"] == ERROR_UNAUTHORIZED

    def test_valid_token_admitted_via_wire_field(self):
        with RequestHandler(auth_token="s3cret") as handler:
            response = handler.handle(
                {"id": 1, "op": "ping", "auth": "s3cret"})
        assert response["ok"] is True

    def test_valid_token_admitted_via_context(self):
        with RequestHandler(auth_token="s3cret") as handler:
            response = handler.handle(
                {"id": 1, "op": "ping"},
                RequestContext(transport="http", auth="s3cret"))
        assert response["ok"] is True

    def test_refusals_happen_before_dispatch(self, tmp_path):
        # an unauthenticated request must not touch the engine
        with RequestHandler(auth_token="s3cret") as handler:
            response = handler.handle(
                {"id": 1, "op": "describe", "path": str(tmp_path / "x")})
        assert response["kind"] == ERROR_UNAUTHORIZED
        assert "describe" not in response.get("error", "describe")


class TestResolveAuthToken:
    def test_none_disables_auth(self):
        assert resolve_auth_token(None) is None

    def test_literal(self):
        assert resolve_auth_token("hunter2") == "hunter2"

    def test_env_indirection(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_TOKEN", "from-env")
        assert resolve_auth_token("env:REPRO_TEST_TOKEN") == "from-env"

    def test_unset_env_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_TOKEN", raising=False)
        with pytest.raises(ValueError, match="REPRO_TEST_TOKEN"):
            resolve_auth_token("env:REPRO_TEST_TOKEN")

    def test_file_indirection(self, tmp_path):
        secret = tmp_path / "token"
        secret.write_text("from-file\n")
        assert resolve_auth_token(f"file:{secret}") == "from-file"

    def test_empty_file_is_an_error(self, tmp_path):
        secret = tmp_path / "token"
        secret.write_text("\n")
        with pytest.raises(ValueError, match="empty"):
            resolve_auth_token(f"file:{secret}")

    def test_empty_literal_is_an_error(self):
        with pytest.raises(ValueError):
            resolve_auth_token("")


class TestSizeLimit:
    def test_oversized_request_refused(self):
        with RequestHandler(max_request_bytes=100) as handler:
            response = handler.handle(
                {"id": 1, "op": "ping"},
                RequestContext(transport="tcp", nbytes=101))
        assert response["ok"] is False
        assert response["kind"] == ERROR_OVERSIZED_REQUEST

    def test_unmeasured_and_small_requests_admitted(self):
        with RequestHandler(max_request_bytes=100) as handler:
            assert handler.handle(
                {"id": 1, "op": "ping"},
                RequestContext(nbytes=100))["ok"] is True
            assert handler.handle({"id": 2, "op": "ping"})["ok"] is True

    def test_size_refused_before_auth_checked(self):
        with RequestHandler(auth_token="s3cret",
                            max_request_bytes=10) as handler:
            response = handler.handle(
                {"id": 1, "op": "ping"}, RequestContext(nbytes=11))
        assert response["kind"] == ERROR_OVERSIZED_REQUEST


class TestRateLimiter:
    def test_burst_then_refusal_then_refill(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=3, clock=lambda: clock[0])
        assert [limiter.allow("a") for _ in range(4)] \
            == [True, True, True, False]
        clock[0] += 2.0  # 2 tokens back at 1 rps
        assert limiter.allow("a") is True
        assert limiter.allow("a") is True
        assert limiter.allow("a") is False

    def test_buckets_are_per_client(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: clock[0])
        assert limiter.allow("a") is True
        assert limiter.allow("a") is False
        assert limiter.allow("b") is True  # a's dry bucket is not b's

    def test_bucket_never_exceeds_burst(self):
        clock = [0.0]
        limiter = RateLimiter(rate=10.0, burst=2, clock=lambda: clock[0])
        assert limiter.allow("a")
        clock[0] += 100.0  # a century of refill still caps at burst
        assert [limiter.allow("a") for _ in range(3)] == [True, True, False]

    def test_idle_buckets_are_pruned(self):
        clock = [0.0]
        limiter = RateLimiter(rate=100.0, burst=1, clock=lambda: clock[0])
        limiter._PRUNE_AT = 4  # force the path without 4096 clients
        for i in range(4):
            limiter.allow(f"client-{i}")
        clock[0] += 10.0  # everyone refilled -> all prunable
        limiter.allow("one-more")
        assert len(limiter._buckets) <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=5, burst=0.5)

    def test_handler_rate_limit_exhaustion_and_refill(self):
        clock = [0.0]
        with RequestHandler(rate_limit=1.0, rate_burst=2,
                            rate_clock=lambda: clock[0]) as handler:
            context = RequestContext(transport="tcp", client="10.0.0.1")
            assert handler.handle({"id": 1, "op": "ping"}, context)["ok"]
            assert handler.handle({"id": 2, "op": "ping"}, context)["ok"]
            refused = handler.handle({"id": 3, "op": "ping"}, context)
            assert refused["ok"] is False
            assert refused["kind"] == ERROR_RATE_LIMITED
            clock[0] += 1.5
            assert handler.handle({"id": 4, "op": "ping"}, context)["ok"]


class TestTelemetry:
    def test_tallies_and_log_lines(self):
        log = io.StringIO()
        with RequestHandler(request_log=log) as handler:
            handler.handle({"id": 1, "op": "ping", "trace": "t-abc"},
                           RequestContext(transport="http"))
            handler.handle({"id": 2, "op": "florble"})
        snapshot = handler.registry.snapshot()
        requests = {tuple(sorted((s.get("labels") or {}).items())): s["value"]
                    for s in snapshot["repro_server_requests_total"]["samples"]}
        assert requests[(("op", "ping"),)] == 1
        assert requests[(("op", "florble"),)] == 1
        errors = {s["labels"]["kind"]: s["value"]
                  for s in snapshot["repro_server_errors_total"]["samples"]}
        assert errors[ERROR_UNKNOWN_OP] == 1
        records = [json.loads(line) for line in
                   log.getvalue().strip().splitlines()]
        assert len(records) == 2
        assert records[0]["event"] == "request"
        assert records[0]["op"] == "ping"
        assert records[0]["ok"] is True
        assert records[0]["trace"] == "t-abc"
        assert records[0]["transport"] == "http"
        assert records[1]["ok"] is False
        assert records[1]["error_kind"] == ERROR_UNKNOWN_OP

    def test_refusals_are_tallied_with_kind(self):
        with RequestHandler(auth_token="s3cret") as handler:
            handler.handle({"id": 1, "op": "ping"})
        snapshot = handler.registry.snapshot()
        errors = {s["labels"]["kind"]: s["value"]
                  for s in snapshot["repro_server_errors_total"]["samples"]}
        assert errors[ERROR_UNAUTHORIZED] == 1

    def test_stream_events_are_tallied(self, service_series):
        log = io.StringIO()
        with RequestHandler(request_log=log) as handler:
            events = list(handler.subscribe_events(
                service_series, trace="t-sub", transport="http"))
        assert [e["event"] for e in events] \
            == ["step"] * 6 + ["finalized"]
        snapshot = handler.registry.snapshot()
        counts = {s["labels"]["event"]: s["value"]
                  for s in
                  snapshot["repro_server_stream_events_total"]["samples"]}
        assert counts["step"] == 6
        assert counts["finalized"] == 1
        records = [json.loads(line) for line in
                   log.getvalue().strip().splitlines()]
        assert all(r["event"] == "stream" for r in records)
        assert all(r["transport"] == "http" for r in records)
        assert all(r["trace"] == "t-sub" for r in records)


class TestErrorEnvelope:
    def test_shape(self):
        envelope = error_envelope(7, "boom", kind=ERROR_UNKNOWN_OP)
        assert envelope == {"v": PROTOCOL_VERSION, "id": 7, "ok": False,
                            "error": "boom", "kind": ERROR_UNKNOWN_OP}

    def test_kindless(self):
        assert "kind" not in error_envelope(None, "boom")


class TestWireShims:
    def test_moved_names_still_import_with_deprecation(self):
        import importlib

        import repro.service.wire as wire
        importlib.reload(wire)
        with pytest.warns(DeprecationWarning, match="moved to"):
            assert wire.PROTOCOL_VERSION == PROTOCOL_VERSION
        with pytest.warns(DeprecationWarning):
            assert wire.error_envelope(1, "x")["error"] == "x"
        with pytest.raises(AttributeError):
            wire.no_such_name

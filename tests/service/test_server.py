"""The TCP service: wire format, concurrent clients, errors, CLI verbs."""

import json
import threading

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.cli import main as cli_main
from repro.service import BoxQuery, QueryEngine, ReproClient, ReproServer
from repro.service.client import ServiceError
from repro.service.wire import decode_line, encode_line, from_wire, to_wire


@pytest.fixture(scope="module")
def server(service_plotfile, service_series):
    with ReproServer(port=0) as running:
        yield running


@pytest.fixture()
def client(server):
    with ReproClient(port=server.port) as c:
        yield c


class TestWireFormat:
    def test_arrays_round_trip_bit_exact(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal((3, 4, 5))
        back = from_wire(json.loads(json.dumps(to_wire(arr))))
        assert back.dtype == arr.dtype and back.shape == arr.shape
        assert np.array_equal(back, arr)          # bitwise, not approx

    def test_nested_structures_round_trip(self):
        payload = {"times": np.arange(3.0), "meta": {"n": np.int64(7)},
                   "list": [np.float64(1.5), "text", None]}
        back = decode_line(encode_line(payload))
        assert np.array_equal(back["times"], np.arange(3.0))
        assert back["meta"]["n"] == 7
        assert back["list"] == [1.5, "text", None]

    def test_nan_and_inf_survive(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.0])
        back = decode_line(encode_line(arr))
        assert np.isnan(back[0]) and np.isinf(back[1]) and np.isinf(-back[2])


class TestServedReads:
    def test_ping_describe(self, client, service_plotfile):
        assert client.ping() is True
        summary = client.describe(service_plotfile)
        assert summary["self_describing"] is True
        assert "baryon_density" in summary["fields"]

    def test_read_field_identical_to_direct(self, client, service_plotfile):
        box = Box((3, 3, 3), (18, 18, 18))
        with repro.open(service_plotfile) as direct:
            for level in (0, 1):
                served = client.read_field(service_plotfile, "baryon_density",
                                           level=level, box=box)
                assert np.array_equal(
                    served, direct.read_field("baryon_density", level=level,
                                              box=box))

    def test_read_batch_identical_to_direct(self, client, service_plotfile):
        queries = [BoxQuery(path=service_plotfile, field="temperature",
                            box=Box((i, i, 0), (i + 7, i + 7, 7)))
                   for i in range(5)]
        served = client.read_batch(queries)
        with repro.open(service_plotfile) as direct:
            for q, arr in zip(queries, served):
                assert np.array_equal(
                    arr, direct.read_field(q.field, level=q.level, box=q.box))

    def test_series_time_slice_identical_to_direct(self, client, service_series):
        box = Box((0, 0, 0), (5, 5, 5))
        times, values = client.time_slice(service_series, "baryon_density",
                                          box=box, refill=False)
        with repro.open_series(service_series) as direct:
            t2, v2 = direct.time_slice("baryon_density", box=box, refill=False)
        assert np.array_equal(times, t2)
        assert np.array_equal(values, v2)

    def test_stats_op(self, client, service_plotfile):
        client.read_field(service_plotfile, "baryon_density",
                          box=Box((0, 0, 0), (7, 7, 7)))
        stats = client.stats()
        assert stats["requests"] >= 1
        assert "cache_hits" in stats


class TestConcurrentClients:
    def test_many_clients_read_identical_values(self, server, service_plotfile):
        with repro.open(service_plotfile) as direct:
            expected = {level: direct.read_field("baryon_density", level=level)
                        for level in (0, 1)}
        failures = []

        def worker(tid):
            try:
                with ReproClient(port=server.port) as mine:
                    for round_ in range(4):
                        level = (tid + round_) % 2
                        arr = mine.read_field(service_plotfile,
                                              "baryon_density", level=level)
                        if not np.array_equal(arr, expected[level]):
                            failures.append((tid, round_, level))
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append((tid, repr(exc)))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_clients_share_one_cache(self, service_plotfile):
        engine = QueryEngine()
        with ReproServer(engine, port=0) as running:
            box = Box((0, 0, 0), (15, 15, 15))
            with ReproClient(port=running.port) as first:
                first.read_field(service_plotfile, "baryon_density", box=box,
                                 refill=False)
            decoded_after_first = engine.stats()["chunks_decoded"]
            with ReproClient(port=running.port) as second:
                second.read_field(service_plotfile, "baryon_density", box=box,
                                  refill=False)
            assert engine.stats()["chunks_decoded"] == decoded_after_first
        engine.close()


class TestServerErrors:
    def test_unknown_op_is_an_error_reply(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client.call("frobnicate")

    def test_missing_file_is_an_error_reply(self, client, tmp_path):
        with pytest.raises(ServiceError, match="no such file"):
            client.describe(str(tmp_path / "nope.h5z"))

    def test_connection_survives_an_error(self, client, service_plotfile):
        with pytest.raises(ServiceError):
            client.call("frobnicate")
        assert client.ping() is True

    def test_bad_json_line_gets_error_reply(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), 10) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert "bad request line" in reply["error"]


class TestCLIVerbs:
    def test_query_cli_against_running_server(self, server, service_plotfile,
                                              service_series, capsys):
        port = ["--port", str(server.port)]
        assert cli_main(["query", "ping", *port]) == 0
        assert "pong" in capsys.readouterr().out
        assert cli_main(["query", "describe", service_plotfile, *port]) == 0
        assert '"self_describing": true' in capsys.readouterr().out
        assert cli_main(["query", "read-field", service_plotfile,
                         "--field", "baryon_density", "--box", "0:7,0:7,0:7",
                         *port]) == 0
        assert "shape=(8, 8, 8)" in capsys.readouterr().out
        assert cli_main(["query", "time-slice", service_series,
                         "--field", "baryon_density", "--box", "0:3,0:3,0:3",
                         "--no-refill", *port]) == 0
        assert "over 6 steps" in capsys.readouterr().out
        assert cli_main(["query", "stats", *port]) == 0
        assert "cache_hits" in capsys.readouterr().out

    def test_query_cli_json_read_field(self, server, service_plotfile, capsys):
        assert cli_main(["query", "read-field", service_plotfile,
                         "--field", "baryon_density", "--box", "0:3,0:3,0:3",
                         "--json", "--port", str(server.port)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shape"] == [4, 4, 4]

    def test_query_cli_argument_validation(self, server, capsys):
        port = ["--port", str(server.port)]
        assert cli_main(["query", "read-field", *port]) == 1
        assert "needs a path" in capsys.readouterr().err
        assert cli_main(["query", "read-field", "x.h5z", *port]) == 1
        assert "needs --field" in capsys.readouterr().err
        assert cli_main(["query", "read-field", "x.h5z", "--field", "rho",
                         "--box", "0-7", *port]) == 1
        assert "bad --box" in capsys.readouterr().err

    def test_query_cli_unreachable_server_fails_cleanly(self, capsys):
        assert cli_main(["query", "ping", "--port", "1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_query_cli_server_error_is_one_line(self, server, tmp_path, capsys):
        # a ServiceError reply must become a one-line error, not a traceback
        assert cli_main(["query", "describe", str(tmp_path / "nope.h5z"),
                         "--port", str(server.port)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "no such file" in err


class TestServerLifecycle:
    def test_stopped_server_cannot_be_restarted(self):
        srv = ReproServer(port=0).start()
        srv.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            srv.start()

    def test_failed_bind_leaves_the_instance_inert(self, server):
        # the background fixture already owns its port; binding it again fails
        doomed = ReproServer(port=server.port)
        with pytest.raises(OSError):
            doomed.start()
        assert doomed._thread is None and doomed._loop is None
        doomed.stop()   # a clean no-op, not a hang


class TestClientDesyncProtection:
    def test_mismatched_response_id_closes_the_client(self, server):
        # a stale line (e.g. left over from a timed-out call) must not be
        # returned as the answer to the next request
        with ReproClient(port=server.port) as c:
            class _StaleFile:
                def readline(self_inner):
                    return encode_line({"id": 999, "ok": True, "result": {}})

                def close(self_inner):
                    pass

            c._rfile = _StaleFile()
            with pytest.raises(ConnectionError, match="out-of-sync"):
                c.ping()
            assert c._closed

"""The HTTP/JSON gateway: endpoints, status codes, auth, parity with TCP."""

import http.client
import json
import threading

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.service import ReproClient, ReproServer
from repro.service.client import ServiceError
from repro.service.core import (
    ERROR_OVERSIZED_REQUEST,
    ERROR_RATE_LIMITED,
    ERROR_UNAUTHORIZED,
    ERROR_UNKNOWN_OP,
    PROTOCOL_VERSION,
    RequestHandler,
)
from repro.service.http import HttpClient, HttpServer


@pytest.fixture(scope="module")
def http_server(service_plotfile, service_series):
    with HttpServer(port=0) as running:
        yield running


@pytest.fixture()
def client(http_server):
    with HttpClient(port=http_server.port) as c:
        yield c


def _raw(port: int, method: str, path: str, body=None, headers=None):
    """One raw HTTP exchange: (status, decoded-JSON-or-None, headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except ValueError:
            decoded = None
        return resp.status, decoded, dict(resp.getheaders())
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, http_server):
        status, body, _ = _raw(http_server.port, "GET", "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["protocol_version"] == PROTOCOL_VERSION

    def test_ping_via_client(self, client):
        assert client.ping() is True

    def test_query_endpoint_envelope(self, http_server):
        status, body, _ = _raw(
            http_server.port, "POST", "/v1/query",
            body=json.dumps({"id": 9, "op": "ping"}),
            headers={"Content-Type": "application/json"})
        assert status == 200
        assert body["ok"] is True
        assert body["id"] == 9
        assert body["result"]["pong"] is True

    def test_op_sugar_endpoint(self, http_server, service_plotfile):
        status, body, _ = _raw(
            http_server.port, "POST", "/v1/describe",
            body=json.dumps({"path": service_plotfile}),
            headers={"Content-Type": "application/json"})
        assert status == 200
        assert body["result"]["self_describing"] is True

    def test_op_sugar_contradiction_is_refused(self, http_server):
        status, body, _ = _raw(
            http_server.port, "POST", "/v1/describe",
            body=json.dumps({"op": "ping"}),
            headers={"Content-Type": "application/json"})
        assert status == 400
        assert "contradicts" in body["error"]

    def test_unknown_endpoint_404_structured(self, http_server):
        status, body, _ = _raw(http_server.port, "GET", "/nope")
        assert status == 404
        assert body["ok"] is False
        assert body["kind"] == ERROR_UNKNOWN_OP

    def test_unknown_op_404_structured(self, http_server):
        status, body, _ = _raw(
            http_server.port, "POST", "/v1/florble", body=b"{}",
            headers={"Content-Type": "application/json"})
        assert status == 404
        assert body["kind"] == ERROR_UNKNOWN_OP

    def test_missing_content_length_411(self, http_server):
        conn = http.client.HTTPConnection("127.0.0.1", http_server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/v1/query")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 411
        finally:
            conn.close()

    def test_engine_error_is_400_with_message(self, http_server, tmp_path):
        status, body, _ = _raw(
            http_server.port, "POST", "/v1/query",
            body=json.dumps({"op": "describe", "path": str(tmp_path / "x")}),
            headers={"Content-Type": "application/json"})
        assert status == 400
        assert body["ok"] is False

    def test_metrics_prometheus_exposition(self, client):
        client.ping()
        text = client.metrics()
        assert "# TYPE repro_server_requests_total counter" in text
        assert 'repro_server_requests_total{op="ping"}' in text

    def test_metrics_content_type(self, http_server):
        _, _, headers = _raw(http_server.port, "GET", "/metrics")
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE


class TestReadParity:
    def test_http_tcp_direct_element_wise_identical(self, http_server,
                                                    service_plotfile):
        box = Box((3, 3, 3), (18, 18, 18))
        tcp_server = ReproServer(handler=http_server.handler, port=0).start()
        try:
            with HttpClient(port=http_server.port) as hc, \
                    ReproClient(port=tcp_server.port) as tc, \
                    repro.open(service_plotfile) as direct:
                for level in (0, 1):
                    via_http = hc.read_field(service_plotfile,
                                             "baryon_density",
                                             level=level, box=box)
                    via_tcp = tc.read_field(service_plotfile,
                                            "baryon_density",
                                            level=level, box=box)
                    expected = direct.read_field("baryon_density",
                                                 level=level, box=box)
                    assert via_http.dtype == expected.dtype
                    assert np.array_equal(via_http, expected)
                    assert np.array_equal(via_tcp, expected)
        finally:
            tcp_server.stop()

    def test_time_slice_identical_to_direct(self, client, service_series):
        box = Box((0, 0, 0), (5, 5, 5))
        times, values = client.time_slice(service_series, "baryon_density",
                                          box=box, refill=False)
        with repro.open_series(service_series) as direct:
            t2, v2 = direct.time_slice("baryon_density", box=box, refill=False)
        assert np.array_equal(times, t2)
        assert np.array_equal(values, v2)

    def test_stats_op(self, client):
        stats = client.stats()
        assert "requests" in stats
        assert "registry" in stats


class TestAuth:
    @pytest.fixture(scope="class")
    def secured(self, service_plotfile):
        with HttpServer(port=0, auth_token="s3cret") as running:
            yield running

    def test_valid_token(self, secured):
        with HttpClient(port=secured.port, auth_token="s3cret") as c:
            assert c.ping() is True

    def test_missing_token_401(self, secured):
        status, body, _ = _raw(
            secured.port, "POST", "/v1/query", body=b'{"op":"ping"}',
            headers={"Content-Type": "application/json"})
        assert status == 401
        assert body["kind"] == ERROR_UNAUTHORIZED

    def test_wrong_token_401(self, secured):
        with HttpClient(port=secured.port, auth_token="wrong") as c:
            with pytest.raises(ServiceError) as err:
                c.ping()
        assert err.value.kind == ERROR_UNAUTHORIZED

    def test_metrics_requires_token(self, secured):
        status, body, _ = _raw(secured.port, "GET", "/metrics")
        assert status == 401
        assert body["kind"] == ERROR_UNAUTHORIZED
        with HttpClient(port=secured.port, auth_token="s3cret") as c:
            assert "repro_server_requests_total" in c.metrics()

    def test_healthz_stays_open(self, secured):
        status, body, _ = _raw(secured.port, "GET", "/healthz")
        assert status == 200
        assert body["ok"] is True


class TestLimits:
    def test_oversized_request_413(self, service_plotfile):
        with HttpServer(port=0, max_request_bytes=256) as server:
            payload = json.dumps({"op": "ping", "junk": "x" * 1000})
            status, body, _ = _raw(
                server.port, "POST", "/v1/query", body=payload,
                headers={"Content-Type": "application/json"})
            assert status == 413
            assert body["kind"] == ERROR_OVERSIZED_REQUEST

    def test_rate_limit_429_and_refill(self):
        clock = [0.0]
        handler = RequestHandler(rate_limit=1.0, rate_burst=2,
                                 rate_clock=lambda: clock[0])
        with HttpServer(port=0, handler=handler) as server, \
                HttpClient(port=server.port) as c:
            assert c.ping() is True
            assert c.ping() is True
            with pytest.raises(ServiceError) as err:
                c.ping()
            assert err.value.kind == ERROR_RATE_LIMITED
            status, body, _ = _raw(
                server.port, "POST", "/v1/query", body=b'{"op":"ping"}',
                headers={"Content-Type": "application/json"})
            assert status == 429
            clock[0] += 1.5  # one token refilled
            assert c.ping() is True
        handler.close()


class TestSubscribe:
    def test_stream_over_chunked_http(self, tmp_path, service_plotfile):
        """A live series streamed over HTTP: every step exactly once, in
        order, then finalized — same contract as the TCP subscribe verb."""
        from repro.apps.nyx import NyxSimulation
        from repro.series.writer import SeriesWriter

        directory = tmp_path / "live"
        sim = NyxSimulation(coarse_shape=(8, 8, 8), nranks=1, seed=5)
        snapshots = list(sim.run(4))
        writer = SeriesWriter(str(directory), append=True,
                              keyframe_interval=2, error_bound=1e-3)
        writer.append(snapshots[0])

        with HttpServer(port=0, watch_interval=0.05) as server:
            client = HttpClient(port=server.port)
            seen = []
            done = threading.Event()

            def consume():
                for event in client.subscribe(str(directory)):
                    seen.append(event)
                done.set()

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            for snapshot in snapshots[1:]:
                writer.append(snapshot)
            writer.close()
            assert done.wait(timeout=30), f"stream did not finish: {seen}"
            thread.join(timeout=10)
            client.close()
        assert seen[0]["event"] == "subscribed"
        steps = [e for e in seen if e["event"] == "step"]
        assert [e["step_index"] for e in steps] == [0, 1, 2, 3]
        assert seen[-1]["event"] == "finalized"
        assert seen[-1]["nsteps"] == 4

    def test_subscribe_bad_path_is_structured_error(self, http_server,
                                                    tmp_path):
        status, body, _ = _raw(
            http_server.port, "GET",
            f"/v1/subscribe?path={tmp_path}/nothing")
        assert status == 400
        assert body["ok"] is False

    def test_subscribe_missing_path_param(self, http_server):
        status, body, _ = _raw(http_server.port, "GET", "/v1/subscribe")
        assert status == 400
        assert "path" in body["error"]


class TestLifecycle:
    def test_stopped_server_cannot_be_restarted(self):
        server = HttpServer(port=0).start()
        server.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            server.start()

    def test_engine_and_handler_are_exclusive(self):
        from repro.service import QueryEngine

        engine = QueryEngine()
        handler = RequestHandler(engine)
        try:
            with pytest.raises(ValueError, match="not both"):
                HttpServer(engine=engine, handler=handler)
        finally:
            engine.close()

"""The in-process fakes: the production core with no sockets."""

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.service.client import ServiceError
from repro.service.core import (
    ERROR_OVERSIZED_REQUEST,
    ERROR_UNAUTHORIZED,
    RequestHandler,
)
from repro.service.fakes import FakeClient, FakeTransport


class TestFakeTransport:
    def test_round_trip_through_real_codec(self, service_plotfile):
        with FakeTransport() as transport:
            response = transport.round_trip(
                {"id": 1, "op": "read_field", "path": service_plotfile,
                 "field": "baryon_density", "level": 0,
                 "box": [[0, 0, 0], [7, 7, 7]]})
        assert response["ok"] is True
        arr = response["result"]
        assert isinstance(arr, np.ndarray)  # codec decoded, not aliased
        with repro.open(service_plotfile) as direct:
            assert np.array_equal(
                arr, direct.read_field("baryon_density",
                                       box=Box((0, 0, 0), (7, 7, 7))))

    def test_unserialisable_payload_fails_like_a_socket(self):
        with FakeTransport() as transport:
            with pytest.raises(TypeError):
                transport.round_trip({"id": 1, "op": "ping",
                                      "junk": object()})

    def test_size_limit_applies_to_encoded_form(self):
        with FakeTransport(max_request_bytes=64) as transport:
            response = transport.round_trip(
                {"id": 1, "op": "ping", "junk": "x" * 200})
        assert response["kind"] == ERROR_OVERSIZED_REQUEST

    def test_auth_passes_through_context(self):
        with FakeTransport(auth_token="s3cret") as transport:
            refused = transport.round_trip({"id": 1, "op": "ping"})
            admitted = transport.round_trip({"id": 2, "op": "ping"},
                                            auth="s3cret")
        assert refused["kind"] == ERROR_UNAUTHORIZED
        assert admitted["ok"] is True

    def test_shares_an_external_handler(self):
        with RequestHandler() as handler:
            transport = FakeTransport(handler=handler)
            assert transport.round_trip({"id": 1, "op": "ping"})["ok"]
            snapshot = handler.registry.snapshot()
            ops = {s["labels"]["op"]: s["value"] for s in
                   snapshot["repro_server_requests_total"]["samples"]}
            assert ops["ping"] == 1
            transport.close()  # must not close the borrowed handler
            assert transport.round_trip({"id": 2, "op": "ping"})["ok"]


class TestFakeClient:
    def test_full_client_surface(self, service_plotfile):
        with FakeClient() as client:
            assert client.ping() is True
            summary = client.describe(service_plotfile)
            assert "baryon_density" in summary["fields"]
            stats = client.stats()
            assert "requests" in stats

    def test_reads_identical_to_direct(self, service_plotfile):
        box = Box((2, 2, 2), (12, 12, 12))
        with FakeClient() as client, repro.open(service_plotfile) as direct:
            served = client.read_field(service_plotfile, "baryon_density",
                                       box=box)
            expected = direct.read_field("baryon_density", box=box)
            assert served.dtype == expected.dtype
            assert np.array_equal(served, expected)

    def test_errors_raise_service_error(self, tmp_path):
        with FakeClient() as client:
            with pytest.raises(ServiceError):
                client.describe(str(tmp_path / "missing"))

    def test_auth_policy(self):
        handler = RequestHandler(auth_token="s3cret")
        try:
            with FakeClient(transport=FakeTransport(handler=handler),
                            auth_token="s3cret") as good:
                assert good.ping() is True
            with FakeClient(transport=FakeTransport(handler=handler)) as bad:
                with pytest.raises(ServiceError) as err:
                    bad.ping()
            assert err.value.kind == ERROR_UNAUTHORIZED
        finally:
            handler.close()

    def test_subscribe_finalized_series(self, service_series):
        with FakeClient() as client:
            events = list(client.subscribe(service_series))
        assert events[0]["event"] == "subscribed"
        steps = [e for e in events if e["event"] == "step"]
        assert [e["step_index"] for e in steps] == list(range(6))
        assert events[-1]["event"] == "finalized"

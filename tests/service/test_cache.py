"""The byte-budgeted LRU ChunkCache: eviction, stats, concurrency, sharing."""

import threading

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.analysis.reporting import cache_stats_rows, format_table
from repro.service.cache import ChunkCache, HandleCacheView


def _chunk(n=16, value=0.0):
    return np.full(n, value, dtype=np.float64)     # 8 * n bytes


class TestLRUSemantics:
    def test_get_put_round_trip(self):
        cache = ChunkCache(max_bytes=1 << 20)
        key = ("/f.h5z", "level_0/rho", 0)
        assert cache.get(key) is None
        chunk = _chunk()
        cache.put(key, chunk)
        assert cache.get(key) is chunk
        assert cache.current_bytes == chunk.nbytes

    def test_eviction_is_least_recently_used(self):
        cache = ChunkCache(max_bytes=3 * 128)      # room for three 16-elem chunks
        keys = [("/f", "d", i) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, _chunk(value=i))
        cache.get(keys[0])                          # refresh 0: now 1 is LRU
        cache.put(("/f", "d", 3), _chunk(value=3))
        assert cache.get(keys[1]) is None           # evicted
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None
        assert cache.stats.evictions == 1
        assert cache.stats.evicted_bytes == 128

    def test_budget_is_never_exceeded(self):
        cache = ChunkCache(max_bytes=1000)
        for i in range(50):
            cache.put(("/f", "d", i), _chunk())
            assert cache.current_bytes <= 1000
        assert len(cache) < 50
        assert cache.stats.evictions == 50 - len(cache)

    def test_oversized_entry_is_rejected_not_cached(self):
        cache = ChunkCache(max_bytes=64)
        cache.put(("/f", "d", 0), _chunk(4))        # 32 bytes: fits
        cache.put(("/f", "d", 1), _chunk(1024))     # way over budget
        assert cache.stats.rejected == 1
        assert cache.get(("/f", "d", 1)) is None
        assert cache.get(("/f", "d", 0)) is not None   # untouched by the reject

    def test_reinsert_same_key_does_not_double_count(self):
        cache = ChunkCache(max_bytes=1 << 20)
        key = ("/f", "d", 0)
        cache.put(key, _chunk())
        cache.put(key, _chunk(value=1.0))
        assert cache.current_bytes == 128
        assert len(cache) == 1
        assert cache.get(key)[0] == 1.0

    def test_clear_drops_entries_keeps_stats(self):
        cache = ChunkCache(max_bytes=1 << 20)
        cache.put(("/f", "d", 0), _chunk())
        cache.get(("/f", "d", 0))
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.hits == 1 and cache.stats.insertions == 1

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ChunkCache(max_bytes=0)


class TestHandleCacheView:
    def test_view_prefixes_the_path(self):
        cache = ChunkCache(max_bytes=1 << 20)
        view_a = cache.bound_view("/a.h5z")
        view_b = cache.bound_view("/b.h5z")
        view_a[("d", 0)] = _chunk(value=1.0)
        assert view_b.get(("d", 0)) is None         # no cross-file collision
        assert view_a.get(("d", 0))[0] == 1.0
        assert cache.get(("/a.h5z", "d", 0)) is not None

    def test_view_is_always_truthy(self):
        # the staged reader skips falsy caches; an empty shared view must not be
        view = ChunkCache(max_bytes=1 << 20).bound_view("/a.h5z")
        assert isinstance(view, HandleCacheView)
        assert bool(view)


class TestConcurrentAccounting:
    def test_hit_miss_counters_are_exact_under_concurrent_readers(self):
        cache = ChunkCache(max_bytes=1 << 22)
        nthreads, per_thread = 8, 200
        keys = [("/f", "d", i) for i in range(16)]
        for key in keys:
            cache.put(key, _chunk())
        misses_key = ("/f", "other", 0)

        def hammer():
            for i in range(per_thread):
                assert cache.get(keys[i % len(keys)]) is not None
                assert cache.get(misses_key) is None

        threads = [threading.Thread(target=hammer) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats.hits == nthreads * per_thread
        assert cache.stats.misses == nthreads * per_thread
        assert cache.stats.requests == 2 * nthreads * per_thread

    def test_concurrent_insert_and_evict_keeps_budget(self):
        cache = ChunkCache(max_bytes=4096)

        def writer(tid):
            for i in range(200):
                cache.put((f"/f{tid}", "d", i), _chunk())
                assert cache.current_bytes <= 4096

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.current_bytes <= 4096
        assert cache.stats.insertions == 6 * 200


class TestSharedCacheThroughHandles:
    def test_shared_cache_reads_byte_identical_to_private(self, service_plotfile):
        cache = ChunkCache()
        box = Box((4, 4, 4), (19, 19, 19))
        with repro.open(service_plotfile) as plain, \
                repro.open(service_plotfile, cache=cache) as cached:
            for level in (0, 1):
                for name in plain.fields:
                    a = plain.read_field(name, level=level, box=box)
                    b = cached.read_field(name, level=level, box=box)
                    assert np.array_equal(a, b)
        assert cache.stats.insertions > 0

    def test_second_handle_hits_what_the_first_decoded(self, service_plotfile):
        cache = ChunkCache()
        box = Box((0, 0, 0), (15, 15, 15))
        with repro.open(service_plotfile, cache=cache) as first:
            first.read_field("baryon_density", level=0, box=box, refill=False)
            decoded_by_first = first.stats.chunks_decoded
        assert decoded_by_first > 0
        with repro.open(service_plotfile, cache=cache) as second:
            second.read_field("baryon_density", level=0, box=box, refill=False)
            assert second.stats.chunks_decoded == 0
            assert second.stats.cache_hits > 0

    def test_full_read_uses_the_shared_cache(self, service_plotfile):
        cache = ChunkCache()
        with repro.open(service_plotfile, cache=cache) as handle:
            warm = handle.read()                    # populates nothing itself...
        with repro.open(service_plotfile, cache=cache) as handle:
            handle.read_field("baryon_density", level=0, refill=False)
            before = handle.stats.chunks_decoded
            again = handle.read()                   # ...but reuses read_field's chunks
            assert handle.stats.cache_hits > 0
        for level in range(warm.nlevels):
            a = warm[level].multifab.to_global("baryon_density", warm[level].domain)
            b = again[level].multifab.to_global("baryon_density", again[level].domain)
            assert np.array_equal(a, b)
        assert before > 0

    def test_series_steps_share_one_cache(self, service_series):
        cache = ChunkCache()
        box = Box((0, 0, 0), (3, 3, 3))
        with repro.open_series(service_series, cache=cache) as series:
            series.time_slice("baryon_density", box=box, refill=False)
        first_run = cache.stats.as_dict()
        assert first_run["insertions"] > 0
        with repro.open_series(service_series, cache=cache) as series:
            series.time_slice("baryon_density", box=box, refill=False)
            # decoded values come straight from the shared cache; only the
            # fresh handle's chain resolution may add work
            assert cache.stats.hits > first_run["hits"]

    def test_tiny_budget_still_reads_correctly(self, service_series):
        # pathological budget: constant eviction, values must stay correct
        tiny = ChunkCache(max_bytes=4096)
        box = Box((0, 0, 0), (3, 3, 3))
        with repro.open_series(service_series) as plain, \
                repro.open_series(service_series, cache=tiny) as cached:
            t1, v1 = plain.time_slice("baryon_density", box=box, refill=False)
            t2, v2 = cached.time_slice("baryon_density", box=box, refill=False)
            # the resolved-code-stream cache is bounded to the same budget (a
            # long-lived server must not grow without limit)
            assert cached._codes.max_bytes == 4096
            # within budget, or down to a single (oversized) working entry —
            # the current chain's stream is retained to avoid O(n^2) re-walks
            assert cached._codes._bytes <= 4096 or len(cached._codes._entries) == 1
            assert plain._codes.max_bytes is None     # PR-4 default: unbounded
        assert np.array_equal(v1, v2)
        # full-step reads must also survive eviction between decode and place
        with repro.open_series(service_series, cache=tiny) as cached:
            hierarchy = cached.read(step=-1)
        assert hierarchy.nlevels >= 1


class TestCacheStatsRows:
    def test_rows_render_for_cache_and_stats(self):
        cache = ChunkCache(max_bytes=1 << 20)
        cache.put(("/f", "d", 0), _chunk())
        cache.get(("/f", "d", 0))
        rows = cache_stats_rows(cache)
        metrics = {row["metric"]: row["value"] for row in rows}
        assert metrics["hits"] == 1
        assert metrics["max_bytes"] == 1 << 20
        assert "hits" in format_table(rows)
        bare = cache_stats_rows(cache.stats)
        assert {r["metric"] for r in bare} >= {"hits", "misses", "evictions"}

    def test_rows_reject_unknown_sources(self):
        with pytest.raises(TypeError, match="cannot extract cache stats"):
            cache_stats_rows(42)

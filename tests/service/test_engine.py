"""The QueryEngine: pooling, batch coalescing, time-slice prefetch, stats."""

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.service import BoxQuery, ChunkCache, QueryEngine


class TestHandlePool:
    def test_handles_are_pooled_per_path(self, service_plotfile):
        with QueryEngine() as engine:
            assert engine.handle(service_plotfile) is engine.handle(service_plotfile)

    def test_series_are_pooled_per_directory(self, service_series):
        with QueryEngine() as engine:
            assert engine.series(service_series) is engine.series(service_series)

    def test_all_pooled_handles_share_the_engine_cache(self, service_plotfile,
                                                       service_series):
        with QueryEngine() as engine:
            handle = engine.handle(service_plotfile)
            series = engine.series(service_series)
            assert handle._cache.cache is engine.cache
            assert series.cache is engine.cache

    def test_describe_dispatches_plotfile_vs_series(self, service_plotfile,
                                                    service_series):
        with QueryEngine() as engine:
            assert engine.describe(service_plotfile)["self_describing"] is True
            assert engine.describe(service_series)["nsteps"] == 6

    def test_closed_engine_refuses_requests(self, service_plotfile):
        engine = QueryEngine()
        engine.close()
        with pytest.raises(ValueError, match="closed"):
            engine.handle(service_plotfile)

    def test_step_on_plain_plotfile_raises(self, service_plotfile):
        with QueryEngine() as engine:
            with pytest.raises(ValueError, match="single plotfile"):
                engine.read_field(service_plotfile, "baryon_density", step=2)

    def test_missing_path_raises_value_error(self, tmp_path):
        with QueryEngine() as engine:
            with pytest.raises(ValueError, match="no such file"):
                engine.describe(str(tmp_path / "nope.h5z"))


class TestBatchCoalescing:
    def test_batch_matches_per_request_reads(self, service_plotfile):
        queries = [BoxQuery(path=service_plotfile, field="baryon_density",
                            level=0, box=Box((i, 0, 0), (i + 7, 7, 7)))
                   for i in range(6)]
        queries.append(BoxQuery(path=service_plotfile, field="temperature",
                                level=1, box=Box((0, 0, 0), (15, 15, 15))))
        with QueryEngine() as engine:
            batch = engine.read_batch(queries)
        with repro.open(service_plotfile) as direct:
            for q, arr in zip(queries, batch):
                assert np.array_equal(
                    arr, direct.read_field(q.field, level=q.level, box=q.box))

    def test_overlapping_requests_decode_each_chunk_once(self, service_plotfile):
        # many boxes inside one unit block: all land on the same chunk set
        queries = [BoxQuery(path=service_plotfile, field="baryon_density",
                            level=0, box=Box((i, i, i), (i + 3, i + 3, i + 3)),
                            refill=False)
                   for i in range(10)]
        with QueryEngine() as engine:
            engine.read_batch(queries)
            batched = engine.stats()["chunks_decoded"]
        # per-request lower bound: a fresh handle per request decodes the
        # same chunk over and over
        per_request = 0
        for q in queries:
            with repro.open(service_plotfile) as handle:
                handle.read_field(q.field, level=q.level, box=q.box, refill=False)
                per_request += handle.stats.chunks_decoded
        assert batched < per_request
        # and the union itself was decoded exactly once per touched chunk:
        # a second identical batch decodes nothing new
        with QueryEngine() as engine:
            engine.read_batch(queries)
            first = engine.stats()["chunks_decoded"]
            engine.read_batch(queries)
            assert engine.stats()["chunks_decoded"] == first

    def test_batch_request_counters(self, service_plotfile):
        queries = [BoxQuery(path=service_plotfile, field="baryon_density",
                            box=Box((0, 0, 0), (7, 7, 7)))] * 3
        with QueryEngine() as engine:
            engine.read_batch(queries)
            engine.read_field(service_plotfile, "temperature")
            stats = engine.stats()
            assert stats["requests"] == 4
            assert stats["batches"] == 2

    def test_unknown_field_in_batch_returns_fill(self, service_plotfile):
        # a query for a stored field whose dataset misses this level yields
        # the fill value (read_field itself raises for unknown names)
        with QueryEngine() as engine:
            with pytest.raises(KeyError, match="unknown field"):
                engine.read_field(service_plotfile, "no_such_field")


class TestSeriesQueries:
    def test_series_step_reads_match_direct(self, service_series):
        box = Box((0, 0, 0), (7, 7, 7))
        with QueryEngine() as engine, repro.open_series(service_series) as direct:
            for step in range(6):
                served = engine.read_field(service_series, "baryon_density",
                                           box=box, step=step, refill=False)
                expected = direct.read_field("baryon_density", box=box,
                                             step=step, refill=False)
                assert np.array_equal(served, expected)

    def test_time_slice_matches_direct(self, service_series):
        box = Box((2, 2, 2), (5, 5, 5))
        with QueryEngine() as engine, repro.open_series(service_series) as direct:
            t_served, v_served = engine.time_slice(service_series,
                                                   "baryon_density", box=box,
                                                   refill=False)
            t_direct, v_direct = direct.time_slice("baryon_density", box=box,
                                                   refill=False)
        assert np.array_equal(t_served, t_direct)
        assert np.array_equal(v_served, v_direct)

    def test_time_slice_prefetch_decodes_each_stream_once(self, service_series):
        box = Box((0, 0, 0), (3, 3, 3))
        with QueryEngine() as engine:
            engine.time_slice(service_series, "baryon_density", box=box,
                              refill=False)
            first = engine.stats()["chunks_decoded"]
            # the chains are warm: a second slice decodes nothing new
            engine.time_slice(service_series, "baryon_density", box=box,
                              refill=False)
            assert engine.stats()["chunks_decoded"] == first
        # the prefetch never decodes more streams than a direct slice does
        with repro.open_series(service_series) as direct:
            direct.time_slice("baryon_density", box=box, refill=False)
            assert first <= direct.stats.chunks_decoded

    def test_time_slice_step_subset(self, service_series):
        box = Box((0, 0, 0), (3, 3, 3))
        with QueryEngine() as engine:
            times, values = engine.time_slice(service_series, "baryon_density",
                                              box=box, steps=[1, 3], refill=False)
        assert values.shape[0] == 2 and times.shape == (2,)


class TestConcurrentDecodes:
    def test_threads_decoding_one_pooled_handle_read_correctly(
            self, service_plotfile):
        # many threads pull *different* fields/chunks through one pooled
        # handle at once — chunk payload reads on the shared file must not
        # interleave (H5LiteFile serialises seek+read)
        import threading

        with repro.open(service_plotfile) as direct:
            expected = {name: direct.read_field(name, level=0, refill=False)
                        for name in direct.fields}
        failures = []
        with QueryEngine() as engine:
            def worker(name):
                try:
                    arr = engine.read_field(service_plotfile, name, level=0,
                                            refill=False)
                    if not np.array_equal(arr, expected[name]):
                        failures.append(name)
                except Exception as exc:  # noqa: BLE001
                    failures.append((name, repr(exc)))

            threads = [threading.Thread(target=worker, args=(name,))
                       for name in expected for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert failures == []


class TestEngineStats:
    def test_stats_snapshot_shape(self, service_plotfile):
        with QueryEngine(cache=ChunkCache(max_bytes=1 << 20)) as engine:
            engine.read_field(service_plotfile, "baryon_density",
                              box=Box((0, 0, 0), (7, 7, 7)), refill=False)
            stats = engine.stats()
        assert stats["plotfiles_open"] == 1
        assert stats["cache_max_bytes"] == 1 << 20
        assert stats["chunks_decoded"] > 0
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0

    def test_stats_rows_render(self, service_plotfile):
        from repro.analysis.reporting import format_table

        with QueryEngine() as engine:
            engine.describe(service_plotfile)
            rows = engine.stats_rows()
        assert {"metric", "value"} == set(rows[0])
        assert "plotfiles_open" in format_table(rows)

"""The observability layer end to end: traces, request logs, the stats op,
error-envelope counting, and the shared-source double-billing regression."""

import io
import json
import socket

import pytest

import repro
from repro.cli import main as cli_main
from repro.core.reader import PlotfileHandle
from repro.h5lite.source import make_source
from repro.obs import NULL_REGISTRY, render_prometheus
from repro.service import QueryEngine, ReproClient, ReproServer
from repro.service.wire import decode_line, encode_line


@pytest.fixture()
def observed_server(service_plotfile, service_series):
    """A server whose request log and registry the test can inspect."""
    log = io.StringIO()
    engine = QueryEngine()
    with ReproServer(engine, port=0, request_log=log) as running:
        yield running, engine, log


def _log_records(log: io.StringIO):
    return [json.loads(line) for line in log.getvalue().splitlines()]


class TestTracePropagation:
    def test_trace_travels_client_to_server_to_engine(self, observed_server,
                                                      service_plotfile):
        server, engine, log = observed_server
        with ReproClient(port=server.port) as client:
            client.read_field(service_plotfile, "baryon_density")
            sent = client.last_trace
        assert sent is not None
        assert engine.last_trace == sent
        traced = [r for r in _log_records(log) if r.get("trace") == sent]
        assert len(traced) == 1
        assert traced[0]["op"] == "read_field"

    def test_tracing_can_be_disabled(self, observed_server, service_plotfile):
        server, engine, _ = observed_server
        with ReproClient(port=server.port, trace=False) as client:
            client.describe(service_plotfile)
            assert client.last_trace is None


class TestRequestLog:
    def test_fields_per_request(self, observed_server, service_plotfile):
        server, _, log = observed_server
        with ReproClient(port=server.port) as client:
            client.read_field(service_plotfile, "baryon_density")
            client.read_field(service_plotfile, "baryon_density")
        records = [r for r in _log_records(log) if r["op"] == "read_field"]
        assert len(records) == 2
        for record in records:
            assert record["event"] == "request"
            assert record["ok"] is True
            assert record["latency_ms"] >= 0
            assert 0.0 <= record["cache_hit_rate"] <= 1.0
            assert "ts" in record and "trace" in record
        # the repeat read hits the shared cache, and the log shows it
        assert records[1]["cache_hit_rate"] > 0

    def test_failed_requests_are_logged_with_kind(self, observed_server):
        server, _, log = observed_server
        with ReproClient(port=server.port) as client:
            with pytest.raises(Exception):
                client.call("no_such_op")
        record = [r for r in _log_records(log) if r["op"] == "no_such_op"][0]
        assert record["ok"] is False
        assert record["error_kind"] == "unknown_op"


class TestServerMetrics:
    def test_per_op_latency_histograms(self, observed_server,
                                       service_plotfile):
        server, engine, _ = observed_server
        with ReproClient(port=server.port) as client:
            client.ping()
            client.read_field(service_plotfile, "baryon_density")
        snap = engine.registry.snapshot()
        hist = snap["repro_server_request_seconds"]
        ops = {tuple(s["labels"].items()): s for s in hist["samples"]}
        assert ops[(("op", "ping"),)]["count"] == 1
        assert ops[(("op", "read_field"),)]["count"] == 1
        counters = {tuple(s["labels"].items()): s["value"]
                    for s in snap["repro_server_requests_total"]["samples"]}
        assert counters[(("op", "ping"),)] == 1

    def test_protocol_skew_is_counted(self, observed_server):
        """unknown_op and unsupported_version each get an error label."""
        server, engine, _ = observed_server
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            rfile = sock.makefile("rb")
            sock.sendall(encode_line({"v": 1 + 10, "id": 1, "op": "ping"}))
            assert decode_line(rfile.readline())["kind"] == \
                "unsupported_version"
            sock.sendall(encode_line({"v": 2, "id": 2, "op": "bogus"}))
            assert decode_line(rfile.readline())["kind"] == "unknown_op"
        errors = {tuple(s["labels"].items()): s["value"]
                  for s in engine.registry.snapshot()
                  ["repro_server_errors_total"]["samples"]}
        assert errors[(("kind", "unsupported_version"),)] == 1
        assert errors[(("kind", "unknown_op"),)] == 1

    def test_subscribe_refusals_are_counted(self, observed_server, tmp_path):
        server, engine, log = observed_server
        with ReproClient(port=server.port) as client:
            with pytest.raises(Exception):
                list(client.subscribe(str(tmp_path / "not-a-series")))
        counters = {tuple(s["labels"].items()): s["value"]
                    for s in engine.registry.snapshot()
                    ["repro_server_requests_total"]["samples"]}
        assert counters[(("op", "subscribe"),)] == 1
        record = [r for r in _log_records(log) if r["op"] == "subscribe"][0]
        assert record["ok"] is False


class TestStatsOp:
    def test_registry_snapshot_rides_the_stats_op(self, observed_server,
                                                  service_plotfile,
                                                  service_series):
        server, _, _ = observed_server
        with ReproClient(port=server.port) as client:
            client.read_field(service_plotfile, "baryon_density")
            client.read_field(service_plotfile, "baryon_density")
            client.time_slice(service_series, "baryon_density", steps=[0, 1])
            stats = client.stats()
        # the flat engine keys stay (backwards compatible)...
        assert stats["requests"] >= 2
        assert stats["cache_hit_rate"] > 0
        # ...and the registry snapshot rides along
        registry = stats["registry"]
        assert registry["repro_cache_hits_total"]["samples"][0]["value"] > 0
        assert registry["repro_io_bytes_read_total"]["samples"][0]["value"] > 0
        assert "repro_io_coalesced" not in registry  # full names only
        spans = {tuple(s["labels"].items()): s["count"]
                 for s in registry["repro_span_seconds"]["samples"]}
        assert spans[(("span", "engine.read_batch"),)] >= 2
        assert spans[(("span", "engine.time_slice"),)] == 1
        # the snapshot is renderable client-side without a live registry
        text = render_prometheus(registry)
        assert "repro_server_request_seconds_bucket" in text

    def test_stats_cli_verb(self, observed_server, service_plotfile, capsys):
        server, _, _ = observed_server
        with ReproClient(port=server.port) as client:
            client.read_field(service_plotfile, "baryon_density")
        assert cli_main(["stats", f"127.0.0.1:{server.port}"]) == 0
        table = capsys.readouterr().out
        assert "metrics registry" in table
        assert "repro_cache_hits_total" in table
        assert cli_main(["stats", "--port", str(server.port), "--prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_server_request_seconds histogram" in prom
        assert cli_main(["stats", f":{server.port}", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "repro_engine_requests_total" in payload["registry"]


class TestEngineRegistry:
    def test_engines_have_private_registries(self, service_plotfile):
        with QueryEngine() as a, QueryEngine() as b:
            a.read_field(service_plotfile, "baryon_density")
            assert "repro_span_seconds" in a.metrics_snapshot(
                include_global=False)
            assert "repro_span_seconds" not in b.metrics_snapshot(
                include_global=False)

    def test_null_registry_opts_out(self, service_plotfile):
        with QueryEngine(registry=NULL_REGISTRY) as engine:
            engine.read_field(service_plotfile, "baryon_density")
            assert engine.metrics_snapshot(include_global=False) == {}
            # the flat stats stay available regardless
            assert engine.stats()["requests"] == 1


class TestSharedSourceAccounting:
    def test_two_handles_on_one_source_never_double_bill(self,
                                                         service_plotfile):
        """Regression: a handle joining an already-trafficked shared source
        must watermark from the source's pre-open totals, not zero —
        otherwise it absorbs (double-bills) the first handle's traffic."""
        source = make_source(service_plotfile)
        first = PlotfileHandle(service_plotfile, source=source)
        first.read_field("baryon_density")
        first_bytes = first.stats.bytes_read
        assert first_bytes > 0

        second = PlotfileHandle(service_plotfile, source=source)
        # the second handle has only opened (superblock loads): its bill must
        # be far below the first handle's full-field read, and the two bills
        # must partition the source's total exactly
        assert second.stats.bytes_read < first_bytes
        second.read_field("baryon_density", level=0)
        total = source.stats.bytes_read
        assert first.stats.bytes_read + second.stats.bytes_read == total
        assert first.stats.requests + second.stats.requests == \
            source.stats.requests
        first.close()
        second.close()

    def test_engine_io_rollup_matches_source_totals(self, service_plotfile):
        """The registry's io counters aggregate by unique source: no
        double-count across pooled handles."""
        with QueryEngine() as engine:
            engine.read_field(service_plotfile, "baryon_density")
            snap = engine.metrics_snapshot(include_global=False)
            reported = snap["repro_io_bytes_read_total"]["samples"][0]["value"]
            handle = engine.handle(service_plotfile)
            assert reported == float(handle.source_stats.bytes_read)

"""Tests for the H5Lite container, filters and chunking policies."""

import numpy as np
import pytest

from repro.compress import SZ1DCompressor, SZLRCompressor
from repro.h5lite import (
    AMRICChunkFilter,
    H5LiteFile,
    NoCompressionFilter,
    SZChunkFilter,
    amrex_chunk_elements,
    amric_chunk_elements,
    default_registry,
)
from repro.h5lite.filters import LosslessFilter


@pytest.fixture
def sample_data():
    rng = np.random.default_rng(0)
    return np.cumsum(rng.normal(size=5000)).reshape(50, 100)


class TestFileBasics:
    def test_write_read_roundtrip_no_filter(self, tmp_path, sample_data):
        path = tmp_path / "plain.h5z"
        with H5LiteFile(path, "w") as f:
            f.attrs["time"] = 1.25
            f.create_dataset("level_0/data", sample_data, chunk_elements=512)
        with H5LiteFile(path, "r") as f:
            assert f.attrs["time"] == 1.25
            back = f.read_dataset("level_0/data")
        np.testing.assert_array_equal(back, sample_data)

    def test_multiple_datasets_and_names(self, tmp_path, sample_data):
        path = tmp_path / "multi.h5z"
        with H5LiteFile(path, "w") as f:
            f.create_dataset("a", sample_data)
            f.create_dataset("grp/b", sample_data * 2, attrs={"field": "density"})
        with H5LiteFile(path, "r") as f:
            assert f.dataset_names() == ["a", "grp/b"]
            assert "a" in f and "missing" not in f
            assert f.datasets["grp/b"].attrs["field"] == "density"
            np.testing.assert_array_equal(f.read_dataset("grp/b"), sample_data * 2)

    def test_duplicate_dataset_rejected(self, tmp_path, sample_data):
        with H5LiteFile(tmp_path / "dup.h5z", "w") as f:
            f.create_dataset("x", sample_data)
            with pytest.raises(ValueError):
                f.create_dataset("x", sample_data)

    def test_read_missing_dataset(self, tmp_path, sample_data):
        path = tmp_path / "m.h5z"
        with H5LiteFile(path, "w") as f:
            f.create_dataset("x", sample_data)
        with H5LiteFile(path, "r") as f:
            with pytest.raises(KeyError):
                f.read_dataset("y")

    def test_write_to_readonly_rejected(self, tmp_path, sample_data):
        path = tmp_path / "ro.h5z"
        with H5LiteFile(path, "w") as f:
            f.create_dataset("x", sample_data)
        with H5LiteFile(path, "r") as f:
            with pytest.raises(ValueError):
                f.create_dataset("y", sample_data)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.h5z"
        path.write_bytes(b"not a file" * 10)
        with pytest.raises(ValueError):
            H5LiteFile(path, "r")

    def test_empty_dataset_rejected(self, tmp_path):
        with H5LiteFile(tmp_path / "e.h5z", "w") as f:
            with pytest.raises(ValueError):
                f.create_dataset("x", np.zeros(0))

    def test_chunk_count(self, tmp_path, sample_data):
        path = tmp_path / "chunks.h5z"
        with H5LiteFile(path, "w") as f:
            info = f.create_dataset("x", sample_data, chunk_elements=512)
        assert info.nchunks == int(np.ceil(sample_data.size / 512))

    def test_wrong_filter_on_read(self, tmp_path, sample_data):
        path = tmp_path / "wf.h5z"
        comp = SZ1DCompressor(1e-3)
        with H5LiteFile(path, "w") as f:
            f.create_dataset("x", sample_data, filter=SZChunkFilter(comp))
        with H5LiteFile(path, "r") as f:
            with pytest.raises(ValueError):
                f.read_dataset("x")  # default NoCompression filter mismatches


class TestFilters:
    def test_sz_classic_roundtrip(self, tmp_path, sample_data):
        path = tmp_path / "sz.h5z"
        eb_abs = 1e-3 * (sample_data.max() - sample_data.min())
        comp = SZ1DCompressor(eb_abs, mode="abs")
        with H5LiteFile(path, "w") as f:
            f.create_dataset("x", sample_data, chunk_elements=1024, filter=SZChunkFilter(comp))
        with H5LiteFile(path, "r") as f:
            back = f.read_dataset("x", filter=SZChunkFilter(comp))
        assert back.shape == sample_data.shape
        assert np.max(np.abs(back - sample_data)) <= eb_abs * (1 + 1e-9)

    def test_sz_classic_counts_calls(self, sample_data, tmp_path):
        comp = SZ1DCompressor(1e-3)
        filt = SZChunkFilter(comp)
        with H5LiteFile(tmp_path / "c.h5z", "w") as f:
            f.create_dataset("x", sample_data, chunk_elements=1024, filter=filt)
        assert filt.stats.calls == int(np.ceil(sample_data.size / 1024))
        assert filt.stats.output_bytes > 0

    def test_amric_filter_roundtrip_with_padding(self, tmp_path):
        """AMRIC filter compresses only the valid prefix and restores padding."""
        rng = np.random.default_rng(1)
        valid = np.cumsum(rng.normal(size=3000))
        chunk_elements = 4096
        data = np.zeros(chunk_elements)
        data[:3000] = valid
        comp = SZLRCompressor(1e-4)
        filt = AMRICChunkFilter(comp)
        path = tmp_path / "amric.h5z"
        with H5LiteFile(path, "w") as f:
            f.create_dataset("x", data, chunk_elements=chunk_elements,
                             filter=filt, actual_elements_per_chunk=[3000])
        assert filt.stats.padded_elements == chunk_elements - 3000
        with H5LiteFile(path, "r") as f:
            back = f.read_dataset("x", filter=AMRICChunkFilter(comp))
        abs_eb = 1e-4 * (valid.max() - valid.min())
        assert np.max(np.abs(back[:3000] - valid)) <= abs_eb * (1 + 1e-9)

    def test_amric_filter_smaller_than_classic_on_padded_chunk(self):
        """The point of the modification: padding is not compressed/stored.

        The tail of an oversized chunk is whatever happens to sit in the write
        buffer (stale values), which the classic filter compresses along with
        the data while the AMRIC filter skips it entirely.
        """
        rng = np.random.default_rng(2)
        chunk = rng.uniform(-500, 500, size=8192)  # stale buffer contents
        chunk[:1000] = np.cumsum(rng.normal(size=1000)) + 50.0
        comp = SZ1DCompressor(1e-4)
        classic = SZChunkFilter(comp).encode(chunk)
        amric = AMRICChunkFilter(comp).encode(chunk, actual_elements=1000)
        assert len(amric) < len(classic)
        # and the classic filter also had to touch 8x more elements
        assert SZChunkFilter(comp).stats.input_elements == 0  # fresh filter untouched

    def test_amric_filter_validates_actual(self):
        comp = SZ1DCompressor(1e-3)
        filt = AMRICChunkFilter(comp)
        with pytest.raises(ValueError):
            filt.encode(np.zeros(10), actual_elements=20)
        with pytest.raises(ValueError):
            filt.encode(np.zeros(10), actual_elements=0)

    def test_lossless_filter_roundtrip(self, tmp_path, sample_data):
        path = tmp_path / "z.h5z"
        with H5LiteFile(path, "w") as f:
            f.create_dataset("x", sample_data, chunk_elements=2048, filter=LosslessFilter())
        with H5LiteFile(path, "r") as f:
            back = f.read_dataset("x", filter=LosslessFilter())
        np.testing.assert_array_equal(back, sample_data)

    def test_nocompression_stats(self):
        filt = NoCompressionFilter()
        filt.encode(np.zeros(100))
        assert filt.stats.calls == 1
        assert filt.stats.output_bytes == 800

    def test_registry(self):
        reg = default_registry()
        assert set(reg.known()) >= {"none", "zlib", "sz_classic", "sz_amric"}
        filt = reg.create("sz_amric", compressor=SZ1DCompressor(1e-3))
        assert isinstance(filt, AMRICChunkFilter)
        with pytest.raises(KeyError):
            reg.create("bogus")
        with pytest.raises(ValueError):
            reg.register("none", NoCompressionFilter)


class TestChunking:
    def test_amrex_chunk_default(self):
        assert amrex_chunk_elements() == 1024
        assert amrex_chunk_elements(smallest_box_elements=500) == 500
        assert amrex_chunk_elements(smallest_box_elements=10**6) == 1024

    def test_amric_chunk_is_max_rank_size(self):
        assert amric_chunk_elements([100, 5000, 2300]) == 5000
        with pytest.raises(ValueError):
            amric_chunk_elements([0, 0])

    def test_file_size_reflects_compression(self, tmp_path, sample_data):
        comp = SZ1DCompressor(1e-3)
        p1, p2 = tmp_path / "raw.h5z", tmp_path / "comp.h5z"
        with H5LiteFile(p1, "w") as f:
            f.create_dataset("x", sample_data)
        with H5LiteFile(p2, "w") as f:
            f.create_dataset("x", sample_data, filter=SZChunkFilter(comp))
        assert p2.stat().st_size < p1.stat().st_size

"""The pluggable byte-source layer: contract, coalescing, cache, specs.

Satellite coverage of the PR-7 edge cases — zero-length ranges, ranges past
EOF, coalescing exactly at the gap threshold, block-cache eviction mid-batch,
``MmapSource`` views surviving handle close — plus the spec grammar of
:func:`make_source` and the superblock bounds checks of
:class:`~repro.h5lite.file.H5LiteFile` now that it reads through a source.
"""

import json
import os
import struct

import numpy as np
import pytest

from repro.h5lite.file import H5LiteFile
from repro.h5lite.source import (
    DEFAULT_BLOCK_BYTES,
    DEFAULT_GAP_BYTES,
    ByteSource,
    LocalFileSource,
    MemorySource,
    MmapSource,
    RangeSource,
    coalesce_ranges,
    make_source,
    parse_source_spec,
)

PAYLOAD = bytes(range(256)) * 40          # 10240 bytes, every offset distinct


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "payload.bin"
    path.write_bytes(PAYLOAD)
    return str(path)


def _factories(data_file):
    return {
        "local": lambda: LocalFileSource(data_file),
        "mmap": lambda: MmapSource(data_file),
        "memory": lambda: MemorySource.from_file(data_file),
        "range": lambda: RangeSource(LocalFileSource(data_file),
                                     block_bytes=64, cache_bytes=1024, gap=64),
    }


# ----------------------------------------------------------------------
# coalesce_ranges
# ----------------------------------------------------------------------
class TestCoalesceRanges:
    def test_gap_threshold_boundary(self):
        # end of first range is 10; a 5-byte gap merges at gap=5 ...
        groups = coalesce_ranges([(0, 10), (15, 5)], gap=5)
        assert [(g[0], g[1]) for g in groups] == [(0, 20)]
        # ... and splits at gap=4: the threshold is inclusive
        groups = coalesce_ranges([(0, 10), (15, 5)], gap=4)
        assert [(g[0], g[1]) for g in groups] == [(0, 10), (15, 20)]

    def test_adjacent_merge_at_gap_zero(self):
        groups = coalesce_ranges([(0, 10), (10, 10)], gap=0)
        assert [(g[0], g[1]) for g in groups] == [(0, 20)]

    def test_overlap_merges_regardless_of_gap(self):
        groups = coalesce_ranges([(0, 10), (5, 10)], gap=0)
        assert [(g[0], g[1]) for g in groups] == [(0, 15)]

    def test_unsorted_input_members_point_into_input(self):
        groups = coalesce_ranges([(100, 10), (0, 10), (105, 10)], gap=0)
        assert [(g[0], g[1]) for g in groups] == [(0, 10), (100, 115)]
        assert groups[0][2] == [1]
        assert sorted(groups[1][2]) == [0, 2]

    def test_zero_size_ranges_never_grouped(self):
        groups = coalesce_ranges([(0, 10), (5, 0), (10, 0)], gap=0)
        assert len(groups) == 1
        assert groups[0][2] == [0]

    def test_empty(self):
        assert coalesce_ranges([], gap=0) == []


# ----------------------------------------------------------------------
# the ByteSource contract, for every implementation
# ----------------------------------------------------------------------
class TestContract:
    @pytest.fixture(params=["local", "mmap", "memory", "range"])
    def source(self, request, data_file):
        src = _factories(data_file)[request.param]()
        yield src
        src.close()

    def test_size(self, source):
        assert source.size() == len(PAYLOAD)

    def test_read_at_exact(self, source):
        assert bytes(source.read_at(100, 50)) == PAYLOAD[100:150]
        assert bytes(source.read_at(0, 1)) == PAYLOAD[:1]
        assert bytes(source.read_at(len(PAYLOAD) - 7, 7)) == PAYLOAD[-7:]

    def test_zero_length_range(self, source):
        assert bytes(source.read_at(50, 0)) == b""
        # a zero-size range never touches the medium
        assert source.stats.bytes_read == 0
        assert source.stats.coalesced_requests == 0
        # ... even at EOF, where offset+0 is still in bounds
        assert bytes(source.read_at(len(PAYLOAD), 0)) == b""

    def test_range_past_eof_raises(self, source):
        with pytest.raises(ValueError, match="past EOF"):
            source.read_at(len(PAYLOAD) - 10, 11)
        with pytest.raises(ValueError, match="past EOF"):
            source.read_at(len(PAYLOAD) + 1, 0)
        with pytest.raises(ValueError, match="past EOF"):
            source.read_many([(0, 10), (len(PAYLOAD), 1)])

    def test_negative_range_raises(self, source):
        with pytest.raises(ValueError, match="invalid range"):
            source.read_at(-1, 10)
        with pytest.raises(ValueError, match="invalid range"):
            source.read_at(0, -10)

    def test_read_many_input_order(self, source):
        ranges = [(200, 16), (0, 8), (200, 16), (96, 0), (32, 64)]
        out = source.read_many(ranges)
        assert [bytes(b) for b in out] == \
            [PAYLOAD[o:o + s] for o, s in ranges]

    def test_requests_counted_pre_coalescing(self, source):
        source.read_many([(0, 8), (8, 8), (16, 8)])
        assert source.stats.requests == 3
        assert 1 <= source.stats.coalesced_requests <= 3

    def test_context_manager(self, data_file, source):
        with _factories(data_file)["memory"]() as src:
            assert src.size() == len(PAYLOAD)


# ----------------------------------------------------------------------
# per-implementation behaviour
# ----------------------------------------------------------------------
class TestLocalFileSource:
    def test_adjacent_batch_is_one_read(self, data_file):
        with LocalFileSource(data_file) as src:
            src.read_many([(0, 100), (100, 100), (200, 100)])
            assert src.stats.requests == 3
            assert src.stats.coalesced_requests == 1
            assert src.stats.bytes_read == 300

    def test_gapped_batch_stays_split(self, data_file):
        with LocalFileSource(data_file) as src:
            src.read_many([(0, 100), (101, 100)])
            assert src.stats.coalesced_requests == 2

    def test_truncated_after_open_raises(self, data_file):
        with LocalFileSource(data_file) as src:
            os.truncate(data_file, 100)
            with pytest.raises(ValueError, match="short read"):
                src.read_at(50, 100)


class TestMmapSource:
    def test_views_survive_close(self, data_file):
        src = MmapSource(data_file)
        view = src.read_at(500, 100)
        src.close()
        # the mapping lives as long as exported views do
        assert bytes(view) == PAYLOAD[500:600]

    def test_read_after_close_raises(self, data_file):
        src = MmapSource(data_file)
        src.close()
        with pytest.raises(ValueError, match="closed"):
            src.read_at(0, 10)

    def test_close_idempotent(self, data_file):
        src = MmapSource(data_file)
        view = src.read_at(0, 10)
        src.close()
        src.close()
        assert bytes(view) == PAYLOAD[:10]

    def test_zero_copy(self, data_file):
        with MmapSource(data_file) as src:
            assert isinstance(src.read_at(0, 10), memoryview)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            MmapSource(str(path))


class TestMemorySource:
    def test_from_file(self, data_file):
        with MemorySource.from_file(data_file) as src:
            assert bytes(src.read_at(10, 20)) == PAYLOAD[10:30]
            assert src.path == data_file

    def test_accepts_bytearray_and_memoryview(self):
        for raw in (bytearray(b"abcdef"), memoryview(b"abcdef")):
            src = MemorySource(raw)
            assert bytes(src.read_at(1, 3)) == b"bcd"


class TestRangeSource:
    def test_coalesces_across_gap_boundary(self, data_file):
        # block_bytes=64: ranges in blocks 0 and 2 leave a one-block (64-byte)
        # hole.  gap=64 refetches the hole in one ranged read ...
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         gap=64, cache_bytes=4096) as src:
            src.read_many([(0, 64), (128, 64)])
            assert src.stats.coalesced_requests == 1
            assert src.stats.bytes_read == 192
        # ... gap=63 does not: two round-trips, no hole fetched
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         gap=63, cache_bytes=4096) as src:
            src.read_many([(0, 64), (128, 64)])
            assert src.stats.coalesced_requests == 2
            assert src.stats.bytes_read == 128

    def test_eviction_mid_batch_still_assembles(self, data_file):
        # a one-block budget over a batch spanning many blocks: blocks are
        # evicted while the batch is still being fetched, but the batch pins
        # its own copies, so assembly stays correct
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         cache_bytes=64, gap=0) as src:
            ranges = [(i * 300, 200) for i in range(10)]
            out = src.read_many(ranges)
            assert [bytes(b) for b in out] == \
                [PAYLOAD[o:o + s] for o, s in ranges]
            assert src.stats.evictions > 0
            assert src.cached_bytes <= 64

    def test_block_cache_serves_repeats(self, data_file):
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         cache_bytes=4096) as src:
            src.read_at(0, 256)
            fetched = src.stats.bytes_read
            assert bytes(src.read_at(64, 128)) == PAYLOAD[64:192]
            assert src.stats.bytes_read == fetched     # all from cache
            assert src.stats.cache_hits == 2

    def test_sequential_readahead(self, data_file):
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         cache_bytes=4096, readahead=2) as src:
            src.read_at(0, 64)                  # blocks [0]
            src.read_at(64, 64)                 # sequential: fetches [1..3]
            assert src.stats.readahead_blocks == 2
            before = src.stats.bytes_read
            src.read_at(128, 128)               # blocks [2, 3] already cached
            assert src.stats.bytes_read == before

    def test_latency_and_bandwidth_accounting(self, data_file):
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         cache_bytes=4096, latency=0.25, bandwidth=6400.0,
                         gap=0, simulate=False) as src:
            src.read_many([(0, 64), (512, 64)])        # two round-trips
            assert src.stats.wait_seconds == pytest.approx(
                2 * 0.25 + 128 / 6400.0)

    def test_clear_cache(self, data_file):
        with RangeSource(LocalFileSource(data_file), block_bytes=64,
                         cache_bytes=4096) as src:
            src.read_at(0, 256)
            assert src.cached_bytes > 0
            src.clear_cache()
            assert src.cached_bytes == 0
            assert bytes(src.read_at(0, 256)) == PAYLOAD[:256]

    def test_bad_parameters_raise(self, data_file):
        base = MemorySource(PAYLOAD)
        with pytest.raises(ValueError, match="block_bytes"):
            RangeSource(base, block_bytes=0)
        with pytest.raises(ValueError, match="cache_bytes"):
            RangeSource(base, block_bytes=64, cache_bytes=32)
        with pytest.raises(ValueError, match="gap and readahead"):
            RangeSource(base, gap=-1)
        with pytest.raises(ValueError, match="latency"):
            RangeSource(base, latency=-1.0)
        with pytest.raises(ValueError, match="bandwidth"):
            RangeSource(base, bandwidth=0.0)


# ----------------------------------------------------------------------
# spec strings and make_source
# ----------------------------------------------------------------------
class TestSpecs:
    def test_parse_bases(self):
        assert parse_source_spec("mmap") == {"base": "mmap", "range": False}
        assert parse_source_spec("local") == {"base": "local", "range": False}
        assert parse_source_spec("memory") == {"base": "memory", "range": False}

    def test_parse_modifiers(self):
        opts = parse_source_spec("latency:50ms,bandwidth:100m,gap:128k,"
                                 "block:4k,cache:8m,readahead:2")
        assert opts["latency"] == pytest.approx(0.05)
        assert opts["bandwidth"] == pytest.approx(100 * 1024 ** 2)
        assert opts["gap"] == 128 * 1024
        assert opts["block_bytes"] == 4096
        assert opts["cache_bytes"] == 8 * 1024 ** 2
        assert opts["readahead"] == 2
        assert opts["range"] is True

    def test_parse_bare_range_and_base_combo(self):
        opts = parse_source_spec("mmap,range")
        assert opts == {"base": "mmap", "range": True}

    def test_duration_and_byte_units(self):
        assert parse_source_spec("latency:100us")["latency"] == \
            pytest.approx(1e-4)
        assert parse_source_spec("latency:0.5s")["latency"] == \
            pytest.approx(0.5)
        assert parse_source_spec("block:64kib")["block_bytes"] == 64 * 1024
        assert parse_source_spec("block:512")["block_bytes"] == 512

    @pytest.mark.parametrize("bad", ["http", "latency:fast", "block:big",
                                     "readahead:two"])
    def test_bad_tokens_raise(self, bad):
        with pytest.raises(ValueError):
            parse_source_spec(bad)

    def test_make_source_types(self, data_file):
        assert isinstance(make_source(data_file), LocalFileSource)
        assert isinstance(make_source(data_file, "mmap"), MmapSource)
        assert isinstance(make_source(data_file, "memory"), MemorySource)
        src = make_source(data_file, "latency:1ms,block:4k")
        assert isinstance(src, RangeSource)
        assert src.simulate is True            # latency wants to be felt
        quiet = make_source(data_file, "range,block:4k")
        assert isinstance(quiet, RangeSource)
        assert quiet.simulate is False

    def test_make_source_passthrough_and_factory(self, data_file):
        instance = MemorySource(PAYLOAD)
        assert make_source(data_file, instance) is instance
        built = make_source(data_file, lambda p: MemorySource.from_file(p))
        assert isinstance(built, MemorySource)
        with pytest.raises(TypeError, match="ByteSource"):
            make_source(data_file, lambda p: open(p, "rb"))


# ----------------------------------------------------------------------
# H5LiteFile on a source: superblock bounds, batched chunk reads
# ----------------------------------------------------------------------
def _write_sample(path):
    rng = np.random.default_rng(7)
    data = np.cumsum(rng.normal(size=4096)).reshape(64, 64)
    with H5LiteFile(path, "w") as f:
        f.create_dataset("x", data, chunk_elements=512)
    return data


def _mutate_superblock(path, mutate):
    data = path.read_bytes()
    (offset,) = struct.unpack_from("<Q", data, 4)
    superblock = json.loads(data[offset:].decode("utf-8"))
    mutate(superblock)
    path.write_bytes(data[:offset] + json.dumps(superblock).encode("utf-8"))


class TestH5LiteOnSources:
    def test_superblock_offset_past_eof(self, tmp_path):
        path = tmp_path / "bad.h5z"
        _write_sample(path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<Q", raw, 4, len(raw) + 1000)
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError,
                           match="corrupt or truncated superblock"):
            H5LiteFile(path, "r")

    def test_superblock_offset_into_preamble(self, tmp_path):
        path = tmp_path / "bad.h5z"
        _write_sample(path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<Q", raw, 4, 4)
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="preamble"):
            H5LiteFile(path, "r")

    def test_file_shorter_than_preamble(self, tmp_path):
        path = tmp_path / "tiny.h5z"
        path.write_bytes(b"H5LT\x00")
        with pytest.raises(ValueError, match="truncated"):
            H5LiteFile(path, "r")

    def test_chunk_past_eof_names_dataset(self, tmp_path):
        path = tmp_path / "bad.h5z"
        _write_sample(path)
        _mutate_superblock(
            path, lambda sb: sb["datasets"][0]["chunks"].__setitem__(
                0, [10 ** 9, 4096, 512]))
        with H5LiteFile(path, "r") as f:
            with pytest.raises(ValueError, match="truncated.*'x'"):
                f.read_dataset("x")

    def test_write_mode_rejects_source(self, tmp_path):
        with pytest.raises(ValueError, match="read mode"):
            H5LiteFile(tmp_path / "w.h5z", "w", source="mmap")

    @pytest.mark.parametrize("spec", [None, "mmap", "memory",
                                      "range,block:4k,gap:8k",
                                      "mmap,block:1k,cache:4k"])
    def test_round_trip_through_every_source(self, tmp_path, spec):
        path = tmp_path / "rt.h5z"
        data = _write_sample(path)
        with H5LiteFile(path, "r", source=spec) as f:
            np.testing.assert_array_equal(f.read_dataset("x"), data)

    def test_batched_chunk_reads_coalesce(self, tmp_path):
        path = tmp_path / "b.h5z"
        _write_sample(path)                       # 8 chunks, back to back
        with H5LiteFile(path, "r") as f:
            before = f.source.stats.coalesced_requests
            payloads = f.read_chunk_payloads("x", range(8))
            assert len(payloads) == 8
            # adjacent chunk payloads collapse into one ranged read
            assert f.source.stats.coalesced_requests == before + 1

    def test_read_chunk_payloads_validates(self, tmp_path):
        path = tmp_path / "v.h5z"
        _write_sample(path)
        with H5LiteFile(path, "r") as f:
            with pytest.raises(KeyError):
                f.read_chunk_payloads("nope", [0])
            with pytest.raises(IndexError):
                f.read_chunk_payloads("x", [99])

"""Append-mode series writing: crash recovery, compaction, finalize compat."""

import os

import numpy as np
import pytest

import repro
from repro.series.index import INDEX_FILENAME, SeriesIndex
from repro.series.writer import SeriesWriter, write_series
from repro.stream.journal import JOURNAL_FILENAME, read_journal

NSTEPS = 7                  # matches the conftest simulation run
KEYFRAME_INTERVAL = 3


def assert_series_equal(directory, reference_dir, field="baryon_density"):
    """Element-wise equality of every step against the reference series."""
    with repro.open_series(directory) as got, \
            repro.open_series(reference_dir) as want:
        assert len(got.steps()) == len(want.steps())
        for i in range(len(want.steps())):
            a = got.read_field(field, step=i)
            b = want.read_field(field, step=i)
            assert np.array_equal(a, b), f"step {i} differs"


class TestFinalizedCompatibility:
    def test_finalized_append_series_is_a_plain_series(self, hierarchies,
                                                       reference_dir, tmp_path):
        directory = str(tmp_path / "live")
        write_series(hierarchies, directory,
                     keyframe_interval=KEYFRAME_INTERVAL, error_bound=1e-3,
                     append=True)
        names = os.listdir(directory)
        assert INDEX_FILENAME in names
        assert JOURNAL_FILENAME not in names         # finalize dropped it
        # a pre-stream reader path: the manifest alone describes the series
        index = SeriesIndex.load(directory)
        assert index.nsteps == NSTEPS
        assert_series_equal(directory, reference_dir)

    def test_every_committed_value_matches_non_append(self, hierarchies,
                                                      reference_dir, tmp_path):
        """Same snapshots, same bounds => identical decoded values."""
        directory = str(tmp_path / "live")
        with SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                          error_bound=1e-3, append=True,
                          compact_interval=2) as writer:
            for h in hierarchies:
                writer.append(h)
        assert_series_equal(directory, reference_dir)


class TestLiveDirectory:
    def test_mid_run_directory_opens_live(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True,
                              compact_interval=100)    # journal-only commits
        try:
            for h in hierarchies[:3]:
                writer.append(h)
            assert not os.path.exists(os.path.join(directory, INDEX_FILENAME))
            handle = repro.open_series(directory)
            assert handle.live is True
            assert handle.high_water == 2
            arr = handle.read_field("baryon_density", step=2)
            assert arr.size > 0
        finally:
            writer.abort()

    def test_compaction_preserves_readability(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        with SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                          error_bound=1e-3, append=True,
                          compact_interval=2) as writer:
            for i, h in enumerate(hierarchies[:4]):
                writer.append(h)
                if i == 3:
                    # 4 commits, compact_interval=2: manifest holds a prefix,
                    # journal the rest; a live open merges both
                    index = SeriesIndex.load(directory)
                    assert index.nsteps >= 2
                    view = read_journal(
                        os.path.join(directory, JOURNAL_FILENAME))
                    assert view.base == index.nsteps
                    handle = repro.open_series(directory)
                    assert len(handle.steps()) == 4


class TestCrashRecovery:
    def write_partial(self, hierarchies, directory, upto):
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True,
                              compact_interval=100)
        for h in hierarchies[:upto]:
            writer.append(h)
        writer.abort()      # leaves the journal exactly as a crash would

    def test_resume_completes_the_series(self, hierarchies, reference_dir,
                                         tmp_path):
        directory = str(tmp_path / "live")
        self.write_partial(hierarchies, directory, 4)
        with SeriesWriter(directory, append=True) as writer:
            assert writer.nsteps == 4
            # recovery adopts the manifest's knobs, not the defaults
            assert writer.keyframe_interval == KEYFRAME_INTERVAL
            assert writer.config.error_bound == 1e-3
            for h in hierarchies[4:]:
                writer.append(h)
        assert_series_equal(directory, reference_dir)

    def test_torn_journal_tail_recovers_to_last_complete_step(
            self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        self.write_partial(hierarchies, directory, 4)
        path = os.path.join(directory, JOURNAL_FILENAME)
        # tear the last commit record mid-write
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 7)
        with SeriesWriter(directory, append=True) as writer:
            assert writer.nsteps == 3
            writer.append(hierarchies[3])
            assert writer.nsteps == 4
        with repro.open_series(directory) as handle:
            assert len(handle.steps()) == 4

    def test_orphan_step_file_is_overwritten_on_resume(self, hierarchies,
                                                       tmp_path):
        """A crash between the plt fsync and the journal record leaves an
        orphan file; the resumed commit of that step must reclaim it."""
        directory = str(tmp_path / "live")
        self.write_partial(hierarchies, directory, 3)
        orphan = os.path.join(directory,
                              f"plt{hierarchies[3].step:05d}.h5z")
        with open(orphan, "wb") as f:
            f.write(b"half a plotfile")
        with SeriesWriter(directory, append=True) as writer:
            writer.append(hierarchies[3])
        with repro.open_series(directory) as handle:
            arr = handle.read_field("baryon_density", step=3)
            assert np.isfinite(arr).all()

    def test_resumed_step_is_a_keyframe(self, hierarchies, tmp_path):
        """The rolling delta reference dies with the process: the first step
        after a restart must be self-contained."""
        directory = str(tmp_path / "live")
        self.write_partial(hierarchies, directory, 2)
        with SeriesWriter(directory, append=True) as writer:
            writer.append(hierarchies[2])        # index 2: normally a delta
        with repro.open_series(directory) as handle:
            assert handle.index.steps[2].kind == "key"

    def test_reopening_a_finalized_series_appends_more_steps(
            self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        write_series(hierarchies[:4], directory,
                     keyframe_interval=KEYFRAME_INTERVAL, error_bound=1e-3,
                     append=True)
        assert not os.path.exists(os.path.join(directory, JOURNAL_FILENAME))
        with SeriesWriter(directory, append=True) as writer:
            assert writer.nsteps == 4
            for h in hierarchies[4:]:
                writer.append(h)
        with repro.open_series(directory) as handle:
            assert len(handle.steps()) == NSTEPS

    def test_exception_mid_run_leaves_a_resumable_directory(
            self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        with pytest.raises(RuntimeError, match="sim blew up"):
            with SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True) as writer:
                writer.append(hierarchies[0])
                writer.append(hierarchies[1])
                raise RuntimeError("sim blew up")
        assert os.path.exists(os.path.join(directory, JOURNAL_FILENAME))
        with repro.open_series(directory) as handle:
            assert handle.live is True and len(handle.steps()) == 2


class TestGuards:
    def test_non_append_refuses_existing_manifest(self, hierarchies, tmp_path):
        directory = str(tmp_path / "done")
        write_series(hierarchies[:2], directory, error_bound=1e-3)
        with pytest.raises(ValueError, match="append=True"):
            SeriesWriter(directory)

    def test_non_append_refuses_a_live_journal(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, error_bound=1e-3, append=True)
        writer.append(hierarchies[0])
        writer.abort()
        with pytest.raises(ValueError, match="append=True"):
            SeriesWriter(directory)

    def test_compact_interval_requires_append(self, tmp_path):
        with pytest.raises(ValueError, match="append=True"):
            SeriesWriter(str(tmp_path / "x"), compact_interval=4)

    def test_append_after_finalize_raises(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, error_bound=1e-3, append=True)
        writer.append(hierarchies[0])
        writer.finalize()
        with pytest.raises(ValueError, match="finalized"):
            writer.append(hierarchies[1])
        writer.close()


class TestAtomicManifestSave:
    def test_save_leaves_no_temp_files(self, hierarchies, tmp_path):
        directory = str(tmp_path / "plain")
        write_series(hierarchies[:3], directory, error_bound=1e-3)
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []
        assert SeriesIndex.load(directory).nsteps == 3

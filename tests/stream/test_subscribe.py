"""The subscribe verb end to end: live events, versioning, reconnect resume."""

import json
import socket
import socketserver
import threading
import time

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.series.writer import SeriesWriter, write_series
from repro.service import QueryEngine, ReproClient, ReproServer
from repro.service.client import ServiceError, follow_series
from repro.service.core import (
    ERROR_UNKNOWN_OP,
    ERROR_UNSUPPORTED_VERSION,
    PROTOCOL_VERSION,
)

KEYFRAME_INTERVAL = 3
BOX = Box((0, 0, 0), (7, 7, 7))


def make_server(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("watch_interval", 0.05)
    return ReproServer(**kwargs)


class Producer(threading.Thread):
    """Appends the snapshots on a schedule, then finalizes (or aborts)."""

    def __init__(self, directory, hierarchies, delay=0.15, finalize=True,
                 **writer_kwargs):
        super().__init__(daemon=True)
        writer_kwargs.setdefault("keyframe_interval", KEYFRAME_INTERVAL)
        writer_kwargs.setdefault("error_bound", 1e-3)
        self.writer = SeriesWriter(directory, append=True, **writer_kwargs)
        self.hierarchies = hierarchies
        self.delay = delay
        self.finalize = finalize
        self.error = None

    def run(self):
        try:
            for h in self.hierarchies:
                self.writer.append(h)
                time.sleep(self.delay)
            if self.finalize:
                self.writer.close()
            else:
                self.writer.abort()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            self.error = exc


class TestProtocolVersion:
    def test_responses_carry_the_protocol_version(self, tmp_path):
        with make_server() as server, ReproClient(port=server.port) as client:
            result = client.call("ping")
            assert result["protocol_version"] == PROTOCOL_VERSION

    def test_version_free_requests_still_work(self, tmp_path):
        """A v1 client omits "v" entirely; the server must not care."""
        with make_server() as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=30) as sock:
                sock.sendall(b'{"id": 1, "op": "ping"}\n')
                line = sock.makefile("rb").readline()
        response = json.loads(line)
        assert response["ok"] is True
        assert response["v"] == PROTOCOL_VERSION

    def test_newer_version_is_refused_with_a_kind(self):
        with make_server() as server, ReproClient(port=server.port) as client:
            with pytest.raises(ServiceError) as err:
                client.call("ping", v=PROTOCOL_VERSION + 7)
            assert err.value.kind == ERROR_UNSUPPORTED_VERSION
            assert "upgrade the server" in str(err.value)

    def test_unknown_op_names_the_supported_ops(self):
        with make_server() as server, ReproClient(port=server.port) as client:
            with pytest.raises(ServiceError) as err:
                client.call("transmogrify")
            assert err.value.kind == ERROR_UNKNOWN_OP
            assert "subscribe" in str(err.value)     # the op list is in the message

    def test_subscribe_against_a_pre_streaming_server(self):
        """An old server answers subscribe with its unknown-op error; the
        client must turn that into a clear upgrade message, not a hang."""

        class OldServer(socketserver.StreamRequestHandler):
            def handle(self):
                line = self.rfile.readline()
                request = json.loads(line)
                self.wfile.write((json.dumps(
                    {"id": request["id"], "ok": False,
                     "error": f"unknown op {request['op']!r}"}) + "\n")
                    .encode())

        with socketserver.ThreadingTCPServer(("127.0.0.1", 0), OldServer) as srv:
            threading.Thread(target=srv.serve_forever, daemon=True).start()
            try:
                client = ReproClient(port=srv.server_address[1])
                with pytest.raises(ServiceError, match="pre-streaming"):
                    for _ in client.subscribe("/nowhere"):
                        pass
                client.close()
            finally:
                srv.shutdown()


class TestSubscribeStream:
    def test_subscribe_refuses_a_non_series_path(self, tmp_path):
        with make_server() as server, ReproClient(port=server.port) as client:
            with pytest.raises(ServiceError, match="series"):
                for _ in client.subscribe(str(tmp_path)):
                    pass
            # the connection survives the refusal
            assert client.ping() is True

    def test_finalized_series_catch_up_then_finalized(self, hierarchies,
                                                      tmp_path):
        directory = str(tmp_path / "done")
        write_series(hierarchies[:3], directory,
                     keyframe_interval=KEYFRAME_INTERVAL, error_bound=1e-3)
        with make_server() as server, ReproClient(port=server.port) as client:
            events = list(client.subscribe(directory))
            kinds = [e["event"] for e in events]
            assert kinds == ["subscribed", "step", "step", "step", "finalized"]
            assert [e["step_index"] for e in events[1:4]] == [0, 1, 2]
            assert events[1]["summary"]["kind"] == "key"
            # the same connection answers ordinary requests afterwards
            assert client.ping() is True

    def test_live_run_exactly_once_with_reads(self, hierarchies, tmp_path):
        """Producer -> server -> follow_series: every step exactly once, and
        each mid-run read equals the post-finalize read."""
        directory = str(tmp_path / "live")
        producer = Producer(directory, hierarchies, delay=0.15)
        producer.start()
        # wait for the first commit so subscribe finds a series directory
        deadline = time.time() + 30
        while producer.writer.nsteps == 0 and time.time() < deadline:
            time.sleep(0.01)
        seen, arrays = [], {}
        with make_server() as server:
            for event, arr in follow_series(directory, "baryon_density",
                                            port=server.port, box=BOX,
                                            reconnect=False):
                if event["event"] == "step":
                    seen.append(event["step_index"])
                    arrays[event["step_index"]] = arr
        producer.join(timeout=60)
        assert producer.error is None
        assert seen == list(range(len(hierarchies)))     # exactly once, ordered
        with repro.open_series(directory) as final:
            assert final.live is False
            for i, arr in arrays.items():
                want = final.read_field("baryon_density", step=i, box=BOX)
                assert np.array_equal(arr, want), f"step {i} differs"

    def test_from_step_skips_the_prefix(self, hierarchies, tmp_path):
        directory = str(tmp_path / "done")
        write_series(hierarchies[:4], directory,
                     keyframe_interval=KEYFRAME_INTERVAL, error_bound=1e-3)
        with make_server() as server, ReproClient(port=server.port) as client:
            events = [e for e in client.subscribe(directory, from_step=2)
                      if e["event"] == "step"]
            assert [e["step_index"] for e in events] == [2, 3]

    def test_reconnect_resumes_from_the_next_unseen_step(self, hierarchies,
                                                         tmp_path):
        """Kill the server mid-stream; follow_series reconnects to its
        successor on the same port and never repeats or drops a step."""
        directory = str(tmp_path / "live")
        producer = Producer(directory, hierarchies, delay=0.25)
        producer.start()
        deadline = time.time() + 30
        while producer.writer.nsteps == 0 and time.time() < deadline:
            time.sleep(0.01)

        first = make_server().start()
        port = first.port
        servers = [first]
        stopped = threading.Event()

        def chaos():
            # let a few events flow, then yank the server and start another
            time.sleep(0.6)
            first.stop()
            replacement = None
            for _ in range(50):
                try:
                    replacement = ReproServer(
                        port=port, watch_interval=0.05).start()
                    break
                except OSError:
                    time.sleep(0.1)      # the old port lingers briefly
            assert replacement is not None, "could not rebind the port"
            servers.append(replacement)
            stopped.set()

        chaos_thread = threading.Thread(target=chaos, daemon=True)
        chaos_thread.start()
        seen = []
        try:
            for event, arr in follow_series(directory, port=port,
                                            max_retries=40, retry_delay=0.25):
                if event["event"] == "step":
                    seen.append(event["step_index"])
        finally:
            producer.join(timeout=60)
            chaos_thread.join(timeout=60)
            for s in servers:
                try:
                    s.stop()
                except Exception:  # noqa: BLE001 - already stopped
                    pass
        assert producer.error is None
        assert stopped.is_set(), "the server restart never happened"
        assert seen == list(range(len(hierarchies)))

    def test_two_subscribers_share_one_watcher(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        producer = Producer(directory, hierarchies[:4], delay=0.15)
        producer.start()
        deadline = time.time() + 30
        while producer.writer.nsteps == 0 and time.time() < deadline:
            time.sleep(0.01)
        results = {}
        with make_server() as server:
            def subscriber(tag):
                steps = [e["step_index"]
                         for e, _ in follow_series(directory, port=server.port,
                                                   reconnect=False)
                         if e["event"] == "step"]
                results[tag] = steps

            threads = [threading.Thread(target=subscriber, args=(t,))
                       for t in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        producer.join(timeout=60)
        assert producer.error is None
        assert results[0] == results[1] == list(range(4))


class TestRefreshOp:
    def test_refresh_op_reports_live_state(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True)
        writer.append(hierarchies[0])
        try:
            with make_server() as server, \
                    ReproClient(port=server.port) as client:
                state = client.refresh(directory)
                assert state["live"] is True and state["nsteps"] == 1
                writer.append(hierarchies[1])
                state = client.refresh(directory)
                assert state["appended"] == 1
                assert state["nsteps"] == 2 and state["high_water"] == 1
        finally:
            writer.abort()

"""The commit journal alone: framing, torn tails, replay, generations."""

import os
import struct

import pytest

from repro.series.index import SeriesIndex
from repro.stream.journal import (
    GENESIS_OFFSET,
    JOURNAL_FILENAME,
    SeriesJournal,
    _frame_record,
    load_live_index,
    read_journal,
    replay_journal,
    tail_journal,
)

#: a minimal but fully valid series manifest JSON (no steps)
CONFIG = {
    "format": "amric-series", "version": 1, "codec": "temporal_delta",
    "error_bound": 1e-3, "error_bound_mode": "value_range",
    "keyframe_interval": 4, "unit_block_size": 4096,
    "remove_redundancy": True,
    "components": ["rho"],
    "field_grids": {"rho": {"eb_abs": 1e-3, "offset": 0.0}},
    "steps": [],
}

_RECORD_HEADER_SIZE = struct.calcsize("<4sQI")


def step_json(i):
    """A valid SeriesStepRecord JSON for journal index ``i``."""
    return {
        "index": i, "step": i, "time": float(i),
        "path": f"plt{i:05d}.h5z",
        "kind": "key" if i % 4 == 0 else "delta",
        "fingerprint": f"fp{i}",
        "datasets": [{
            "name": "rho", "mode": "key" if i % 4 == 0 else "delta",
            "ref": None if i % 4 == 0 else i - 1,
            "stored_bytes": 100 + i, "raw_bytes": 1000,
            "key_bytes": 200, "delta_bytes": None if i % 4 == 0 else 100 + i,
            "psnr": 60.0, "layout": "sfc",
        }],
    }


@pytest.fixture()
def journal_dir(tmp_path):
    d = str(tmp_path / "run")
    os.makedirs(d)
    return d


class TestFraming:
    def test_round_trip(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            for i in range(5):
                j.append_step(step_json(i))
        view = read_journal(os.path.join(journal_dir, JOURNAL_FILENAME))
        assert view.base == 0 and not view.truncated
        assert [s["step"] for s in view.steps] == list(range(5))
        assert view.config["keyframe_interval"] == 4
        assert "steps" not in view.config       # genesis strips the step list

    def test_create_refuses_existing(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
        with pytest.raises(ValueError, match="already exists"):
            SeriesJournal(journal_dir).create(CONFIG)

    def test_unknown_record_kinds_are_skipped(self, journal_dir):
        """Additive evolution: a v1 reader steps over records it cannot name."""
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            j.append_step(step_json(0))
            j._fh.write(_frame_record({"record": "from_the_future", "x": 42}))
            j._fh.flush()
            j.append_step(step_json(1))
        view = read_journal(os.path.join(journal_dir, JOURNAL_FILENAME))
        assert [s["step"] for s in view.steps] == [0, 1]
        assert not view.truncated


class TestTornTail:
    def make_journal(self, journal_dir, nsteps=4):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            offsets = []
            for i in range(nsteps):
                j.append_step(step_json(i))
                offsets.append(j.end_offset)
        return os.path.join(journal_dir, JOURNAL_FILENAME), offsets

    def test_truncated_mid_record_drops_only_the_tail(self, journal_dir):
        path, offsets = self.make_journal(journal_dir)
        # cut the last record in half: a crash mid-write
        with open(path, "r+b") as f:
            f.truncate(offsets[-2] + (offsets[-1] - offsets[-2]) // 2)
        view = read_journal(path)
        assert view.truncated
        assert [s["step"] for s in view.steps] == [0, 1, 2]
        assert view.end_offset == offsets[-2]

    def test_corrupt_crc_stops_replay_at_the_bad_record(self, journal_dir):
        path, offsets = self.make_journal(journal_dir)
        # flip a payload byte of the third step record (past its header)
        with open(path, "r+b") as f:
            f.seek(offsets[1] + _RECORD_HEADER_SIZE + 10)
            byte = f.read(1)
            f.seek(offsets[1] + _RECORD_HEADER_SIZE + 10)
            f.write(bytes([byte[0] ^ 0xFF]))
        view = read_journal(path)
        assert view.truncated
        assert [s["step"] for s in view.steps] == [0, 1]

    def test_open_existing_truncates_the_torn_tail(self, journal_dir):
        path, offsets = self.make_journal(journal_dir)
        with open(path, "r+b") as f:
            f.truncate(offsets[-1] - 3)
        journal, view = SeriesJournal.open_existing(journal_dir)
        journal.close()
        assert [s["step"] for s in view.steps] == [0, 1, 2]
        assert os.path.getsize(path) == offsets[-2]
        # the repaired journal appends cleanly
        journal, _ = SeriesJournal.open_existing(journal_dir)
        journal.append_step(step_json(3))
        journal.close()
        assert [s["step"] for s in read_journal(path).steps] == [0, 1, 2, 3]

    def test_headless_file_is_an_error_not_a_tail(self, journal_dir):
        path, _ = self.make_journal(journal_dir)
        with open(path, "r+b") as f:
            f.truncate(GENESIS_OFFSET)
        with pytest.raises(ValueError, match="genesis"):
            read_journal(path)      # no genesis record => never a valid generation


class TestTailFastPath:
    def test_tail_sees_only_new_records(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            j.append_step(step_json(0))
            offset, crc = j.end_offset, j.genesis_crc
            tail = tail_journal(j.path, offset, crc)
            assert tail.status == "ok" and tail.steps == []
            assert tail.end_offset == offset
            j.append_step(step_json(1))
            j.append_step(step_json(2))
            tail = tail_journal(j.path, offset, crc)
            assert tail.status == "ok"
            assert [s["step"] for s in tail.steps] == [1, 2]
            assert tail.end_offset == j.end_offset

    def test_rewrite_flips_the_generation(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            j.append_step(step_json(0))
            offset, crc = j.end_offset, j.genesis_crc
            j.rewrite(CONFIG, base=1)
            assert j.base == 1
            tail = tail_journal(j.path, offset, crc)
            assert tail.status == "rebuilt"

    def test_removed_journal_reports_gone(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            offset, crc = j.end_offset, j.genesis_crc
            path = j.path
            j.remove()
        assert tail_journal(path, offset, crc).status == "gone"


class TestReplay:
    def test_load_live_index_merges_journal_only_directories(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            for i in range(3):
                j.append_step(step_json(i))
        index, view = load_live_index(journal_dir)
        assert view is not None
        assert index.nsteps == 3
        assert index.keyframe_interval == 4
        assert [s.kind for s in index.steps] == ["key", "delta", "delta"]

    def test_replay_is_idempotent(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            for i in range(3):
                j.append_step(step_json(i))
            path = j.path
        index, view = load_live_index(journal_dir)
        appended = replay_journal(index, view, path=path)
        assert appended == 0 and index.nsteps == 3

    def test_replay_refuses_a_gap(self, journal_dir):
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            j.append_step(step_json(2))      # claims index 2 with 0 known steps
        view = read_journal(os.path.join(journal_dir, JOURNAL_FILENAME))
        index = SeriesIndex.from_json(CONFIG)
        with pytest.raises(ValueError, match="damaged"):
            replay_journal(index, view,
                           path=os.path.join(journal_dir, JOURNAL_FILENAME))

    def test_replay_preserves_existing_step_objects(self, journal_dir):
        """The cache-preservation invariant: replay only ever appends."""
        with SeriesJournal(journal_dir) as j:
            j.create(CONFIG)
            for i in range(2):
                j.append_step(step_json(i))
        index, view = load_live_index(journal_dir)
        before = list(index.steps)
        with SeriesJournal.open_existing(journal_dir)[0] as j:
            j.append_step(step_json(2))
        tail = tail_journal(os.path.join(journal_dir, JOURNAL_FILENAME),
                            view.end_offset, view.genesis_crc)
        assert tail.status == "ok"
        appended = replay_journal(index, tail, path=journal_dir)
        assert appended == 1 and index.nsteps == 3
        for a, b in zip(before, index.steps):
            assert a is b

"""Shared fixtures of the live-streaming tests: one small simulation run."""

import pytest

from repro.apps.nyx import NyxSimulation

NSTEPS = 7
KEYFRAME_INTERVAL = 3


def make_sim():
    return NyxSimulation(coarse_shape=(16, 16, 16), nranks=2,
                         target_fine_density=0.05, max_grid_size=8, seed=7,
                         drift_rate=0.05, growth_rate=0.02, regrid_interval=3)


@pytest.fixture(scope="session")
def hierarchies():
    return list(make_sim().run(NSTEPS))


@pytest.fixture(scope="session")
def reference_dir(hierarchies, tmp_path_factory):
    """The same snapshots written the plain (non-append) way."""
    from repro.series.writer import write_series

    path = str(tmp_path_factory.mktemp("stream") / "reference")
    write_series(hierarchies, path, keyframe_interval=KEYFRAME_INTERVAL,
                 error_bound=1e-3)
    return path

"""Live readers: refresh semantics, cache preservation, concurrent access."""

import threading

import numpy as np

import repro
from repro.series.writer import SeriesWriter

KEYFRAME_INTERVAL = 3


class TestRefresh:
    def test_refresh_picks_up_new_commits(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True)
        try:
            writer.append(hierarchies[0])
            handle = repro.open_series(directory)
            assert handle.live and len(handle.steps()) == 1
            writer.append(hierarchies[1])
            writer.append(hierarchies[2])
            assert handle.refresh() == 2
            assert handle.high_water == 2
            assert handle.refresh() == 0        # nothing new: a cheap no-op
        finally:
            writer.abort()

    def test_refresh_survives_compaction(self, hierarchies, tmp_path):
        """A generation switch (journal rewrite) must not lose or repeat steps."""
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True,
                              compact_interval=2)
        try:
            writer.append(hierarchies[0])
            handle = repro.open_series(directory)
            seen = len(handle.steps())
            for h in hierarchies[1:5]:          # crosses 2 compactions
                writer.append(h)
                seen += handle.refresh()
            assert seen == 5
            assert [s.index for s in handle.index.steps] == list(range(5))
        finally:
            writer.abort()

    def test_refresh_keeps_decoded_state_warm(self, hierarchies, tmp_path):
        """Committed steps are immutable: refresh must not invalidate them."""
        from repro.service.cache import ChunkCache

        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True)
        try:
            writer.append(hierarchies[0])
            cache = ChunkCache(max_bytes=1 << 28)
            handle = repro.open_series(directory, cache=cache)
            before_objects = list(handle.index.steps)
            arr0 = handle.read_field("baryon_density", step=0)
            decoded = cache.stats.misses
            writer.append(hierarchies[1])
            assert handle.refresh() == 1
            # the step-record objects survived the refresh identically
            for a, b in zip(before_objects, handle.index.steps):
                assert a is b
            # re-reading step 0 hits the warm cache: no new decodes
            again = handle.read_field("baryon_density", step=0)
            assert np.array_equal(arr0, again)
            assert cache.stats.misses == decoded
        finally:
            writer.abort()

    def test_refresh_detects_finalize(self, hierarchies, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True)
        writer.append(hierarchies[0])
        handle = repro.open_series(directory)
        assert handle.live
        writer.append(hierarchies[1])
        writer.close()                           # finalizes: journal removed
        assert handle.refresh() == 1
        assert handle.live is False
        assert handle.refresh() == 0             # settled: free no-ops forever
        assert handle.describe()["live"] is False

    def test_catch_up_read_equals_post_finalize_read(self, hierarchies,
                                                     reference_dir, tmp_path):
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True)
        handle = None
        mid_run = {}
        try:
            for i, h in enumerate(hierarchies):
                writer.append(h)
                if handle is None:
                    handle = repro.open_series(directory)
                else:
                    handle.refresh()
                mid_run[i] = handle.read_field("baryon_density", step=i)
        finally:
            writer.close()
        with repro.open_series(reference_dir) as reference:
            for i, arr in mid_run.items():
                want = reference.read_field("baryon_density", step=i)
                assert np.array_equal(arr, want), f"step {i} differs"


class TestConcurrentRefresh:
    def test_reader_threads_follow_a_writing_thread(self, hierarchies,
                                                    tmp_path):
        """Readers hammering refresh()+reads while the writer commits."""
        directory = str(tmp_path / "live")
        writer = SeriesWriter(directory, keyframe_interval=KEYFRAME_INTERVAL,
                              error_bound=1e-3, append=True,
                              compact_interval=2)
        writer.append(hierarchies[0])
        handle = repro.open_series(directory)
        stop = threading.Event()
        failures = []

        def reader(tid):
            try:
                while not stop.is_set():
                    handle.refresh()
                    n = len(handle.steps())
                    if n == 0:
                        continue
                    step = (tid + n) % n
                    arr = handle.read_field("baryon_density", step=step)
                    if not np.isfinite(arr).all():
                        failures.append((tid, step, "non-finite"))
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append((tid, repr(exc)))

        threads = [threading.Thread(target=reader, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        try:
            for h in hierarchies[1:]:
                writer.append(h)
            writer.close()                       # finalize under the readers
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert failures == []
        handle.refresh()
        assert len(handle.steps()) == len(hierarchies)
        assert handle.live is False

"""The public facade (repro.open / repro.write) and the python -m repro CLI."""

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.core import AMRICConfig
from repro.core.pipeline import WriteReport


@pytest.fixture(scope="module")
def hierarchy():
    from repro.apps import nyx_run

    return nyx_run(coarse_shape=(32, 32, 32), nranks=4, target_fine_density=0.03,
                   seed=101).hierarchy


class TestWriteFacade:
    def test_default_method_is_amric(self, hierarchy, tmp_path):
        report = repro.write(hierarchy, str(tmp_path / "a.h5z"), error_bound=1e-3)
        assert isinstance(report, WriteReport)
        assert report.method.startswith("amric")
        assert report.compression_ratio > 2

    def test_in_memory_write(self, hierarchy):
        report = repro.write(hierarchy, None, error_bound=1e-2)
        assert report.path is None

    def test_method_dispatch(self, hierarchy, tmp_path):
        amrex = repro.write(hierarchy, str(tmp_path / "x.h5z"),
                            method="amrex", error_bound=1e-2)
        assert amrex.method == "amrex_1d"
        raw = repro.write(hierarchy, str(tmp_path / "r.h5z"), method="raw")
        assert raw.method == "nocomp"
        assert raw.compression_ratio == pytest.approx(1.0)

    def test_unknown_method_raises(self, hierarchy):
        with pytest.raises(ValueError, match="unknown write method"):
            repro.write(hierarchy, None, method="gzip")

    def test_baseline_methods_reject_amric_config(self, hierarchy):
        with pytest.raises(ValueError, match="neither an AMRIC config"):
            repro.write(hierarchy, None, method="nocomp",
                        config=AMRICConfig())

    def test_explicit_writer_object_wins(self, hierarchy, tmp_path):
        from repro.baselines import NoCompressionWriter

        report = repro.write(hierarchy, str(tmp_path / "w.h5z"),
                             writer=NoCompressionWriter())
        assert report.method == "nocomp"

    def test_writer_with_conflicting_config_raises(self, hierarchy):
        from repro.baselines import NoCompressionWriter

        with pytest.raises(ValueError, match="silently ignored"):
            repro.write(hierarchy, None, writer=NoCompressionWriter(),
                        error_bound=1e-4)
        with pytest.raises(ValueError, match="silently ignored"):
            repro.write(hierarchy, None, writer=NoCompressionWriter(),
                        config=AMRICConfig())

    def test_write_then_open_round_trip(self, hierarchy, tmp_path):
        path = str(tmp_path / "rt.h5z")
        repro.write(hierarchy, path, error_bound=1e-3)
        with repro.open(path) as handle:
            back = handle.read()
        for name in hierarchy.component_names:
            vrange = hierarchy[1].multifab.value_range(name)
            orig = hierarchy[1].multifab.to_global(name, hierarchy[1].domain)
            rec = back[1].multifab.to_global(name, back[1].domain)
            mask = hierarchy[1].boxarray.coverage_mask(hierarchy[1].domain)
            assert np.max(np.abs(orig[mask] - rec[mask])) <= \
                1e-3 * max(vrange, 1e-30) * (1 + 1e-6)


class TestOpenErrorPaths:
    def test_open_missing_file_raises_clear_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="no such file"):
            repro.open(str(tmp_path / "nope.h5z"))

    def test_open_directory_points_at_open_series(self, tmp_path):
        with pytest.raises(ValueError, match="open_series"):
            repro.open(str(tmp_path))

    def test_open_corrupt_file_raises_clear_value_error(self, hierarchy, tmp_path):
        path = tmp_path / "c.h5z"
        repro.write(hierarchy, str(path), error_bound=1e-2)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            repro.open(str(path))

    def test_open_non_plotfile_raises_clear_value_error(self, tmp_path):
        path = tmp_path / "junk.h5z"
        path.write_bytes(b"not a container at all, but long enough to read")
        with pytest.raises(ValueError, match="not an H5Lite file"):
            repro.open(str(path))


class TestReadStatsAccounting:
    def test_lazy_reads_count_decodes_and_hits(self, hierarchy, tmp_path):
        from repro.amr.box import Box

        path = str(tmp_path / "stats.h5z")
        repro.write(hierarchy, path, error_bound=1e-2)
        with repro.open(path) as handle:
            box = Box((0, 0, 0), (7, 7, 7))
            handle.read_field("baryon_density", level=0, box=box, refill=False)
            decoded = handle.stats.chunks_decoded
            assert decoded > 0 and handle.stats.cache_hits == 0
            handle.read_field("baryon_density", level=0, box=box, refill=False)
            assert handle.stats.chunks_decoded == decoded    # second read: cache
            assert handle.stats.cache_hits > 0
            handle.stats.reset()
            assert handle.stats.chunks_decoded == 0

    def test_shared_cache_and_disabled_cache_reads_byte_identical(
            self, hierarchy, tmp_path):
        from repro.amr.box import Box

        path = str(tmp_path / "shared.h5z")
        repro.write(hierarchy, path, error_bound=1e-2)
        cache = repro.ChunkCache()
        box = Box((2, 2, 2), (13, 13, 13))
        with repro.open(path) as plain, repro.open(path, cache=cache) as shared:
            for name in plain.fields:
                a = plain.read_field(name, level=0, box=box)
                b = shared.read_field(name, level=0, box=box)
                assert a.tobytes() == b.tobytes()
        assert cache.stats.insertions > 0


class TestDriverOnFacade:
    def test_driver_method_dispatch_writes_self_describing(self, tmp_path):
        from repro.apps import SimulationDriver, nyx_run

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2,
                      target_fine_density=0.05, seed=5)
        driver = SimulationDriver(sim, output_dir=str(tmp_path),
                                  method="amric", error_bound=1e-2)
        records = driver.run(1)
        assert len(records) == 1
        with repro.open(records[0].path) as handle:
            assert handle.is_self_describing
            assert handle.read().nlevels >= 1

    def test_driver_without_io_config_writes_nothing(self):
        from repro.apps import SimulationDriver, nyx_run

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2,
                      target_fine_density=0.05, seed=5)
        assert SimulationDriver(sim).run(1) == []

    def test_driver_rejects_writer_plus_config_at_construction(self):
        from repro.apps import SimulationDriver, nyx_run
        from repro.baselines import NoCompressionWriter

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2,
                      target_fine_density=0.05, seed=5)
        with pytest.raises(ValueError, match="already carries"):
            SimulationDriver(sim, writer=NoCompressionWriter(),
                             error_bound=1e-4)


class TestReportingOnFacade:
    def test_summarize_and_dataset_rows(self, hierarchy, tmp_path):
        from repro.analysis.reporting import plotfile_dataset_rows, summarize_plotfile

        path = str(tmp_path / "s.h5z")
        repro.write(hierarchy, path, error_bound=1e-3)
        summary = summarize_plotfile(path)
        assert summary["self_describing"] is True
        assert summary["codec"] == "sz_lr"
        assert summary["compression_ratio"] > 1
        rows = plotfile_dataset_rows(path)
        assert len(rows) == summary["datasets"]
        assert all(row["filter"] == "amric_3d" for row in rows)


class TestCLI:
    def _compress(self, path, extra=()):
        return cli_main(["compress", "--preset", "nyx_1", str(path), *extra])

    @pytest.fixture(scope="class")
    def plotfile(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "plt.h5z"
        assert cli_main(["compress", "--preset", "nyx_1", str(path)]) == 0
        return path

    def test_info(self, plotfile, capsys):
        assert cli_main(["info", str(plotfile)]) == 0
        out = capsys.readouterr().out
        assert "self_describing    True" in out
        assert "level_0/baryon_density" in out

    def test_info_json(self, plotfile, capsys):
        import json

        assert cli_main(["info", str(plotfile), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format_version"] == 1
        assert summary["method"] == "amric"

    def test_verify_pass(self, plotfile, capsys):
        assert cli_main(["verify", str(plotfile)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_decompress_then_verify_against(self, plotfile, tmp_path, capsys):
        raw = tmp_path / "raw.h5z"
        assert cli_main(["decompress", str(plotfile), str(raw)]) == 0
        assert cli_main(["verify", str(plotfile), "--against", str(raw)]) == 0
        out = capsys.readouterr().out
        assert "error_bound=ok" in out

    def test_recompress_input(self, plotfile, tmp_path, capsys):
        out_path = tmp_path / "re.h5z"
        assert cli_main(["compress", "--input", str(plotfile), str(out_path),
                         "--codec", "sz_interp", "--error-bound", "1e-2"]) == 0
        with repro.open(str(out_path)) as handle:
            assert handle.codec == "sz_interp"
            assert handle.error_bound == pytest.approx(1e-2)

    def test_compress_forwards_error_bound_to_amrex(self, tmp_path, capsys):
        out_path = tmp_path / "ax.h5z"
        assert cli_main(["compress", "--preset", "nyx_1", str(out_path),
                         "--method", "amrex_1d", "--error-bound", "5e-2"]) == 0
        with repro.open(str(out_path)) as handle:
            assert handle.header.method == "amrex_1d"
            assert handle.error_bound == pytest.approx(5e-2)

    def test_compress_rejects_codec_for_non_amric(self, tmp_path, capsys):
        assert cli_main(["compress", "--preset", "nyx_1",
                         str(tmp_path / "x.h5z"), "--method", "nocomp",
                         "--codec", "sz_interp"]) == 1
        assert "--codec only applies" in capsys.readouterr().err

    def test_compress_rejects_inapplicable_flags(self, tmp_path, capsys):
        assert cli_main(["compress", "--preset", "nyx_1",
                         str(tmp_path / "x.h5z"), "--method", "nocomp",
                         "--error-bound", "1e-6"]) == 1
        assert "--error-bound does not apply" in capsys.readouterr().err
        assert cli_main(["compress", "--preset", "nyx_1",
                         str(tmp_path / "y.h5z"), "--method", "amrex_1d",
                         "--backend", "thread"]) == 1
        assert "--backend only applies" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["info", str(tmp_path / "nope.h5z")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_fails_cleanly(self, plotfile, tmp_path, capsys):
        bad = tmp_path / "bad.h5z"
        bad.write_bytes(plotfile.read_bytes()[: plotfile.stat().st_size // 2])
        assert cli_main(["verify", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_backend_default_honours_env(self, plotfile, monkeypatch):
        from repro.cli import build_parser

        monkeypatch.setenv("REPRO_BACKEND", "thread")
        args = build_parser().parse_args(["verify", str(plotfile)])
        assert args.backend == "thread"

    def test_typoed_repro_backend_fails_up_front(self, plotfile, monkeypatch,
                                                 capsys):
        monkeypatch.setenv("REPRO_BACKEND", "proces")
        assert cli_main(["verify", str(plotfile)]) == 1
        assert "REPRO_BACKEND must be" in capsys.readouterr().err


class TestLazyServiceImport:
    def test_import_repro_does_not_load_the_service_stack(self):
        import os
        import subprocess
        import sys

        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        code = ("import sys, repro; "
                "loaded = [m for m in sys.modules if m.startswith('repro.service')"
                " or m == 'asyncio']; "
                "assert not loaded, loaded; "
                "repro.ChunkCache(1); "
                "assert 'repro.service.cache' in sys.modules; "
                "assert 'repro.service.server' not in sys.modules; "
                "print('lazy ok')")
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(repo_root, "src")})
        assert result.returncode == 0, result.stderr
        assert "lazy ok" in result.stdout

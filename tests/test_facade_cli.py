"""The public facade (repro.open / repro.write) and the python -m repro CLI."""

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.core import AMRICConfig
from repro.core.pipeline import WriteReport


@pytest.fixture(scope="module")
def hierarchy():
    from repro.apps import nyx_run

    return nyx_run(coarse_shape=(32, 32, 32), nranks=4, target_fine_density=0.03,
                   seed=101).hierarchy


class TestWriteFacade:
    def test_default_method_is_amric(self, hierarchy, tmp_path):
        report = repro.write(hierarchy, str(tmp_path / "a.h5z"), error_bound=1e-3)
        assert isinstance(report, WriteReport)
        assert report.method.startswith("amric")
        assert report.compression_ratio > 2

    def test_in_memory_write(self, hierarchy):
        report = repro.write(hierarchy, None, error_bound=1e-2)
        assert report.path is None

    def test_method_dispatch(self, hierarchy, tmp_path):
        amrex = repro.write(hierarchy, str(tmp_path / "x.h5z"),
                            method="amrex", error_bound=1e-2)
        assert amrex.method == "amrex_1d"
        raw = repro.write(hierarchy, str(tmp_path / "r.h5z"), method="raw")
        assert raw.method == "nocomp"
        assert raw.compression_ratio == pytest.approx(1.0)

    def test_unknown_method_raises(self, hierarchy):
        with pytest.raises(ValueError, match="unknown write method"):
            repro.write(hierarchy, None, method="gzip")

    def test_baseline_methods_reject_amric_config(self, hierarchy):
        with pytest.raises(ValueError, match="neither an AMRIC config"):
            repro.write(hierarchy, None, method="nocomp",
                        config=AMRICConfig())

    def test_explicit_writer_object_wins(self, hierarchy, tmp_path):
        from repro.baselines import NoCompressionWriter

        report = repro.write(hierarchy, str(tmp_path / "w.h5z"),
                             writer=NoCompressionWriter())
        assert report.method == "nocomp"

    def test_writer_with_conflicting_config_raises(self, hierarchy):
        from repro.baselines import NoCompressionWriter

        with pytest.raises(ValueError, match="silently ignored"):
            repro.write(hierarchy, None, writer=NoCompressionWriter(),
                        error_bound=1e-4)
        with pytest.raises(ValueError, match="silently ignored"):
            repro.write(hierarchy, None, writer=NoCompressionWriter(),
                        config=AMRICConfig())

    def test_write_then_open_round_trip(self, hierarchy, tmp_path):
        path = str(tmp_path / "rt.h5z")
        repro.write(hierarchy, path, error_bound=1e-3)
        with repro.open(path) as handle:
            back = handle.read()
        for name in hierarchy.component_names:
            vrange = hierarchy[1].multifab.value_range(name)
            orig = hierarchy[1].multifab.to_global(name, hierarchy[1].domain)
            rec = back[1].multifab.to_global(name, back[1].domain)
            mask = hierarchy[1].boxarray.coverage_mask(hierarchy[1].domain)
            assert np.max(np.abs(orig[mask] - rec[mask])) <= \
                1e-3 * max(vrange, 1e-30) * (1 + 1e-6)


class TestDriverOnFacade:
    def test_driver_method_dispatch_writes_self_describing(self, tmp_path):
        from repro.apps import SimulationDriver, nyx_run

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2,
                      target_fine_density=0.05, seed=5)
        driver = SimulationDriver(sim, output_dir=str(tmp_path),
                                  method="amric", error_bound=1e-2)
        records = driver.run(1)
        assert len(records) == 1
        with repro.open(records[0].path) as handle:
            assert handle.is_self_describing
            assert handle.read().nlevels >= 1

    def test_driver_without_io_config_writes_nothing(self):
        from repro.apps import SimulationDriver, nyx_run

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2,
                      target_fine_density=0.05, seed=5)
        assert SimulationDriver(sim).run(1) == []

    def test_driver_rejects_writer_plus_config_at_construction(self):
        from repro.apps import SimulationDriver, nyx_run
        from repro.baselines import NoCompressionWriter

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2,
                      target_fine_density=0.05, seed=5)
        with pytest.raises(ValueError, match="already carries"):
            SimulationDriver(sim, writer=NoCompressionWriter(),
                             error_bound=1e-4)


class TestReportingOnFacade:
    def test_summarize_and_dataset_rows(self, hierarchy, tmp_path):
        from repro.analysis.reporting import plotfile_dataset_rows, summarize_plotfile

        path = str(tmp_path / "s.h5z")
        repro.write(hierarchy, path, error_bound=1e-3)
        summary = summarize_plotfile(path)
        assert summary["self_describing"] is True
        assert summary["codec"] == "sz_lr"
        assert summary["compression_ratio"] > 1
        rows = plotfile_dataset_rows(path)
        assert len(rows) == summary["datasets"]
        assert all(row["filter"] == "amric_3d" for row in rows)


class TestCLI:
    def _compress(self, path, extra=()):
        return cli_main(["compress", "--preset", "nyx_1", str(path), *extra])

    @pytest.fixture(scope="class")
    def plotfile(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "plt.h5z"
        assert cli_main(["compress", "--preset", "nyx_1", str(path)]) == 0
        return path

    def test_info(self, plotfile, capsys):
        assert cli_main(["info", str(plotfile)]) == 0
        out = capsys.readouterr().out
        assert "self_describing    True" in out
        assert "level_0/baryon_density" in out

    def test_info_json(self, plotfile, capsys):
        import json

        assert cli_main(["info", str(plotfile), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format_version"] == 1
        assert summary["method"] == "amric"

    def test_verify_pass(self, plotfile, capsys):
        assert cli_main(["verify", str(plotfile)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_decompress_then_verify_against(self, plotfile, tmp_path, capsys):
        raw = tmp_path / "raw.h5z"
        assert cli_main(["decompress", str(plotfile), str(raw)]) == 0
        assert cli_main(["verify", str(plotfile), "--against", str(raw)]) == 0
        out = capsys.readouterr().out
        assert "error_bound=ok" in out

    def test_recompress_input(self, plotfile, tmp_path, capsys):
        out_path = tmp_path / "re.h5z"
        assert cli_main(["compress", "--input", str(plotfile), str(out_path),
                         "--codec", "sz_interp", "--error-bound", "1e-2"]) == 0
        with repro.open(str(out_path)) as handle:
            assert handle.codec == "sz_interp"
            assert handle.error_bound == pytest.approx(1e-2)

    def test_compress_forwards_error_bound_to_amrex(self, tmp_path, capsys):
        out_path = tmp_path / "ax.h5z"
        assert cli_main(["compress", "--preset", "nyx_1", str(out_path),
                         "--method", "amrex_1d", "--error-bound", "5e-2"]) == 0
        with repro.open(str(out_path)) as handle:
            assert handle.header.method == "amrex_1d"
            assert handle.error_bound == pytest.approx(5e-2)

    def test_compress_rejects_codec_for_non_amric(self, tmp_path, capsys):
        assert cli_main(["compress", "--preset", "nyx_1",
                         str(tmp_path / "x.h5z"), "--method", "nocomp",
                         "--codec", "sz_interp"]) == 1
        assert "--codec only applies" in capsys.readouterr().err

    def test_compress_rejects_inapplicable_flags(self, tmp_path, capsys):
        assert cli_main(["compress", "--preset", "nyx_1",
                         str(tmp_path / "x.h5z"), "--method", "nocomp",
                         "--error-bound", "1e-6"]) == 1
        assert "--error-bound does not apply" in capsys.readouterr().err
        assert cli_main(["compress", "--preset", "nyx_1",
                         str(tmp_path / "y.h5z"), "--method", "amrex_1d",
                         "--backend", "thread"]) == 1
        assert "--backend only applies" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["info", str(tmp_path / "nope.h5z")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_fails_cleanly(self, plotfile, tmp_path, capsys):
        bad = tmp_path / "bad.h5z"
        bad.write_bytes(plotfile.read_bytes()[: plotfile.stat().st_size // 2])
        assert cli_main(["verify", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

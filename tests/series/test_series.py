"""The series subsystem end to end: writer, manifest, reader, delta chains."""

import os

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.amr.upsample import covered_mask
from repro.apps.base import build_two_level_hierarchy
from repro.apps.nyx import NyxSimulation
from repro.series import INDEX_FILENAME, SeriesIndex, SeriesWriter, open_series
from repro.series.writer import write_series

NSTEPS = 10                    # the acceptance criterion's series length
KEYFRAME_INTERVAL = 3


def make_sim():
    return NyxSimulation(coarse_shape=(24, 24, 24), nranks=2,
                         target_fine_density=0.03, max_grid_size=12, seed=42,
                         drift_rate=0.05, growth_rate=0.02, regrid_interval=3)


@pytest.fixture(scope="module")
def hierarchies():
    return list(make_sim().run(NSTEPS))


@pytest.fixture(scope="module")
def series_dir(hierarchies, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("series") / "run")
    write_series(hierarchies, path, keyframe_interval=KEYFRAME_INTERVAL,
                 error_bound=1e-3)
    return path


@pytest.fixture(scope="module")
def keyonly_dir(hierarchies, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("series") / "keyonly")
    write_series(hierarchies, path, keyframe_interval=1, error_bound=1e-3)
    return path


class TestSeriesWriter:
    def test_directory_layout(self, series_dir, hierarchies):
        names = sorted(os.listdir(series_dir))
        assert INDEX_FILENAME in names
        for h in hierarchies:
            assert f"plt{h.step:05d}.h5z" in names

    def test_manifest_round_trips(self, series_dir):
        index = SeriesIndex.load(series_dir)
        assert index.nsteps == NSTEPS
        assert index.codec == "temporal_delta"
        assert index.keyframe_interval == KEYFRAME_INTERVAL
        assert set(index.field_grids) == set(index.components)
        reparsed = SeriesIndex.from_json(index.to_json())
        assert reparsed.to_json() == index.to_json()

    def test_keyframe_cadence(self, series_dir):
        index = SeriesIndex.load(series_dir)
        for step in index.steps:
            if step.index % KEYFRAME_INTERVAL == 0:
                assert step.kind == "key"
                assert all(d.mode == "key" for d in step.datasets)

    def test_delta_actually_saves(self, series_dir, keyonly_dir):
        delta_bytes = SeriesIndex.load(series_dir).stored_bytes
        key_bytes = SeriesIndex.load(keyonly_dir).stored_bytes
        assert delta_bytes < key_bytes
        # the manifest's keyframe-only accounting matches the real key-only run
        assert SeriesIndex.load(series_dir).key_bytes == key_bytes

    def test_delta_never_worse_per_dataset(self, series_dir):
        index = SeriesIndex.load(series_dir)
        for step in index.steps:
            for d in step.datasets:
                assert d.stored_bytes <= d.key_bytes

    def test_reports_look_like_write_reports(self, hierarchies, tmp_path):
        reports = write_series(hierarchies[:2], str(tmp_path / "r"),
                               keyframe_interval=2, error_bound=1e-3)
        assert len(reports) == 2
        assert reports[0].method == "series(temporal_delta)"
        assert reports[0].compression_ratio > 2
        assert reports[0].ndatasets == len(SeriesIndex.load(
            str(tmp_path / "r")).steps[0].datasets)

    def test_refuses_existing_series(self, series_dir, hierarchies):
        with pytest.raises(ValueError, match="already holds a series"):
            SeriesWriter(series_dir)

    def test_refuses_duplicate_step(self, hierarchies, tmp_path):
        with SeriesWriter(str(tmp_path / "dup"), error_bound=1e-3) as writer:
            writer.append(hierarchies[0])
            with pytest.raises(ValueError, match="distinct step"):
                writer.append(hierarchies[0])

    def test_refuses_bad_interval(self, tmp_path):
        with pytest.raises(ValueError, match="keyframe_interval"):
            SeriesWriter(str(tmp_path / "k0"), keyframe_interval=0)


class TestBackendIdentity:
    def test_all_backends_write_identical_bytes(self, hierarchies, tmp_path):
        dirs = {}
        for backend in ("serial", "thread", "process"):
            path = str(tmp_path / backend)
            write_series(hierarchies[:4], path, keyframe_interval=4,
                         error_bound=1e-3, backend=backend)
            dirs[backend] = path
        reference = dirs.pop("serial")
        files = sorted(f for f in os.listdir(reference) if f.endswith(".h5z")
                       and f != INDEX_FILENAME)
        for backend, path in dirs.items():
            for name in files:
                with open(os.path.join(reference, name), "rb") as a, \
                        open(os.path.join(path, name), "rb") as b:
                    assert a.read() == b.read(), (backend, name)


class TestSeriesReader:
    def test_decodes_identical_to_keyframe_only(self, series_dir, keyonly_dir):
        with open_series(series_dir) as delta, open_series(keyonly_dir) as key:
            for i in range(NSTEPS):
                hd = delta.read(step=i)
                hk = key.read(step=i)
                for lvl_d, lvl_k in zip(hd.levels, hk.levels):
                    for fab_d, fab_k in zip(lvl_d.multifab, lvl_k.multifab):
                        assert np.array_equal(fab_d.data, fab_k.data)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_full_read_on_every_backend(self, series_dir, backend):
        with open_series(series_dir) as series:
            reference = series.read(step=NSTEPS - 1)
        with open_series(series_dir) as series:
            hierarchy = series.read(step=NSTEPS - 1, backend=backend)
        for lvl_a, lvl_b in zip(reference.levels, hierarchy.levels):
            for fab_a, fab_b in zip(lvl_a.multifab, lvl_b.multifab):
                assert np.array_equal(fab_a.data, fab_b.data)

    def test_error_bound_on_kept_cells(self, series_dir, hierarchies):
        with open_series(series_dir) as series:
            for i, original in enumerate(hierarchies):
                decoded = series.read(step=i)
                for level in range(original.nlevels):
                    covered = covered_mask(original, level)
                    for name in original.component_names:
                        eb_abs = series.index.field_grids[name].eb_abs
                        ref = original[level].multifab.to_global(
                            name, original[level].domain)
                        got = decoded[level].multifab.to_global(
                            name, original[level].domain)
                        mask = original[level].boxarray.coverage_mask(
                            original[level].domain) & ~covered
                        err = np.abs(ref[mask] - got[mask]).max()
                        assert err <= eb_abs * (1 + 1e-9)

    def test_negative_step_indexing(self, series_dir):
        with open_series(series_dir) as series:
            last = series.read_field("baryon_density", step=-1, refill=False)
            explicit = series.read_field("baryon_density", step=NSTEPS - 1,
                                         refill=False)
            assert np.array_equal(last, explicit)
            with pytest.raises(IndexError):
                series.open_step(NSTEPS)

    def test_keyframe_step_opens_standalone(self, series_dir):
        with open_series(series_dir) as series:
            key_record = series.steps()[KEYFRAME_INTERVAL]
            assert key_record.kind == "key"
            chained = series.read_field("temperature", step=KEYFRAME_INTERVAL,
                                        refill=False)
        path = os.path.join(series_dir, key_record.path)
        with repro.open(path) as handle:
            assert handle.is_self_describing
            standalone = handle.read_field("temperature", refill=False)
        assert np.array_equal(chained, standalone)

    def test_delta_step_refuses_standalone_decode(self, series_dir):
        with open_series(series_dir) as series:
            delta_record = next(s for s in series.steps() if s.kind == "delta")
            delta_dataset = next(d for d in delta_record.datasets
                                 if d.mode == "delta")
        level = int(delta_dataset.name.split("/")[0].removeprefix("level_"))
        field = delta_dataset.name.split("/", 1)[1]
        with repro.open(os.path.join(series_dir, delta_record.path)) as handle:
            with pytest.raises(ValueError, match="open_series"):
                handle.read_field(field, level=level, refill=False)


class TestChainLocality:
    def test_time_slice_touches_only_the_boxes_chains(self, series_dir):
        box = Box((0, 0, 0), (5, 5, 5))
        with open_series(series_dir) as series:
            times, values = series.time_slice("baryon_density", box=box,
                                              level=0, refill=False)
            assert values.shape == (NSTEPS, 6, 6, 6)
            assert np.array_equal(times, np.asarray(series.times))
            decoded = series.stats.chunks_decoded
            total_chunks = sum(
                info.nchunks
                for i in range(NSTEPS)
                for info in series.open_step(i)._file.datasets.values())
            # the box's chains only: far fewer decodes than the whole series,
            # and never more than one decode of the box's dataset chunks per
            # step (the per-series code cache de-duplicates chain walks)
            assert 0 < decoded <= NSTEPS * 2
            assert decoded < total_chunks / 5

    def test_time_slice_matches_full_decode(self, series_dir, keyonly_dir):
        box = Box((4, 4, 4), (9, 9, 9))
        with open_series(series_dir) as series:
            _, values = series.time_slice("temperature", box=box, level=0,
                                          refill=False)
        with open_series(keyonly_dir) as key:
            for i in range(NSTEPS):
                full = key.read_field("temperature", step=i, refill=False)
                assert np.array_equal(values[i], full[4:10, 4:10, 4:10])

    def test_repeated_reads_hit_the_cache(self, series_dir):
        with open_series(series_dir) as series:
            box = Box((0, 0, 0), (3, 3, 3))
            series.read_field("xmom", box=box, step=2, refill=False)
            first = series.stats.chunks_decoded
            series.read_field("xmom", box=box, step=2, refill=False)
            assert series.stats.chunks_decoded == first
            assert series.stats.cache_hits > 0

    def test_step_subset_selection(self, series_dir):
        with open_series(series_dir) as series:
            times, values = series.time_slice(
                "baryon_density", box=Box((0, 0, 0), (1, 1, 1)),
                steps=[0, 2, -1], refill=False)
            assert values.shape[0] == 3
            assert times[2] == series.times[-1]


class TestRegridFallback:
    @staticmethod
    def _blob_hierarchy(step, fine_boxarray=None):
        shape = (24, 24, 24)
        idx = np.indices(shape)
        centre = (6 + 3 * step, 12, 12)
        dist2 = sum((ax - c) ** 2 for ax, c in zip(idx, centre))
        fields = {"density": np.exp(-dist2 / 20.0) + 0.01}
        return build_two_level_hierarchy(
            fields, "density", 0.05, max_grid_size=12, blocking_factor=4,
            nranks=2, seed=9, step=step, time=float(step),
            fine_boxarray=fine_boxarray)

    def test_regrid_mid_series_forces_keyframes(self, tmp_path):
        h0 = self._blob_hierarchy(0)
        frozen = h0[1].boxarray
        h1 = self._blob_hierarchy(1, fine_boxarray=frozen)   # same grids
        h2 = self._blob_hierarchy(2)                          # regridded
        assert tuple(h2[1].boxarray.boxes) != tuple(frozen.boxes)
        path = str(tmp_path / "regrid")
        write_series([h0, h1, h2], path, keyframe_interval=100,
                     error_bound=1e-3)
        index = SeriesIndex.load(path)
        assert index.steps[0].kind == "key"
        # step 1 shares the structure: the smooth blob drift deltas well
        assert any(d.mode == "delta" for d in index.steps[1].datasets)
        # step 2 regridded: every dataset must fall back to a keyframe
        # (including level 0, whose blocks are carved around the fine boxes)
        assert index.steps[1].fingerprint != index.steps[2].fingerprint
        assert all(d.mode == "key" for d in index.steps[2].datasets)
        # and the decoded data is still right everywhere
        with open_series(path) as series:
            for i, original in enumerate([h0, h1, h2]):
                decoded = series.read(step=i)
                name = "density"
                eb_abs = series.index.field_grids[name].eb_abs
                ref = original[1].multifab.to_global(name, original[1].domain)
                got = decoded[1].multifab.to_global(name, original[1].domain)
                mask = original[1].boxarray.coverage_mask(original[1].domain)
                assert np.abs(ref[mask] - got[mask]).max() <= eb_abs * (1 + 1e-9)

    def test_vanishing_fine_level(self, tmp_path):
        # a level that disappears mid-series must not leave a stale reference
        h0 = self._blob_hierarchy(0)
        flat = {"density": np.full((24, 24, 24), 0.01)}
        h1 = build_two_level_hierarchy(flat, "density", 0.05, max_grid_size=12,
                                       nranks=2, seed=9, step=1, time=1.0)
        h2 = self._blob_hierarchy(2)
        path = str(tmp_path / "vanish")
        write_series([h0, h1, h2], path, keyframe_interval=100, error_bound=1e-3)
        index = SeriesIndex.load(path)
        assert index.steps[1].fingerprint != index.steps[0].fingerprint
        with open_series(path) as series:
            for i in range(3):
                series.read(step=i)  # chains resolve without error


class TestManifestValidation:
    @staticmethod
    def _tampered(series_dir, mutate, tmp_path):
        index = SeriesIndex.load(series_dir)
        doc = index.to_json()
        mutate(doc)
        return doc

    def test_rejects_unknown_format(self, series_dir, tmp_path):
        doc = self._tampered(series_dir, lambda d: d.update(format="zip"),
                             tmp_path)
        with pytest.raises(ValueError, match="format"):
            SeriesIndex.from_json(doc)

    def test_rejects_future_version(self, series_dir, tmp_path):
        doc = self._tampered(series_dir, lambda d: d.update(version=99),
                             tmp_path)
        with pytest.raises(ValueError, match="version 99"):
            SeriesIndex.from_json(doc)

    def test_rejects_non_dense_steps(self, series_dir, tmp_path):
        def mutate(d):
            d["steps"][1]["index"] = 5
        with pytest.raises(ValueError, match="dense"):
            SeriesIndex.from_json(self._tampered(series_dir, mutate, tmp_path))

    def test_rejects_forward_reference(self, series_dir, tmp_path):
        def mutate(d):
            for ds in d["steps"][1]["datasets"]:
                ds["mode"] = "delta"
                ds["ref"] = 4
        with pytest.raises(ValueError, match="not earlier"):
            SeriesIndex.from_json(self._tampered(series_dir, mutate, tmp_path))

    def test_rejects_missing_grid(self, series_dir, tmp_path):
        def mutate(d):
            d["field_grids"].pop("temperature")
        with pytest.raises(ValueError, match="quantisation grid"):
            SeriesIndex.from_json(self._tampered(series_dir, mutate, tmp_path))

    def test_rejects_bad_mode(self, series_dir, tmp_path):
        def mutate(d):
            d["steps"][0]["datasets"][0]["mode"] = "diff"
        with pytest.raises(ValueError, match="unknown mode"):
            SeriesIndex.from_json(self._tampered(series_dir, mutate, tmp_path))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a plotfile series"):
            open_series(str(tmp_path / "nowhere"))

"""Series wiring: CLI subcommands, driver series mode, facade verbs, analysis."""

import json

import numpy as np
import pytest

import repro
from repro.amr.box import Box
from repro.apps.driver import SimulationDriver
from repro.apps.nyx import NyxSimulation
from repro.cli import main as cli_main
from repro.series import SeriesIndex


def make_sim(seed=17):
    return NyxSimulation(coarse_shape=(24, 24, 24), nranks=2,
                         target_fine_density=0.03, max_grid_size=12, seed=seed,
                         drift_rate=0.05, growth_rate=0.02, regrid_interval=4)


@pytest.fixture(scope="module")
def series_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "run")
    repro.write_series(make_sim().run(4), path, keyframe_interval=4,
                       error_bound=1e-3)
    return path


class TestFacade:
    def test_write_series_accepts_generators(self, series_dir):
        # the module fixture already streamed a generator through write_series
        assert SeriesIndex.load(series_dir).nsteps == 4

    def test_open_series_round_trip(self, series_dir):
        with repro.open_series(series_dir) as series:
            assert series.nsteps == 4
            assert "baryon_density" in series.fields
            times, values = series.time_slice(
                "baryon_density", box=Box((0, 0, 0), (2, 2, 2)), refill=False)
            assert values.shape == (4, 3, 3, 3)
            assert np.all(np.isfinite(values))

    def test_exported_verbs(self):
        assert repro.open_series is not None
        assert repro.write_series is not None
        assert "open_series" in repro.__all__ and "write_series" in repro.__all__


class TestDriverSeriesMode:
    def test_series_run_builds_a_series(self, tmp_path):
        out = str(tmp_path / "driver_series")
        driver = SimulationDriver(make_sim(seed=23), output_dir=out,
                                  series=True, keyframe_interval=3,
                                  error_bound=1e-3)
        records = driver.run(3)
        assert len(records) == 3
        assert all(r.path and r.path.endswith(".h5z") for r in records)
        index = SeriesIndex.load(out)
        assert index.nsteps == 3
        assert index.steps[0].kind == "key"

    def test_plot_interval_thins_the_series(self, tmp_path):
        out = str(tmp_path / "thin")
        driver = SimulationDriver(make_sim(seed=29), output_dir=out,
                                  series=True, plot_interval=2,
                                  error_bound=1e-3)
        driver.run(4)
        assert SeriesIndex.load(out).nsteps == 2

    def test_series_requires_output_dir(self):
        with pytest.raises(ValueError, match="output_dir"):
            SimulationDriver(make_sim(), series=True)

    def test_series_rejects_writer_and_method(self, tmp_path):
        with pytest.raises(ValueError, match="series"):
            SimulationDriver(make_sim(), series=True,
                             output_dir=str(tmp_path), method="nocomp")


class TestAnalysisRows:
    def test_step_rows_and_summary(self, series_dir):
        from repro.analysis import series_step_rows, series_summary

        rows = series_step_rows(series_dir)
        assert len(rows) == 4
        assert rows[0]["kind"] == "key"
        assert all(row["CR"] > 1 for row in rows)
        summary = series_summary(series_dir)
        assert summary["nsteps"] == 4
        assert summary["keyframe_only_bytes"] >= summary["stored_bytes"]
        assert summary["delta_savings_factor"] >= 1.0
        assert np.isfinite(summary["mean_psnr_db"])

    def test_dataset_rows(self, series_dir):
        from repro.analysis import series_dataset_rows

        rows = series_dataset_rows(series_dir, step=1)
        assert {row["mode"] for row in rows} <= {"key", "delta"}
        assert any(row["mode"] == "delta" for row in rows)


class TestSeriesCli:
    def test_series_info(self, series_dir, capsys):
        assert cli_main(["series-info", series_dir]) == 0
        out = capsys.readouterr().out
        assert "temporal_delta" in out
        assert "vs keyframe-only" in out
        assert "delta_saved" in out

    def test_series_info_json(self, series_dir, capsys):
        assert cli_main(["series-info", series_dir, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["nsteps"] == 4
        assert summary["delta_savings_factor"] >= 1.0

    def test_series_info_step_table(self, series_dir, capsys):
        assert cli_main(["series-info", series_dir, "--step", "1"]) == 0
        assert "level_0/baryon_density" in capsys.readouterr().out

    def test_series_verify_passes(self, series_dir, capsys):
        assert cli_main(["series-verify", series_dir]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "chunks decoded" in out

    def test_series_verify_detects_corruption(self, series_dir, tmp_path, capsys):
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(series_dir, broken)
        index = SeriesIndex.load(broken)
        # lie about a stored size: manifest/file consistency must fail
        index.steps[1].datasets[0].stored_bytes += 1
        index.save(broken)
        assert cli_main(["series-verify", broken]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_series_commands_on_missing_dir(self, tmp_path, capsys):
        assert cli_main(["series-info", str(tmp_path / "nope")]) == 1
        assert cli_main(["series-verify", str(tmp_path / "nope")]) == 1


class TestLegacyInfoSatellite:
    @pytest.fixture()
    def legacy_pair(self, tmp_path):
        """A pre-header plotfile plus a self-describing twin for --template."""
        from repro.core.pipeline import AMRICWriter
        from repro.h5lite.file import H5LiteFile

        hierarchy = make_sim(seed=31).hierarchy
        modern = str(tmp_path / "modern.h5z")
        with AMRICWriter(error_bound=1e-3) as writer:
            writer.write_plotfile(hierarchy, modern)
        legacy = str(tmp_path / "legacy.h5z")
        with H5LiteFile(modern, "r") as src, H5LiteFile(legacy, "w") as dst:
            dst.attrs.update(src.attrs)
            dst.header = None                       # strip the format-v1 header
            for name in src.dataset_names():
                info = src.datasets[name]
                payloads = [src.read_chunk_payload(name, i)
                            for i in range(info.nchunks)]
                dst.create_dataset_from_chunks(
                    name, payloads, shape=info.shape, dtype=info.dtype,
                    chunk_elements=info.chunk_elements,
                    filter_id=info.filter_id,
                    actual_elements_per_chunk=[c.actual_elements
                                               for c in info.chunks],
                    attrs=info.attrs)
        return legacy, modern, hierarchy

    def test_info_on_legacy_file_fails_clearly(self, legacy_pair, capsys):
        legacy, _, _ = legacy_pair
        assert cli_main(["info", legacy]) == 1
        err = capsys.readouterr().err
        assert "legacy plotfile" in err
        assert "--template" in err

    def test_info_on_modern_file_still_works(self, legacy_pair, capsys):
        _, modern, _ = legacy_pair
        assert cli_main(["info", modern]) == 0
        assert "self_describing" in capsys.readouterr().out

    def test_decompress_template_rescues_legacy(self, legacy_pair, tmp_path,
                                                capsys):
        legacy, modern, hierarchy = legacy_pair
        out = str(tmp_path / "restored.h5z")
        # without the template the legacy file is unreadable...
        assert cli_main(["decompress", legacy, str(tmp_path / "x.h5z")]) == 1
        assert "template" in capsys.readouterr().err
        # ...with it, the reconstruction matches the modern file's
        assert cli_main(["decompress", legacy, out, "--template", modern]) == 0
        # the restored copy carries the refilled coarse cells, so compare
        # against the refilled read of the self-describing twin
        with repro.open(out) as restored, repro.open(modern) as reference:
            a = restored.read_field("baryon_density", refill=False)
            direct = reference.read_field("baryon_density", refill=True)
            assert np.array_equal(a, direct)

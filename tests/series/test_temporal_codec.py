"""The temporal_delta codec: grids, key/delta streams, corrupt inputs."""

import numpy as np
import pytest

from repro.compress.errorbound import ErrorBound
from repro.compress.registry import available_codecs, create_codec
from repro.compress.temporal import (
    MODE_DELTA,
    MODE_KEY,
    TemporalDeltaCodec,
    TemporalDeltaFilter,
    stream_mode,
)


@pytest.fixture()
def codec():
    return TemporalDeltaCodec(ErrorBound.absolute(1e-2), offset=3.0)


@pytest.fixture()
def data():
    rng = np.random.default_rng(11)
    return 3.0 + np.cumsum(rng.normal(size=4096)) * 0.05


class TestRegistry:
    def test_registered(self):
        assert "temporal_delta" in available_codecs()

    def test_create_filters_options(self):
        codec = create_codec("temporal_delta", 1e-3, mode="abs", offset=2.5,
                             block_size=99)  # block_size silently dropped
        assert isinstance(codec, TemporalDeltaCodec)
        assert codec.offset == 2.5


class TestKeyStreams:
    def test_round_trip_and_bound(self, codec, data):
        payload, codes, recon = codec.encode_key(data)
        assert np.abs(recon - data).max() <= 1e-2 * (1 + 1e-12)
        values, back_codes = codec.decode_key(payload)
        assert np.array_equal(values, recon)
        assert np.array_equal(back_codes, codes)
        assert stream_mode(payload) == MODE_KEY

    def test_compressor_interface(self, data):
        codec = create_codec("temporal_delta", 1e-3)
        buffer, recon = codec.compress_with_reconstruction(data.reshape(64, 64))
        assert buffer.codec == "temporal_delta"
        assert np.array_equal(codec.decompress(buffer), recon)
        assert buffer.compression_ratio > 2

    def test_constant_field(self, codec):
        payload, codes, recon = codec.encode_key(np.full(100, 3.0))
        assert np.all(codes == 0)
        values, _ = codec.decode_key(payload)
        assert np.allclose(values, 3.0)


class TestDeltaStreams:
    def test_reconstruction_identical_to_key(self, codec, data):
        _, ref_codes, _ = codec.encode_key(data)
        drifted = data + 0.03 * np.sin(np.arange(data.size) / 50.0)
        delta_payload, codes, recon = codec.encode_delta(drifted, ref_codes)
        key_payload, key_codes, key_recon = codec.encode_key(drifted)
        assert np.array_equal(recon, key_recon)
        assert np.array_equal(codes, key_codes)
        assert stream_mode(delta_payload) == MODE_DELTA

    def test_delta_smaller_for_smooth_drift(self, codec, data):
        _, ref_codes, _ = codec.encode_key(data)
        drifted = data + 0.02
        delta_payload, _, _ = codec.encode_delta(drifted, ref_codes)
        key_payload, _, _ = codec.encode_key(drifted)
        assert len(delta_payload) < len(key_payload)

    def test_decode_with_reference(self, codec, data):
        _, ref_codes, _ = codec.encode_key(data)
        payload, codes, recon = codec.encode_delta(data + 0.05, ref_codes)
        values, back = codec.decode_with_reference(payload, ref_codes)
        assert np.array_equal(values, recon)
        assert np.array_equal(back, codes)

    def test_delta_standalone_refused(self, codec, data):
        _, ref_codes, _ = codec.encode_key(data)
        payload, _, _ = codec.encode_delta(data, ref_codes)
        with pytest.raises(ValueError, match="open_series"):
            codec.decode_key(payload)
        with pytest.raises(ValueError, match="reference"):
            codec.decode_with_reference(payload, None)

    def test_mismatched_reference_sizes(self, codec, data):
        _, ref_codes, _ = codec.encode_key(data)
        with pytest.raises(ValueError, match="identical layout"):
            codec.encode_delta(data[:-1], ref_codes)
        payload, _, _ = codec.encode_delta(data, ref_codes)
        with pytest.raises(ValueError, match="inconsistent"):
            codec.decode_with_reference(payload, ref_codes[:-2])


class TestCorruptStreams:
    def test_wrong_codec_stream(self, codec, data):
        other = create_codec("sz_lr", 1e-3)
        buffer = other.compress(data)
        with pytest.raises(ValueError):
            codec.decode_key(buffer.payload)

    def test_truncated_stream(self, codec, data):
        payload, _, _ = codec.encode_key(data)
        with pytest.raises(ValueError):
            codec.decode_key(payload[: len(payload) // 2])

    def test_garbage(self, codec):
        with pytest.raises(ValueError):
            codec.decode_key(b"not a container at all")


class TestFilter:
    def test_encode_decode_with_padding(self, codec, data):
        filt = TemporalDeltaFilter(codec)
        chunk = np.concatenate([data, np.zeros(128)])
        payload = filt.encode(chunk, actual_elements=data.size)
        back = filt.decode(payload, chunk.size)
        assert np.abs(back[:data.size] - data).max() <= 1e-2 * (1 + 1e-12)
        assert np.all(back[data.size:] == 0.0)
        assert filt.stats.calls == 1
        assert filt.stats.padded_elements == 128

    def test_oversized_payload_rejected(self, codec, data):
        filt = TemporalDeltaFilter(codec)
        payload = filt.encode(data, actual_elements=data.size)
        with pytest.raises(ValueError, match="hold"):
            filt.decode(payload, data.size // 2)

    def test_bad_actual_elements(self, codec, data):
        filt = TemporalDeltaFilter(codec)
        with pytest.raises(ValueError, match="out of range"):
            filt.encode(data, actual_elements=data.size + 1)

"""Shared pytest configuration.

Registers a hypothesis profile suited to a numerics-heavy suite: no per-example
deadline (numpy warm-up and O(n^2) geometric checks are fine but not
microsecond-fast) and a bounded number of examples so the full suite stays
quick.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")

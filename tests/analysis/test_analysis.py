"""Tests for the analysis helpers (rate-distortion, error slices, reporting)."""

import numpy as np
import pytest

from repro.analysis.error_slices import (
    boundary_error_excess,
    compare_error_slices,
    error_slice,
)
from repro.analysis.rate_distortion import (
    RateDistortionPoint,
    curve,
    dominates,
    rate_distortion_sweep,
)
from repro.analysis.reporting import ComparisonRecord, comparison_record, format_table
from repro.compress import SZLRCompressor


class TestRateDistortion:
    def _method(self, data, cls=SZLRCompressor):
        def fn(eb):
            comp = cls(eb)
            buf, recon = comp.compress_with_reconstruction(data)
            return buf.compressed_nbytes, data, recon
        return fn

    def test_sweep_produces_points(self):
        rng = np.random.default_rng(0)
        data = np.cumsum(np.cumsum(rng.normal(size=(16, 16, 16)), axis=0), axis=1)
        points = rate_distortion_sweep({"sz_lr": self._method(data)},
                                       error_bounds=[1e-2, 1e-3])
        assert len(points) == 2
        assert all(isinstance(p, RateDistortionPoint) for p in points)
        tight = [p for p in points if p.error_bound == 1e-3][0]
        loose = [p for p in points if p.error_bound == 1e-2][0]
        assert tight.psnr > loose.psnr
        assert tight.compression_ratio < loose.compression_ratio

    def test_curve_and_dominates(self):
        points = [
            RateDistortionPoint("good", 1e-2, 100.0, 80.0),
            RateDistortionPoint("good", 1e-3, 30.0, 95.0),
            RateDistortionPoint("bad", 1e-2, 90.0, 70.0),
            RateDistortionPoint("bad", 1e-3, 25.0, 88.0),
        ]
        ratios, psnrs = curve(points, "good")
        assert list(ratios) == [30.0, 100.0]
        assert dominates(points, "good", "bad")
        assert not dominates(points, "bad", "good")
        with pytest.raises(KeyError):
            curve(points, "missing")

    def test_point_as_row(self):
        p = RateDistortionPoint("m", 1e-3, 12.0, 60.0)
        row = p.as_row()
        assert row["method"] == "m" and row["psnr"] == 60.0


class TestErrorSlices:
    def test_error_slice_extraction(self):
        orig = np.zeros((8, 8, 8))
        recon = orig.copy()
        recon[4, 2, 3] = 0.5
        sl = error_slice(orig, recon, axis=0, index=4)
        assert sl.shape == (8, 8)
        assert sl[2, 3] == pytest.approx(0.5)
        assert error_slice(orig, recon, axis=0, index=0).max() == 0.0

    def test_error_slice_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_slice(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_compare_error_slices(self):
        rng = np.random.default_rng(1)
        orig = rng.normal(size=(10, 10, 10))
        good = orig + 1e-4 * rng.normal(size=orig.shape)
        bad = orig + 1e-2 * rng.normal(size=orig.shape)
        cmp = compare_error_slices(orig, good, bad)
        assert cmp.a_is_cleaner
        assert cmp.mean_error_b > cmp.mean_error_a
        assert cmp.p99_error_b > cmp.p99_error_a

    def test_boundary_error_excess_detects_seam_artifacts(self):
        orig = np.zeros((16, 16, 16))
        recon = orig.copy()
        recon[::8, :, :] += 0.1          # error concentrated on block boundaries
        excess = boundary_error_excess(orig, recon, block_size=8)
        assert excess > 2.0
        uniform = orig + 0.05
        assert boundary_error_excess(orig, uniform, 8) == pytest.approx(1.0)


class TestReporting:
    def test_format_table(self):
        rows = [{"method": "amric", "cr": 15.2, "psnr": 66.1},
                {"method": "amrex", "cr": 8.8, "psnr": 52.5}]
        text = format_table(rows, title="Table 2")
        assert "Table 2" in text
        assert "amric" in text and "8.80" in text
        assert format_table([]) == "(no rows)"

    def test_comparison_record(self):
        rec = comparison_record("table2/nyx_1", "cr_amric_szlr", 15.0, 12.1, "scaled run")
        assert isinstance(rec, ComparisonRecord)
        assert rec.ratio == pytest.approx(12.1 / 15.0)
        row = rec.as_row()
        assert row["experiment"] == "table2/nyx_1"

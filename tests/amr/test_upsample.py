"""Direct coverage for :mod:`repro.amr.upsample` (the conservative stencils).

``average_down`` / ``fill_covered_from_finer`` are the shared stencil both
the reader's refill stage and the analysis layer depend on; these tests pin
the conservation invariants (block means preserved exactly, upsample →
average_down is the identity) and the covered-cell bookkeeping.
"""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.amr.multifab import MultiFab
from repro.amr.upsample import (
    average_down,
    covered_mask,
    fill_covered_from_finer,
    flatten_to_uniform,
    upsample_array,
)


def two_level_hierarchy(coarse_shape=(8, 8, 8), fine_lo=(4, 4, 4),
                        fine_hi=(11, 11, 11), ratio=2, seed=0):
    """A small hand-built hierarchy with one fine box and dense random data."""
    rng = np.random.default_rng(seed)
    names = ("f",)
    coarse_domain = Box.from_shape(coarse_shape)
    coarse_ba = BoxArray.decompose(coarse_domain, 8)
    coarse_mf = MultiFab(coarse_ba, names,
                         DistributionMapping.knapsack([b.size for b in coarse_ba], 2))
    coarse_mf.set_from_global("f", rng.normal(size=coarse_shape), coarse_domain)
    fine_ba = BoxArray([Box(fine_lo, fine_hi)])
    fine_mf = MultiFab(fine_ba, names,
                       DistributionMapping.knapsack([b.size for b in fine_ba], 2))
    fine_domain = coarse_domain.refine(ratio)
    for fab in fine_mf:
        fab.set_component(0, rng.normal(size=fab.box.shape))
    levels = [AmrLevel(0, coarse_domain, coarse_ba, coarse_mf),
              AmrLevel(1, fine_domain, fine_ba, fine_mf)]
    return AmrHierarchy(levels, [ratio])


class TestUpsampleAverageDown:
    def test_upsample_repeats_values(self):
        a = np.arange(8.0).reshape(2, 2, 2)
        up = upsample_array(a, 3)
        assert up.shape == (6, 6, 6)
        assert np.all(up[0:3, 0:3, 0:3] == a[0, 0, 0])
        assert np.all(up[3:6, 3:6, 3:6] == a[1, 1, 1])

    def test_ratio_one_is_identity_copy(self):
        a = np.arange(4.0).reshape(2, 2)
        up = upsample_array(a, 1)
        down = average_down(a, 1)
        assert np.array_equal(up, a) and np.array_equal(down, a)
        down[0, 0] = 99.0
        assert a[0, 0] == 0.0  # copy, not a view

    @pytest.mark.parametrize("ratio", [2, 4])
    def test_average_down_inverts_upsample_exactly(self, ratio):
        a = np.random.default_rng(1).normal(size=(4, 6, 2))
        assert np.allclose(average_down(upsample_array(a, ratio), ratio), a)

    def test_average_down_is_conservative(self):
        a = np.random.default_rng(2).normal(size=(8, 8))
        down = average_down(a, 2)
        # total mass is preserved: each coarse cell is the exact block mean
        assert np.isclose(down.sum() * 4, a.sum())
        assert np.isclose(down[0, 0], a[0:2, 0:2].mean())

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="ratio"):
            upsample_array(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError, match="ratio"):
            average_down(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError, match="not divisible"):
            average_down(np.zeros((3, 4)), 2)


class TestCoveredRefill:
    def test_covered_mask_matches_fine_boxes(self):
        h = two_level_hierarchy()
        mask = covered_mask(h, 0)
        expected = np.zeros((8, 8, 8), dtype=bool)
        expected[2:6, 2:6, 2:6] = True     # fine box (4..11) coarsened by 2
        assert np.array_equal(mask, expected)
        assert not covered_mask(h, 1).any()  # finest level is never covered

    def test_refill_restores_conservative_averages(self):
        h = two_level_hierarchy()
        # wipe the covered coarse cells, as the §3.1 preprocessing would
        mask = covered_mask(h, 0)
        comp = h[0].multifab.component_index("f")
        kept = {}
        for i, fab in enumerate(h[0].multifab):
            kept[i] = fab.component(comp).copy()
            local = mask[fab.box.slices(origin=h[0].domain.lo)]
            fab.component(comp)[local] = 0.0
        fill_covered_from_finer(h)
        fine_global = h[1].multifab.to_global("f", h[1].domain)
        for i, fab in enumerate(h[0].multifab):
            got = fab.component(comp)
            local = mask[fab.box.slices(origin=h[0].domain.lo)]
            # uncovered cells are untouched
            assert np.array_equal(got[~local], kept[i][~local])
            # covered cells hold the exact mean of their 2^3 fine children
            full = average_down(
                fine_global[fab.box.refine(2).slices(origin=h[1].domain.lo)], 2)
            assert np.allclose(got[local], full[local])

    def test_refill_cascades_through_intermediate_levels(self):
        # three levels: the middle level is refilled from the finest first,
        # then the coarse level sees the cascaded values
        names = ("f",)
        d0 = Box.from_shape((4, 4, 4))
        ba0 = BoxArray([d0])
        mf0 = MultiFab(ba0, names, DistributionMapping.knapsack([d0.size], 1))
        b1 = Box((2, 2, 2), (5, 5, 5))
        ba1 = BoxArray([b1])
        mf1 = MultiFab(ba1, names, DistributionMapping.knapsack([b1.size], 1))
        b2 = Box((4, 4, 4), (11, 11, 11))
        ba2 = BoxArray([b2])
        mf2 = MultiFab(ba2, names, DistributionMapping.knapsack([b2.size], 1))
        rng = np.random.default_rng(3)
        fine = rng.normal(size=b2.shape)
        mf2[0].set_component(0, fine)
        h = AmrHierarchy([AmrLevel(0, d0, ba0, mf0),
                          AmrLevel(1, d0.refine(2), ba1, mf1),
                          AmrLevel(2, d0.refine(4), ba2, mf2)], [2, 2])
        fill_covered_from_finer(h)
        # the coarse cell (1,1,1) is covered through both interfaces: its
        # value must equal the mean of the corresponding 4^3 finest cells
        assert np.isclose(h[0].multifab[0].component(0)[1, 1, 1],
                          average_down(fine, 4)[0, 0, 0])

    def test_flatten_prefers_fine_data(self):
        h = two_level_hierarchy()
        flat = flatten_to_uniform(h, "f")
        assert flat.shape == (16, 16, 16)
        fine_global = h[1].multifab.to_global("f", h[1].domain)
        assert np.array_equal(flat[4:12, 4:12, 4:12],
                              fine_global[4:12, 4:12, 4:12])
        coarse = h[0].multifab.to_global("f", h[0].domain)
        assert flat[0, 0, 0] == coarse[0, 0, 0]
        assert flat[1, 1, 1] == coarse[0, 0, 0]  # piecewise-constant upsample

"""Tests for repro.amr.hierarchy, regrid, and upsample."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.amr.multifab import MultiFab
from repro.amr.regrid import cluster_tags, make_fine_boxarray, tag_cells
from repro.amr.upsample import covered_mask, flatten_to_uniform, upsample_array


def make_two_level(coarse_shape=(16, 16, 16), ratio=2, fine_boxes=None,
                   components=("density",), nranks=2):
    """A small hand-built two-level hierarchy used across the test suite."""
    coarse_domain = Box.from_shape(coarse_shape)
    coarse_ba = BoxArray.decompose(coarse_domain, 8)
    coarse_dm = DistributionMapping.round_robin(len(coarse_ba), nranks)
    coarse_mf = MultiFab(coarse_ba, components, coarse_dm)

    if fine_boxes is None:
        fine_boxes = [Box((4, 4, 4), (11, 11, 11)).refine(ratio)]
    fine_ba = BoxArray(fine_boxes)
    fine_dm = DistributionMapping.round_robin(len(fine_ba), nranks)
    fine_mf = MultiFab(fine_ba, components, fine_dm)

    levels = [
        AmrLevel(0, coarse_domain, coarse_ba, coarse_mf),
        AmrLevel(1, coarse_domain.refine(ratio), fine_ba, fine_mf),
    ]
    return AmrHierarchy(levels, [ratio])


class TestAmrLevel:
    def test_density(self):
        h = make_two_level()
        assert h[0].density() == pytest.approx(1.0)
        assert h[1].density() == pytest.approx((16 ** 3) / (32 ** 3))

    def test_box_outside_domain_rejected(self):
        domain = Box.from_shape((8, 8, 8))
        ba = BoxArray([Box((0, 0, 0), (9, 7, 7))])
        mf = MultiFab(ba, ["x"])
        with pytest.raises(ValueError):
            AmrLevel(0, domain, ba, mf)

    def test_mismatched_fab_count_rejected(self):
        domain = Box.from_shape((8, 8, 8))
        ba = BoxArray.decompose(domain, 4)
        mf = MultiFab(BoxArray.decompose(domain, 8), ["x"])
        with pytest.raises(ValueError):
            AmrLevel(0, domain, ba, mf)


class TestAmrHierarchy:
    def test_basic_structure(self):
        h = make_two_level()
        assert h.nlevels == 2
        assert h.ref_ratios == (2,)
        assert h.component_names == ("density",)
        assert h.is_properly_nested()

    def test_wrong_ratio_count(self):
        h = make_two_level()
        with pytest.raises(ValueError):
            AmrHierarchy(h.levels, [2, 2])

    def test_wrong_fine_domain(self):
        h = make_two_level()
        bad_fine = AmrLevel(1, h[0].domain.refine(4), h[1].boxarray, h[1].multifab)
        with pytest.raises(ValueError):
            AmrHierarchy([h[0], bad_fine], [2])

    def test_component_mismatch_rejected(self):
        h = make_two_level()
        other_mf = MultiFab(h[1].boxarray, ["other"])
        bad = AmrLevel(1, h[1].domain, h[1].boxarray, other_mf)
        with pytest.raises(ValueError):
            AmrHierarchy([h[0], bad], [2])

    def test_ratio_between(self):
        h = make_two_level()
        assert h.ratio_between(0, 0) == 1
        assert h.ratio_between(0, 1) == 2
        with pytest.raises(ValueError):
            h.ratio_between(1, 0)

    def test_covered_cells_and_redundancy(self):
        h = make_two_level()
        # fine level covers the coarse region (4..11)^3 => 8^3 coarse cells
        assert h.covered_cells(0) == 8 ** 3
        assert h.covered_cells(1) == 0
        assert h.redundancy_fraction(0) == pytest.approx(8 ** 3 / 16 ** 3)

    def test_densities_list(self):
        h = make_two_level()
        dens = h.densities()
        assert len(dens) == 2
        assert dens[0] == pytest.approx(1.0)

    def test_single_level_helper(self):
        h = AmrHierarchy.single_level((16, 16, 16), ["a", "b"], max_grid_size=8, nranks=4)
        assert h.nlevels == 1
        assert h[0].num_cells == 16 ** 3
        assert h.ncomp == 2

    def test_value_range(self):
        h = make_two_level()
        domain = h[0].domain
        h[0].multifab.set_from_global("density", np.full(domain.shape, 2.0), domain)
        for fab in h[1].multifab:
            fab.component(0)[...] = -1.0
        assert h.value_range("density") == pytest.approx(3.0)

    def test_nbytes_and_cells(self):
        h = make_two_level()
        assert h.num_cells == 16 ** 3 + 16 ** 3
        assert h.nbytes == h.num_cells * 8


class TestRegrid:
    def test_tag_threshold_default_mean(self):
        field = np.zeros((8, 8, 8))
        field[4:, :, :] = 10.0
        tags = tag_cells(field, "threshold")
        assert tags[5, 0, 0] and not tags[0, 0, 0]

    def test_tag_gradient(self):
        x = np.linspace(0, 1, 32)
        field = np.tile((x > 0.5).astype(float) * 5, (32, 32, 1))
        tags = tag_cells(field, "gradient")
        assert tags.any()
        # tags concentrate near the jump at index ~16
        idx = np.nonzero(tags)[2]
        assert np.all(np.abs(idx - 16) < 4)

    def test_tag_unknown_criterion(self):
        with pytest.raises(ValueError):
            tag_cells(np.zeros((4, 4)), "bogus")

    def test_cluster_tags_covers_all_tags(self):
        rng = np.random.default_rng(3)
        tags = np.zeros((32, 32, 32), dtype=bool)
        tags[5:12, 8:20, 3:9] = True
        tags[20:28, 2:6, 20:30] = True
        ba = cluster_tags(tags, max_grid_size=16)
        assert ba.is_disjoint()
        mask = ba.coverage_mask(Box.from_shape(tags.shape))
        assert np.all(mask[tags])  # every tag covered

    def test_cluster_tags_empty(self):
        ba = cluster_tags(np.zeros((8, 8, 8), dtype=bool))
        assert len(ba) == 0

    def test_cluster_respects_max_grid_size(self):
        tags = np.ones((40, 40, 8), dtype=bool)
        ba = cluster_tags(tags, max_grid_size=16)
        for b in ba:
            assert all(s <= 16 for s in b.shape)

    def test_make_fine_boxarray(self):
        coarse_domain = Box.from_shape((32, 32, 32))
        field = np.zeros(coarse_domain.shape)
        field[10:20, 10:20, 10:20] = 5.0
        fine_ba = make_fine_boxarray(field, coarse_domain, ratio=2, threshold=1.0)
        assert len(fine_ba) >= 1
        # fine boxes live in the refined index space
        assert coarse_domain.refine(2).contains(fine_ba.minimal_box())
        # the tagged region, refined, is covered
        tagged_fine = Box((10, 10, 10), (19, 19, 19)).refine(2)
        assert fine_ba.contains_box(tagged_fine)

    def test_make_fine_boxarray_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_fine_boxarray(np.zeros((4, 4, 4)), Box.from_shape((8, 8, 8)), 2)

    def test_make_fine_boxarray_no_tags(self):
        coarse_domain = Box.from_shape((16, 16, 16))
        ba = make_fine_boxarray(np.zeros(coarse_domain.shape), coarse_domain, 2,
                                threshold=5.0)
        assert len(ba) == 0


class TestUpsample:
    def test_upsample_array(self):
        a = np.arange(8).reshape(2, 2, 2).astype(float)
        up = upsample_array(a, 2)
        assert up.shape == (4, 4, 4)
        assert np.all(up[0:2, 0:2, 0:2] == a[0, 0, 0])
        assert np.all(up[2:4, 2:4, 2:4] == a[1, 1, 1])

    def test_upsample_identity(self):
        a = np.random.default_rng(0).normal(size=(3, 3, 3))
        np.testing.assert_array_equal(upsample_array(a, 1), a)

    def test_covered_mask(self):
        h = make_two_level()
        mask = covered_mask(h, 0)
        assert mask.sum() == 8 ** 3
        assert covered_mask(h, 1).sum() == 0

    def test_flatten_uses_fine_where_available(self):
        h = make_two_level()
        domain0 = h[0].domain
        h[0].multifab.set_from_global("density", np.full(domain0.shape, 1.0), domain0)
        for fab in h[1].multifab:
            fab.component(0)[...] = 2.0
        flat = flatten_to_uniform(h, "density")
        assert flat.shape == h[1].domain.shape
        # region covered by fine boxes reads fine value
        assert flat[8, 8, 8] == 2.0  # inside (4..11)*2
        # region not covered reads upsampled coarse value
        assert flat[0, 0, 0] == 1.0
        # the redundant coarse data never appears: set coarse under fine to garbage
        h[0].multifab[0].component(0)[...] = -999.0
        flat2 = flatten_to_uniform(h, "density")
        assert flat2[8, 8, 8] == 2.0

    def test_flatten_single_level(self):
        h = AmrHierarchy.single_level((8, 8, 8), ["x"])
        field = np.random.default_rng(1).normal(size=(8, 8, 8))
        h[0].multifab.set_from_global("x", field, h[0].domain)
        np.testing.assert_array_equal(flatten_to_uniform(h, "x"), field)

"""Direct coverage for :mod:`repro.amr.regrid` (tagging + clustering).

The series subsystem leans on regridding twice: a regrid mid-series changes
the hierarchy fingerprint (forcing the delta writer's keyframe fallback),
and ``regrid_interval`` keeps grids fixed between regrids.  These tests pin
the clustering invariants both behaviours rely on.
"""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.regrid import cluster_tags, make_fine_boxarray, tag_cells
from repro.apps.base import build_two_level_hierarchy


def blob_tags(shape=(32, 32, 32), centre=(8, 8, 8), radius=4.5):
    idx = np.indices(shape)
    dist2 = sum((ax - c) ** 2 for ax, c in zip(idx, centre))
    return dist2 <= radius * radius


class TestTagCells:
    def test_threshold_default_is_mean(self):
        field = np.arange(27.0).reshape(3, 3, 3)
        tags = tag_cells(field)
        assert np.array_equal(tags, field > field.mean())

    def test_threshold_explicit(self):
        field = np.arange(8.0).reshape(2, 2, 2)
        assert tag_cells(field, threshold=6.5).sum() == 1

    def test_gradient_tags_the_jump(self):
        field = np.zeros((24, 24))
        field[:, 12:] = 10.0
        tags = tag_cells(field, criterion="gradient")
        assert tags.any()
        # only columns adjacent to the discontinuity fire
        cols = np.nonzero(tags.any(axis=0))[0]
        assert set(cols) <= {10, 11, 12, 13}

    def test_unknown_criterion(self):
        with pytest.raises(ValueError, match="unknown tagging criterion"):
            tag_cells(np.zeros((4, 4)), criterion="entropy")


class TestClusterTags:
    def test_covers_every_tagged_cell(self):
        tags = blob_tags()
        ba = cluster_tags(tags, max_grid_size=16, blocking_factor=4)
        mask = ba.coverage_mask(Box.from_shape(tags.shape))
        assert np.all(mask[tags]), "a tagged cell escaped the clustering"

    def test_boxes_disjoint_and_bounded(self):
        tags = blob_tags() | blob_tags(centre=(24, 24, 24))
        ba = cluster_tags(tags, max_grid_size=8, blocking_factor=4)
        assert ba.is_disjoint()
        for box in ba:
            assert all(s <= 8 for s in box.shape)

    def test_efficiency_not_degenerate(self):
        tags = blob_tags()
        ba = cluster_tags(tags, max_grid_size=16, blocking_factor=2)
        covered = ba.covered_fraction(Box.from_shape(tags.shape))
        tagged = tags.mean()
        # clustering over-covers, but not absurdly
        assert tagged <= covered <= 12 * tagged

    def test_no_tags_gives_empty_boxarray(self):
        ba = cluster_tags(np.zeros((16, 16), dtype=bool))
        assert len(ba) == 0

    def test_origin_shifts_boxes(self):
        tags = np.zeros((16, 16), dtype=bool)
        tags[2:6, 3:7] = True
        ba0 = cluster_tags(tags, blocking_factor=1)
        ba_shifted = cluster_tags(tags, origin=(10, 20), blocking_factor=1)
        assert [b.shift((10, 20)) for b in ba0] == list(ba_shifted.boxes)


class TestMakeFineBoxArray:
    def test_round_trip_covers_tags_in_fine_space(self):
        field = np.zeros((24, 24, 24))
        field[4:10, 4:10, 4:10] = 1.0
        domain = Box.from_shape(field.shape)
        fine = make_fine_boxarray(field, domain, ratio=2, threshold=0.5,
                                  blocking_factor=2)
        assert len(fine) > 0
        coarse = fine.coarsen(2)
        mask = coarse.coverage_mask(domain)
        assert np.all(mask[field > 0.5])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="must equal the coarse domain"):
            make_fine_boxarray(np.zeros((8, 8)), Box.from_shape((9, 9)), ratio=2)

    def test_no_tags_empty(self):
        field = np.ones((16, 16, 16))
        ba = make_fine_boxarray(field, Box.from_shape(field.shape), ratio=2,
                                threshold=2.0)
        assert len(ba) == 0


class TestRegridMidSeries:
    """A drifting refinement blob — what forces the series keyframe fallback."""

    @staticmethod
    def _fields(step):
        shape = (24, 24, 24)
        idx = np.indices(shape)
        centre = (6 + 3 * step, 8, 8)
        dist2 = sum((ax - c) ** 2 for ax, c in zip(idx, centre))
        return {"density": np.exp(-dist2 / 18.0) + 0.01}

    def test_moving_blob_changes_the_boxarray(self):
        structures = []
        for step in range(3):
            h = build_two_level_hierarchy(
                self._fields(step), "density", 0.05, max_grid_size=12,
                blocking_factor=4, nranks=2, seed=1, step=step)
            assert h.nlevels == 2 and h.is_properly_nested()
            structures.append(tuple(h[1].boxarray.boxes))
        assert structures[0] != structures[2], \
            "the drifting blob must regrid the fine level"

    def test_fine_boxarray_reuse_freezes_the_grids(self):
        h0 = build_two_level_hierarchy(
            self._fields(0), "density", 0.05, max_grid_size=12,
            blocking_factor=4, nranks=2, seed=1, step=0)
        frozen = h0[1].boxarray
        h1 = build_two_level_hierarchy(
            self._fields(2), "density", 0.05, max_grid_size=12,
            blocking_factor=4, nranks=2, seed=1, step=2,
            fine_boxarray=frozen)
        assert tuple(h1[1].boxarray.boxes) == tuple(frozen.boxes)
        # but the data on the frozen grids still evolved
        a = h0[1].multifab.to_global("density", h0[1].domain)
        b = h1[1].multifab.to_global("density", h1[1].domain)
        assert not np.allclose(a, b)

    def test_simulation_regrid_interval(self):
        from repro.apps.nyx import NyxSimulation

        sim = NyxSimulation(coarse_shape=(24, 24, 24), nranks=2,
                            target_fine_density=0.03, max_grid_size=12,
                            seed=5, regrid_interval=3)
        structures = []
        for h in sim.run(4):
            structures.append(tuple(h[1].boxarray.boxes) if h.nlevels > 1 else ())
        # steps 0-2 share one regrid epoch, step 3 starts the next
        assert structures[0] == structures[1] == structures[2]

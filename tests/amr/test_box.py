"""Unit and property tests for repro.amr.box."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box, bounding_box


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
class TestConstruction:
    def test_from_shape_origin(self):
        b = Box.from_shape((4, 5, 6))
        assert b.lo == (0, 0, 0)
        assert b.hi == (3, 4, 5)
        assert b.shape == (4, 5, 6)
        assert b.size == 120

    def test_from_shape_with_lo(self):
        b = Box.from_shape((2, 2), lo=(10, -3))
        assert b.lo == (10, -3)
        assert b.hi == (11, -2)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            Box.from_shape((0, 4))

    def test_mismatched_dims_raise(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1, 1))

    def test_invalid_hi_raises(self):
        with pytest.raises(ValueError):
            Box((0, 0), (-5, 3))

    def test_empty_box(self):
        e = Box.empty(3)
        assert e.is_empty()
        assert e.size == 0
        assert e.shape == (0, 0, 0)

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            Box((), ())

    def test_frozen(self):
        b = Box.from_shape((2, 2))
        with pytest.raises(Exception):
            b.lo = (1, 1)  # type: ignore[misc]


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
class TestQueries:
    def test_contains_point(self):
        b = Box((1, 1), (3, 3))
        assert b.contains_point((1, 1))
        assert b.contains_point((3, 3))
        assert not b.contains_point((0, 2))
        assert not b.contains_point((4, 2))

    def test_contains_box(self):
        outer = Box.from_shape((10, 10, 10))
        inner = Box((2, 2, 2), (5, 5, 5))
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(Box.empty(3))

    def test_equality_and_hash(self):
        a = Box((0, 0), (3, 3))
        b = Box((0, 0), (3, 3))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Box((0, 0), (2, 3))


# ----------------------------------------------------------------------
# algebra
# ----------------------------------------------------------------------
class TestAlgebra:
    def test_intersection_overlapping(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 3), (8, 8))
        inter = a.intersection(b)
        assert inter == Box((3, 3), (5, 5))

    def test_intersection_disjoint_is_empty(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 5), (7, 7))
        assert a.intersection(b).is_empty()
        assert not a.intersects(b)

    def test_intersection_touching_edges(self):
        a = Box((0, 0), (2, 2))
        b = Box((2, 0), (4, 2))
        inter = a.intersection(b)
        assert inter == Box((2, 0), (2, 2))  # shared face of cells

    def test_bounding_union(self):
        a = Box((0, 0), (1, 1))
        b = Box((4, 4), (5, 5))
        assert a.bounding_union(b) == Box((0, 0), (5, 5))

    def test_shift(self):
        b = Box((0, 0, 0), (1, 1, 1)).shift((2, -1, 0))
        assert b == Box((2, -1, 0), (3, 0, 1))

    def test_grow(self):
        b = Box((2, 2), (4, 4)).grow(1)
        assert b == Box((1, 1), (5, 5))

    def test_refine_coarsen_roundtrip(self):
        b = Box((1, 2, 3), (4, 5, 6))
        assert b.refine(2).coarsen(2) == b

    def test_refine_shape(self):
        b = Box.from_shape((4, 4, 4))
        r = b.refine(2)
        assert r.shape == (8, 8, 8)
        assert r.lo == (0, 0, 0)

    def test_coarsen_negative_lo_floor(self):
        # AMReX coarsening floors toward -inf
        b = Box((-3, -3), (1, 1))
        c = b.coarsen(2)
        assert c.lo == (-2, -2)
        assert c.hi == (0, 0)

    def test_refine_invalid_ratio(self):
        with pytest.raises(ValueError):
            Box.from_shape((2, 2)).refine(0)

    def test_difference_no_overlap(self):
        a = Box((0, 0), (2, 2))
        b = Box((10, 10), (12, 12))
        assert a.difference(b) == [a]

    def test_difference_full_cover(self):
        a = Box((1, 1), (2, 2))
        b = Box((0, 0), (5, 5))
        assert a.difference(b) == []

    def test_difference_partial_covers_exactly(self):
        a = Box((0, 0, 0), (7, 7, 7))
        b = Box((2, 2, 2), (5, 5, 5))
        pieces = a.difference(b)
        # pieces must be disjoint, not overlap b, and together with b cover a
        total = sum(p.size for p in pieces)
        assert total == a.size - b.size
        for p in pieces:
            assert not p.intersects(b)
            assert a.contains(p)
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert not p.intersects(q)

    def test_split_covers_and_respects_max(self):
        b = Box.from_shape((10, 7, 5))
        parts = b.split((4, 4, 4))
        assert sum(p.size for p in parts) == b.size
        for p in parts:
            assert all(s <= 4 for s in p.shape)
            assert b.contains(p)

    def test_slices_extract(self):
        arr = np.arange(6 * 6).reshape(6, 6)
        b = Box((2, 3), (4, 5))
        sub = arr[b.slices()]
        assert sub.shape == (3, 3)
        assert sub[0, 0] == arr[2, 3]

    def test_slices_with_origin(self):
        arr = np.arange(6 * 6).reshape(6, 6)
        b = Box((12, 13), (13, 14))
        sub = arr[b.slices(origin=(10, 10))]
        assert sub.shape == (2, 2)
        assert sub[0, 0] == arr[2, 3]

    def test_cells_iteration(self):
        b = Box((0, 0), (1, 2))
        cells = list(b.cells())
        assert len(cells) == b.size
        assert (0, 0) in cells and (1, 2) in cells

    def test_bounding_box_helper(self):
        boxes = [Box((0, 0), (1, 1)), Box((5, 2), (6, 3))]
        assert bounding_box(boxes) == Box((0, 0), (6, 3))
        with pytest.raises(ValueError):
            bounding_box([])


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
box_coords = st.integers(min_value=-20, max_value=20)


@st.composite
def boxes_3d(draw, max_extent=8):
    lo = tuple(draw(box_coords) for _ in range(3))
    shape = tuple(draw(st.integers(1, max_extent)) for _ in range(3))
    return Box.from_shape(shape, lo=lo)


class TestBoxProperties:
    @given(boxes_3d(), boxes_3d())
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(boxes_3d(), boxes_3d())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if not inter.is_empty():
            assert a.contains(inter)
            assert b.contains(inter)

    @given(boxes_3d())
    def test_intersection_with_self_is_identity(self, a):
        assert a.intersection(a) == a

    @given(boxes_3d(), st.integers(2, 4))
    def test_refine_coarsen_roundtrip(self, a, ratio):
        assert a.refine(ratio).coarsen(ratio) == a

    @given(boxes_3d(), st.integers(2, 4))
    def test_refine_scales_size(self, a, ratio):
        assert a.refine(ratio).size == a.size * ratio ** 3

    @given(boxes_3d(), boxes_3d())
    def test_difference_partition(self, a, b):
        pieces = a.difference(b)
        overlap = a.intersection(b)
        assert sum(p.size for p in pieces) == a.size - overlap.size
        for p in pieces:
            assert not p.intersects(b)

    @given(boxes_3d(max_extent=6), st.integers(2, 5))
    def test_split_partition(self, a, m):
        parts = a.split(m)
        assert sum(p.size for p in parts) == a.size
        for i, p in enumerate(parts):
            assert all(s <= m for s in p.shape)
            for q in parts[i + 1:]:
                assert not p.intersects(q)

    @given(boxes_3d(), boxes_3d(), boxes_3d())
    def test_bounding_union_contains_all(self, a, b, c):
        u = a.bounding_union(b).bounding_union(c)
        for x in (a, b, c):
            assert u.contains(x)

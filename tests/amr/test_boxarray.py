"""Tests for repro.amr.boxarray."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray


@pytest.fixture
def simple_array():
    return BoxArray([
        Box((0, 0, 0), (3, 3, 3)),
        Box((4, 0, 0), (7, 3, 3)),
        Box((0, 4, 0), (3, 7, 3)),
    ])


class TestBasics:
    def test_len_and_iteration(self, simple_array):
        assert len(simple_array) == 3
        assert sum(1 for _ in simple_array) == 3

    def test_empty_boxes_dropped(self):
        ba = BoxArray([Box.empty(3), Box.from_shape((2, 2, 2))])
        assert len(ba) == 1

    def test_mixed_dim_rejected(self):
        with pytest.raises(ValueError):
            BoxArray([Box.from_shape((2, 2)), Box.from_shape((2, 2, 2))])

    def test_num_cells(self, simple_array):
        assert simple_array.num_cells == 3 * 64

    def test_minimal_box(self, simple_array):
        assert simple_array.minimal_box() == Box((0, 0, 0), (7, 7, 3))

    def test_is_disjoint(self, simple_array):
        assert simple_array.is_disjoint()
        overlapping = BoxArray([Box((0, 0, 0), (3, 3, 3)), Box((2, 2, 2), (5, 5, 5))])
        assert not overlapping.is_disjoint()

    def test_equality(self, simple_array):
        same = BoxArray(list(simple_array.boxes))
        assert simple_array == same


class TestTransforms:
    def test_refine_coarsen(self, simple_array):
        refined = simple_array.refine(2)
        assert refined.num_cells == simple_array.num_cells * 8
        assert refined.coarsen(2) == simple_array

    def test_max_size(self):
        ba = BoxArray([Box.from_shape((16, 16, 16))])
        chopped = ba.max_size(8)
        assert len(chopped) == 8
        assert chopped.num_cells == 16 ** 3

    def test_grow(self, simple_array):
        grown = simple_array.grow(1)
        assert all(g.size > b.size for g, b in zip(grown, simple_array))


class TestGeometry:
    def test_intersections(self, simple_array):
        probe = Box((2, 2, 0), (5, 5, 3))
        hits = simple_array.intersections(probe)
        assert len(hits) == 3
        covered = sum(b.size for _, b in hits)
        assert covered == probe.size - 2 * 2 * 4  # corner (4..5,4..5) uncovered

    def test_complement_in_full_cover(self):
        ba = BoxArray([Box.from_shape((4, 4, 4))])
        assert ba.complement_in(Box.from_shape((4, 4, 4))) == []

    def test_complement_in_partial(self, simple_array):
        domain = Box.from_shape((8, 8, 4))
        rest = simple_array.complement_in(domain)
        covered = simple_array.num_cells
        assert sum(b.size for b in rest) == domain.size - covered
        for piece in rest:
            assert not simple_array.intersects(piece)

    def test_contains_box(self, simple_array):
        assert simple_array.contains_box(Box((0, 0, 0), (7, 3, 3)))
        assert not simple_array.contains_box(Box((0, 0, 0), (7, 7, 3)))

    def test_coverage_mask(self, simple_array):
        domain = Box.from_shape((8, 8, 4))
        mask = simple_array.coverage_mask(domain)
        assert mask.shape == domain.shape
        assert mask.sum() == simple_array.num_cells

    def test_covered_fraction(self, simple_array):
        domain = Box.from_shape((8, 8, 4))
        frac = simple_array.covered_fraction(domain)
        assert frac == pytest.approx(simple_array.num_cells / domain.size)


class TestDecompose:
    def test_decompose_covers_domain(self):
        domain = Box.from_shape((20, 12, 8))
        ba = BoxArray.decompose(domain, 8)
        assert ba.num_cells == domain.size
        assert ba.is_disjoint()
        for b in ba:
            assert all(s <= 8 for s in b.shape)

    @given(st.tuples(st.integers(4, 24), st.integers(4, 24), st.integers(4, 24)),
           st.integers(3, 9))
    def test_decompose_property(self, shape, max_size):
        domain = Box.from_shape(shape)
        ba = BoxArray.decompose(domain, max_size)
        assert ba.num_cells == domain.size
        assert ba.is_disjoint()

    @given(st.tuples(st.integers(4, 16), st.integers(4, 16), st.integers(4, 16)),
           st.integers(3, 8), st.integers(2, 6))
    def test_complement_partition_property(self, shape, max_size, probe_side):
        """complement + intersections exactly partition any probe box."""
        domain = Box.from_shape(shape)
        ba = BoxArray.decompose(domain, max_size)
        # drop every other box so there is something uncovered
        ba = BoxArray(list(ba.boxes)[::2])
        probe = Box.from_shape((probe_side,) * 3, lo=(1, 1, 1))
        inter = sum(b.size for _, b in ba.intersections(probe))
        comp = sum(b.size for b in ba.complement_in(probe))
        assert inter + comp == probe.size

"""Tests for repro.amr.multifab and repro.amr.distribution."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.multifab import FArrayBox, MultiFab


class TestFArrayBox:
    def test_allocation_shape(self):
        fab = FArrayBox(Box.from_shape((4, 5, 6)), ncomp=3)
        assert fab.data.shape == (3, 4, 5, 6)
        assert fab.nbytes == 3 * 4 * 5 * 6 * 8

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            FArrayBox(Box.empty(3))

    def test_bad_ncomp(self):
        with pytest.raises(ValueError):
            FArrayBox(Box.from_shape((2, 2, 2)), ncomp=0)

    def test_component_view_is_writable(self):
        fab = FArrayBox(Box.from_shape((2, 2, 2)), ncomp=2)
        fab.component(1)[...] = 5.0
        assert np.all(fab.data[1] == 5.0)
        assert np.all(fab.data[0] == 0.0)

    def test_set_component_shape_check(self):
        fab = FArrayBox(Box.from_shape((2, 2, 2)))
        with pytest.raises(ValueError):
            fab.set_component(0, np.zeros((3, 3, 3)))

    def test_linearize_order(self):
        """Components are contiguous slabs (box-major AMReX layout)."""
        fab = FArrayBox(Box.from_shape((2, 2, 2)), ncomp=2)
        fab.set_component(0, np.full((2, 2, 2), 1.0))
        fab.set_component(1, np.full((2, 2, 2), 2.0))
        flat = fab.linearize()
        assert np.all(flat[:8] == 1.0)
        assert np.all(flat[8:] == 2.0)

    def test_copy_is_deep(self):
        fab = FArrayBox(Box.from_shape((2, 2, 2)))
        clone = fab.copy()
        clone.data[...] = 7.0
        assert np.all(fab.data == 0.0)

    def test_min_max(self):
        fab = FArrayBox(Box.from_shape((2, 2, 2)), ncomp=2)
        fab.set_component(1, np.arange(8, dtype=float).reshape(2, 2, 2))
        assert fab.max() == 7.0
        assert fab.min(0) == 0.0
        assert fab.max(1) == 7.0


class TestDistributionMapping:
    def test_round_robin(self):
        dm = DistributionMapping.round_robin(7, 3)
        assert dm.counts_per_rank() == [3, 2, 2]
        assert dm.boxes_on_rank(0) == [0, 3, 6]

    def test_knapsack_balances(self):
        sizes = [100, 1, 1, 1, 1, 100, 50, 50]
        dm = DistributionMapping.knapsack(sizes, 2)
        loads = dm.load_per_rank(sizes)
        assert abs(loads[0] - loads[1]) <= 50
        assert sum(loads) == sum(sizes)

    def test_imbalance_metric(self):
        dm = DistributionMapping([0, 1], 2)
        assert dm.imbalance([10, 10]) == pytest.approx(1.0)
        assert dm.imbalance([30, 10]) == pytest.approx(1.5)

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            DistributionMapping([0, 5], 2)
        with pytest.raises(ValueError):
            DistributionMapping.round_robin(3, 0)

    def test_boxes_on_rank_bounds(self):
        dm = DistributionMapping.round_robin(4, 2)
        with pytest.raises(ValueError):
            dm.boxes_on_rank(2)


class TestMultiFab:
    @pytest.fixture
    def mf(self):
        ba = BoxArray.decompose(Box.from_shape((8, 8, 8)), 4)
        dm = DistributionMapping.round_robin(len(ba), 2)
        return MultiFab(ba, ["density", "temperature"], dm)

    def test_structure(self, mf):
        assert mf.ncomp == 2
        assert mf.nboxes == 8
        assert mf.component_index("temperature") == 1
        with pytest.raises(KeyError):
            mf.component_index("missing")

    def test_duplicate_component_names_rejected(self):
        ba = BoxArray.decompose(Box.from_shape((4, 4, 4)), 4)
        with pytest.raises(ValueError):
            MultiFab(ba, ["a", "a"])

    def test_global_roundtrip(self, mf):
        domain = Box.from_shape((8, 8, 8))
        rng = np.random.default_rng(0)
        field = rng.normal(size=domain.shape)
        mf.set_from_global("density", field, domain)
        back = mf.to_global("density", domain)
        np.testing.assert_array_equal(back, field)

    def test_fill_with_function(self, mf):
        domain = Box.from_shape((8, 8, 8))
        mf.fill("density", lambda i, j, k: i + 10 * j + 100 * k)
        back = mf.to_global("density", domain)
        i, j, k = np.meshgrid(*[np.arange(8)] * 3, indexing="ij")
        np.testing.assert_array_equal(back, i + 10 * j + 100 * k)

    def test_value_range(self, mf):
        domain = Box.from_shape((8, 8, 8))
        mf.set_from_global("density", np.linspace(-2, 6, 512).reshape(8, 8, 8), domain)
        assert mf.min("density") == pytest.approx(-2)
        assert mf.max("density") == pytest.approx(6)
        assert mf.value_range("density") == pytest.approx(8)

    def test_rank_nbytes_sums_to_total(self, mf):
        total = sum(mf.rank_nbytes(r) for r in range(mf.distribution.nranks))
        assert total == mf.nbytes

    def test_copy_is_deep(self, mf):
        mf.fill("density", lambda i, j, k: i)
        clone = mf.copy()
        clone[0].data[...] = -99.0
        assert mf[0].data.max() >= 0

    def test_distribution_length_mismatch(self):
        ba = BoxArray.decompose(Box.from_shape((8, 8, 8)), 4)
        dm = DistributionMapping.round_robin(3, 2)
        with pytest.raises(ValueError):
            MultiFab(ba, ["x"], dm)

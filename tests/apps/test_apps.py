"""Tests for the synthetic Nyx / WarpX applications and the run presets."""

import numpy as np
import pytest

from repro.amr.upsample import flatten_to_uniform
from repro.apps import (
    RUN_PRESETS,
    NyxSimulation,
    SimulationDriver,
    WarpXSimulation,
    build_run,
    nyx_run,
    warpx_run,
)
from repro.apps.base import build_two_level_hierarchy
from repro.apps.fields import (
    add_halos,
    gaussian_random_field,
    lognormal_field,
    small_scale_detail,
    wakefield_component,
)


class TestFieldGenerators:
    def test_grf_statistics(self):
        f = gaussian_random_field((32, 32, 32), slope=3.0, seed=0)
        assert f.shape == (32, 32, 32)
        assert abs(f.mean()) < 1e-10
        assert f.std() == pytest.approx(1.0, rel=1e-6)

    def test_grf_reproducible(self):
        a = gaussian_random_field((16, 16, 16), seed=5)
        b = gaussian_random_field((16, 16, 16), seed=5)
        np.testing.assert_array_equal(a, b)
        c = gaussian_random_field((16, 16, 16), seed=6)
        assert not np.array_equal(a, c)

    def test_grf_slope_controls_smoothness(self):
        rough = gaussian_random_field((32, 32, 32), slope=1.0, seed=1)
        smooth = gaussian_random_field((32, 32, 32), slope=4.0, seed=1)
        # smoother field has smaller mean cell-to-cell increments
        def roughness(f):
            return np.mean(np.abs(np.diff(f, axis=0)))
        assert roughness(smooth) < roughness(rough)

    def test_grf_invalid_shape(self):
        with pytest.raises(ValueError):
            gaussian_random_field((1, 8, 8))

    def test_lognormal_positive(self):
        f = lognormal_field((16, 16, 16), sigma=1.5, seed=2)
        assert np.all(f > 0)

    def test_add_halos_increases_peaks(self):
        base = np.ones((24, 24, 24))
        spiked = add_halos(base, n_halos=5, amplitude=10.0, seed=3)
        assert spiked.max() > base.max() + 5
        assert spiked.shape == base.shape

    def test_small_scale_detail_band_limited(self):
        d = small_scale_detail((32, 32, 32), amplitude=2.0, seed=4)
        assert d.shape == (32, 32, 32)
        assert d.std() == pytest.approx(2.0, rel=0.2)

    def test_wakefield_components_differ(self):
        ex = wakefield_component((16, 16, 64), 0, seed=0)
        ey = wakefield_component((16, 16, 64), 1, seed=0)
        assert ex.shape == (16, 16, 64)
        assert not np.allclose(ex, ey)

    def test_wakefield_pulse_localised(self):
        f = wakefield_component((8, 8, 128), 0, pulse_centre=0.25, noise=0.0)
        energy = np.sum(f ** 2, axis=(0, 1))
        assert np.argmax(energy) < 64  # pulse sits in the first half


class TestBuildHierarchy:
    def test_density_target_respected(self):
        fields = {"rho": lognormal_field((32, 32, 32), sigma=1.2, seed=1)}
        h = build_two_level_hierarchy(fields, "rho", target_fine_density=0.03,
                                      nranks=2, max_grid_size=16, blocking_factor=4)
        assert h.nlevels == 2
        assert h[1].density() < 0.15  # clustered boxes over-cover only mildly
        assert h.is_properly_nested()

    def test_validation(self):
        fields = {"rho": np.ones((8, 8, 8))}
        with pytest.raises(KeyError):
            build_two_level_hierarchy(fields, "missing", 0.05)
        with pytest.raises(ValueError):
            build_two_level_hierarchy(fields, "rho", 1.5)
        with pytest.raises(ValueError):
            build_two_level_hierarchy({}, "rho", 0.05)
        with pytest.raises(ValueError):
            build_two_level_hierarchy({"a": np.ones((4, 4, 4)), "b": np.ones((5, 5, 5))},
                                      "a", 0.05)

    def test_fine_level_has_subgrid_detail(self):
        fields = {"rho": lognormal_field((32, 32, 32), sigma=1.0, seed=3)}
        h = build_two_level_hierarchy(fields, "rho", target_fine_density=0.05,
                                      detail_amplitude=0.2, nranks=2, seed=3)
        flat = flatten_to_uniform(h, "rho")
        # the flattened fine data is not a pure piecewise-constant upsample:
        # within a refined coarse cell the two fine cells differ somewhere
        diffs = np.abs(flat[0::2, :, :] - flat[1::2, :, :])
        assert diffs.max() > 0


class TestNyx:
    @pytest.fixture(scope="class")
    def sim(self):
        return nyx_run(coarse_shape=(32, 32, 32), nranks=2, target_fine_density=0.03, seed=7)

    def test_fields_present(self, sim):
        h = sim.hierarchy
        assert h.component_names == NyxSimulation.field_names
        assert h.nlevels == 2

    def test_density_positive_and_skewed(self, sim):
        h = sim.hierarchy
        rho = h[0].multifab.to_global("baryon_density", h[0].domain)
        assert np.all(rho > 0)
        assert rho.max() / np.median(rho) > 10  # long high-density tail

    def test_fine_density_near_target(self, sim):
        h = sim.hierarchy
        assert 0.005 < h[1].density() < 0.12

    def test_temperature_correlates_with_density(self, sim):
        h = sim.hierarchy
        rho = h[0].multifab.to_global("baryon_density", h[0].domain).ravel()
        temp = h[0].multifab.to_global("temperature", h[0].domain).ravel()
        corr = np.corrcoef(np.log(rho), np.log(temp))[0, 1]
        assert corr > 0.5

    def test_advance_changes_fields_and_grids(self, sim):
        # use a fresh instance to avoid mutating the class-scoped fixture
        local = nyx_run(coarse_shape=(32, 32, 32), nranks=2, seed=9)
        before = local.hierarchy[0].multifab.to_global("baryon_density", local.hierarchy[0].domain)
        local.advance()
        after = local.hierarchy[0].multifab.to_global("baryon_density", local.hierarchy[0].domain)
        assert local.step == 1
        assert not np.allclose(before, after)

    def test_run_generator(self):
        local = nyx_run(coarse_shape=(24, 24, 24), nranks=2, seed=3)
        hierarchies = list(local.run(2))
        assert len(hierarchies) == 2
        assert hierarchies[0].step == 0


class TestWarpX:
    @pytest.fixture(scope="class")
    def sim(self):
        return warpx_run(coarse_shape=(16, 16, 128), nranks=2, target_fine_density=0.03, seed=5)

    def test_fields_present(self, sim):
        h = sim.hierarchy
        assert h.component_names == WarpXSimulation.field_names

    def test_elongated_domain(self, sim):
        h = sim.hierarchy
        shape = h[0].domain.shape
        assert shape[2] > shape[0]

    def test_smoothness_vs_nyx(self, sim):
        """WarpX data must be much smoother (more compressible) than Nyx data."""
        from repro.compress import SZLRCompressor

        warpx_field = sim.hierarchy[0].multifab.to_global("Ex", sim.hierarchy[0].domain)
        nyx = nyx_run(coarse_shape=(16, 16, 128), nranks=2, seed=5)
        nyx_field = nyx.hierarchy[0].multifab.to_global("baryon_density", nyx.hierarchy[0].domain)
        cr_warpx = SZLRCompressor(1e-3).compress(warpx_field).compression_ratio
        cr_nyx = SZLRCompressor(1e-3).compress(nyx_field).compression_ratio
        assert cr_warpx > 2 * cr_nyx

    def test_pulse_moves(self):
        local = warpx_run(coarse_shape=(16, 16, 128), nranks=2, seed=1)
        h0 = local.hierarchy
        centre0 = np.mean([b.lo[2] for b in h0[1].boxarray]) if h0.nlevels > 1 else None
        for _ in range(3):
            local.advance()
        h1 = local.hierarchy
        centre1 = np.mean([b.lo[2] for b in h1[1].boxarray]) if h1.nlevels > 1 else None
        assert centre0 is not None and centre1 is not None
        assert centre1 != centre0


class TestPresetsAndDriver:
    def test_all_presets_exist(self):
        assert set(RUN_PRESETS) == {"warpx_1", "warpx_2", "warpx_3", "nyx_1", "nyx_2", "nyx_3"}

    def test_preset_metadata_matches_table1(self):
        p = RUN_PRESETS["warpx_3"]
        assert p.paper_coarse_shape == (1024, 1024, 8192)
        assert p.paper_nranks == 4096
        assert p.paper_data_gb == pytest.approx(624.0)
        assert p.error_bound_amric == pytest.approx(1e-4)
        n = RUN_PRESETS["nyx_1"]
        assert n.error_bound_amrex == pytest.approx(1e-2)
        assert n.paper_fine_density == pytest.approx(0.014)

    def test_build_run_by_name_and_unknown(self):
        sim = build_run("nyx_1", coarse_shape=(16, 16, 16))
        assert isinstance(sim, NyxSimulation)
        sim2 = build_run("warpx_1", coarse_shape=(8, 8, 64))
        assert isinstance(sim2, WarpXSimulation)
        with pytest.raises(KeyError):
            build_run("nyx_99")

    def test_paper_cells_per_level(self):
        p = RUN_PRESETS["nyx_1"]
        coarse, fine = p.paper_cells_per_level
        assert coarse == 256 ** 3
        assert fine == pytest.approx(512 ** 3 * 0.014, rel=1e-6)

    def test_driver_without_writer(self):
        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2, seed=1)
        driver = SimulationDriver(sim, writer=None)
        records = driver.run(2)
        assert records == []
        assert sim.step == 2

    def test_driver_with_writer(self, tmp_path):
        class DummyWriter:
            def __init__(self):
                self.calls = 0

            def write_plotfile(self, hierarchy, path):
                self.calls += 1
                return {"nbytes": hierarchy.nbytes}

        sim = nyx_run(coarse_shape=(16, 16, 16), nranks=2, seed=1)
        writer = DummyWriter()
        driver = SimulationDriver(sim, writer=writer, output_dir=str(tmp_path), plot_interval=2)
        records = driver.run(4)
        assert writer.calls == 2
        assert len(records) == 2
        assert records[0].report["nbytes"] > 0

"""End-to-end tests for the SZ-family compressors and the ZFP-like codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    SZ1DCompressor,
    SZInterpCompressor,
    SZLRCompressor,
    ZFPLikeCompressor,
    psnr,
)
from repro.compress.errorbound import ErrorBound
from repro.testing import make_rough, make_smooth

ALL_COMPRESSORS = [SZLRCompressor, SZInterpCompressor, SZ1DCompressor, ZFPLikeCompressor]


@pytest.mark.parametrize("cls", ALL_COMPRESSORS)
class TestCommonContract:
    """Every compressor honours the same contract."""

    def test_reconstruction_matches_decompress(self, cls, smooth_field):
        comp = cls(1e-3)
        buf, recon = comp.compress_with_reconstruction(smooth_field)
        decoded = comp.decompress(buf)
        np.testing.assert_array_equal(recon, decoded)

    def test_error_bound_holds(self, cls, smooth_field):
        comp = cls(1e-3)
        buf, recon = comp.compress_with_reconstruction(smooth_field)
        abs_eb = buf.meta["abs_eb"]
        assert np.max(np.abs(recon - smooth_field)) <= abs_eb * (1 + 1e-9)

    def test_error_bound_holds_rough(self, cls, rough_field):
        comp = cls(1e-2)
        buf, recon = comp.compress_with_reconstruction(rough_field)
        abs_eb = buf.meta["abs_eb"]
        assert np.max(np.abs(recon - rough_field)) <= abs_eb * (1 + 1e-9)

    def test_absolute_bound_mode(self, cls, smooth_field):
        comp = cls(ErrorBound.absolute(0.01))
        buf, recon = comp.compress_with_reconstruction(smooth_field)
        assert np.max(np.abs(recon - smooth_field)) <= 0.01 * (1 + 1e-9)

    def test_achieves_compression(self, cls, smooth_field):
        comp = cls(1e-3)
        buf = comp.compress(smooth_field)
        assert buf.compression_ratio > 2.0

    def test_empty_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(1e-3).compress(np.zeros((0, 3)))

    def test_constant_field(self, cls):
        data = np.full((12, 12, 12), 7.5)
        comp = cls(1e-3)
        buf, recon = comp.compress_with_reconstruction(data)
        assert np.max(np.abs(recon - data)) <= buf.meta["abs_eb"]
        assert buf.compression_ratio > 20

    def test_float32_input_roundtrip(self, cls):
        data = make_smooth((14, 14, 14)).astype(np.float32)
        comp = cls(1e-3)
        buf, recon = comp.compress_with_reconstruction(data)
        decoded = comp.decompress(buf)
        assert decoded.dtype == np.float32
        assert decoded.shape == data.shape

    def test_buffer_metadata(self, cls, smooth_field):
        buf = cls(1e-3).compress(smooth_field)
        assert buf.original_nbytes == smooth_field.nbytes
        assert buf.codec == cls.name
        assert buf.bitrate > 0


class TestErrorBoundScaling:
    @pytest.mark.parametrize("cls", [SZLRCompressor, SZInterpCompressor, SZ1DCompressor])
    def test_smaller_bound_higher_psnr_lower_cr(self, cls, smooth_field):
        loose = cls(1e-2)
        tight = cls(1e-4)
        b1, r1 = loose.compress_with_reconstruction(smooth_field)
        b2, r2 = tight.compress_with_reconstruction(smooth_field)
        assert psnr(smooth_field, r2) > psnr(smooth_field, r1)
        assert b2.compression_ratio < b1.compression_ratio


class TestSZLRSpecifics:
    def test_non_multiple_shapes(self):
        """Shapes with residue regions (e.g. 8 with block 6) round-trip exactly."""
        data = make_smooth((8, 8, 8))
        comp = SZLRCompressor(1e-3, block_size=6)
        buf, recon = comp.compress_with_reconstruction(data)
        np.testing.assert_array_equal(comp.decompress(buf), recon)

    def test_various_block_sizes(self):
        data = make_smooth((16, 16, 16))
        for bs in (4, 6, 8):
            comp = SZLRCompressor(1e-3, block_size=bs)
            buf, recon = comp.compress_with_reconstruction(data)
            assert np.max(np.abs(recon - data)) <= buf.meta["abs_eb"] * (1 + 1e-9)
            np.testing.assert_array_equal(comp.decompress(buf), recon)

    def test_anisotropic_block_size(self):
        data = make_smooth((12, 10, 8))
        comp = SZLRCompressor(1e-3, block_size=(6, 5, 4))
        buf, recon = comp.compress_with_reconstruction(data)
        np.testing.assert_array_equal(comp.decompress(buf), recon)

    def test_block_size_dim_mismatch(self):
        with pytest.raises(ValueError):
            SZLRCompressor(1e-3, block_size=(6, 6)).compress(make_smooth((8, 8, 8)))

    def test_2d_and_1d_inputs(self):
        for shape in [(50,), (20, 30)]:
            data = make_smooth(shape)
            comp = SZLRCompressor(1e-3)
            buf, recon = comp.compress_with_reconstruction(data)
            np.testing.assert_array_equal(comp.decompress(buf), recon)
            assert recon.shape == shape

    def test_compress_many_shared_roundtrip(self):
        arrays = [make_smooth((8, 8, 8), seed=s) for s in range(4)]
        comp = SZLRCompressor(1e-3)
        buf, recons = comp.compress_many_with_reconstruction(arrays, shared_encoding=True)
        decs = comp.decompress_many(buf)
        assert len(decs) == 4
        for r, d in zip(recons, decs):
            np.testing.assert_array_equal(r, d)

    def test_compress_many_individual_roundtrip(self):
        arrays = [make_smooth((8, 8, 8), seed=s) for s in range(3)]
        comp = SZLRCompressor(1e-3)
        buf, recons = comp.compress_many_with_reconstruction(arrays, shared_encoding=False)
        decs = comp.decompress_many(buf)
        for r, d in zip(recons, decs):
            np.testing.assert_array_equal(r, d)

    def test_shared_encoding_smaller_for_many_small_blocks(self):
        """Unit SLE's premise: shared table < per-block tables for many small blocks."""
        rng = np.random.default_rng(0)
        base = make_rough((32, 32, 32), seed=5)
        arrays = [base[i:i + 8, j:j + 8, k:k + 8].copy()
                  for i in range(0, 32, 8) for j in range(0, 32, 8) for k in range(0, 32, 8)]
        comp = SZLRCompressor(1e-3)
        vrange = float(base.max() - base.min())
        shared = comp.compress_many(arrays, shared_encoding=True, value_range=vrange)
        individual = comp.compress_many(arrays, shared_encoding=False, value_range=vrange)
        assert shared.compressed_nbytes < individual.compressed_nbytes

    def test_compress_many_error_bound_uses_global_range(self):
        arrays = [np.full((6, 6, 6), 0.0), np.full((6, 6, 6), 100.0)]
        comp = SZLRCompressor(1e-3)
        buf, recons = comp.compress_many_with_reconstruction(arrays)
        assert buf.meta["abs_eb"] == pytest.approx(0.1)

    def test_decompress_single_on_multi_buffer_raises(self):
        comp = SZLRCompressor(1e-3)
        buf = comp.compress_many([make_smooth((6, 6, 6)), make_smooth((6, 6, 6), seed=2)])
        with pytest.raises(ValueError):
            comp.decompress(buf)

    def test_empty_array_list_rejected(self):
        with pytest.raises(ValueError):
            SZLRCompressor(1e-3).compress_many([])


class TestSZInterpSpecifics:
    def test_invalid_anchor_stride(self):
        with pytest.raises(ValueError):
            SZInterpCompressor(1e-3, anchor_stride=3)

    def test_small_arrays(self):
        for shape in [(5, 5, 5), (3, 17, 2), (33,)]:
            data = make_smooth(shape)
            comp = SZInterpCompressor(1e-3, anchor_stride=8)
            buf, recon = comp.compress_with_reconstruction(data)
            np.testing.assert_array_equal(comp.decompress(buf), recon)
            assert np.max(np.abs(recon - data)) <= buf.meta["abs_eb"] * (1 + 1e-9)

    def test_linear_mode(self):
        data = make_smooth((20, 20, 20))
        comp = SZInterpCompressor(1e-3, cubic=False)
        buf, recon = comp.compress_with_reconstruction(data)
        np.testing.assert_array_equal(comp.decompress(buf), recon)

    def test_interp_beats_lr_on_smooth_global_data(self):
        """The paper's WarpX observation: global interpolation wins on smooth fields."""
        data = make_smooth((48, 48, 48), noise=0.0)
        interp = SZInterpCompressor(1e-4).compress(data)
        lr = SZLRCompressor(1e-4).compress(data)
        assert interp.compression_ratio > lr.compression_ratio


class TestSZ1DSpecifics:
    def test_chunked_roundtrip_and_overhead(self):
        data = make_rough((16, 16, 16))
        comp = SZ1DCompressor(1e-3)
        whole = comp.compress(data)
        buffers, recon = comp.compress_chunked(data, 512)
        assert len(buffers) == int(np.ceil(data.size / 512))
        assert np.max(np.abs(recon - data)) <= max(b.meta["abs_eb"] for b in buffers) * (1 + 1e-9)
        chunked_total = sum(b.compressed_nbytes for b in buffers)
        # the small-chunk penalty the paper describes: chunked is strictly larger
        assert chunked_total > whole.compressed_nbytes

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            SZ1DCompressor(1e-3).compress_chunked(np.zeros(10), 1)

    def test_nd_input_flattened(self):
        data = make_smooth((6, 7, 8))
        comp = SZ1DCompressor(1e-3)
        buf, recon = comp.compress_with_reconstruction(data)
        assert recon.shape == data.shape
        np.testing.assert_array_equal(comp.decompress(buf), recon)


class TestZFPLikeSpecifics:
    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            ZFPLikeCompressor(1e-3, block_size=1)

    def test_2d_roundtrip(self):
        data = make_smooth((19, 23))
        comp = ZFPLikeCompressor(1e-3)
        buf, recon = comp.compress_with_reconstruction(data)
        np.testing.assert_array_equal(comp.decompress(buf), recon)


class TestPropertyBased:
    @given(st.integers(0, 10000), st.sampled_from([1e-2, 1e-3, 1e-4]))
    @settings(max_examples=10)
    def test_szlr_bound_property(self, seed, eb):
        data = make_rough((10, 11, 9), seed=seed)
        comp = SZLRCompressor(eb)
        buf, recon = comp.compress_with_reconstruction(data)
        assert np.max(np.abs(recon - data)) <= buf.meta["abs_eb"] * (1 + 1e-9)
        np.testing.assert_array_equal(comp.decompress(buf), recon)

    @given(st.integers(0, 10000), st.sampled_from([1e-2, 1e-3]))
    @settings(max_examples=10)
    def test_szinterp_bound_property(self, seed, eb):
        data = make_rough((9, 13, 10), seed=seed)
        comp = SZInterpCompressor(eb, anchor_stride=8)
        buf, recon = comp.compress_with_reconstruction(data)
        assert np.max(np.abs(recon - data)) <= buf.meta["abs_eb"] * (1 + 1e-9)
        np.testing.assert_array_equal(comp.decompress(buf), recon)

"""Tests for compression quality metrics."""

import numpy as np
import pytest

from repro.compress.metrics import (
    CompressionStats,
    bitrate,
    compression_ratio,
    max_abs_error,
    mse,
    nrmse,
    psnr,
)


class TestPointwiseMetrics:
    def test_identical_arrays(self):
        a = np.linspace(0, 1, 100)
        assert mse(a, a) == 0.0
        assert max_abs_error(a, a) == 0.0
        assert psnr(a, a) == float("inf")
        assert nrmse(a, a) == 0.0

    def test_mse_known_value(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(a, b) == pytest.approx(1.0)

    def test_max_abs_error(self):
        a = np.zeros(3)
        b = np.array([0.1, -0.5, 0.2])
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_psnr_matches_paper_formula(self):
        rng = np.random.default_rng(0)
        orig = rng.uniform(0, 10, size=1000)
        recon = orig + rng.uniform(-0.01, 0.01, size=1000)
        r = orig.max() - orig.min()
        expected = 20 * np.log10(r) - 10 * np.log10(np.mean((orig - recon) ** 2))
        assert psnr(orig, recon) == pytest.approx(expected)

    def test_psnr_increases_with_accuracy(self):
        rng = np.random.default_rng(1)
        orig = rng.normal(size=500)
        noisy = orig + 0.1 * rng.normal(size=500)
        cleaner = orig + 0.01 * rng.normal(size=500)
        assert psnr(orig, cleaner) > psnr(orig, noisy)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(0), np.zeros(0))

    def test_constant_field_psnr_finite(self):
        orig = np.full(100, 5.0)
        recon = orig + 0.001
        assert np.isfinite(psnr(orig, recon))


class TestRatioMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == pytest.approx(10.0)
        assert compression_ratio(100, 0) == float("inf")

    def test_bitrate(self):
        assert bitrate(1000, 1000) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            bitrate(0, 10)


class TestCompressionStats:
    def test_measure(self):
        rng = np.random.default_rng(2)
        orig = rng.normal(size=(10, 10))
        recon = orig + 1e-4
        stats = CompressionStats.measure("sz_lr", 1e-3, orig, recon, 200, chunk_size=64)
        assert stats.compression_ratio == pytest.approx(orig.nbytes / 200)
        assert stats.max_error == pytest.approx(1e-4)
        assert stats.extra["chunk_size"] == 64
        row = stats.as_row()
        assert row["method"] == "sz_lr"
        assert "compression_ratio" in row and "psnr" in row

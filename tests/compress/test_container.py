"""The unified codec container and the codec registry."""

import numpy as np
import pytest

from repro.compress import container as ctn
from repro.compress import registry
from repro.compress.errorbound import ErrorBound
from repro.compress.huffman import HuffmanCodec
from repro.testing import make_smooth

ALL_CODECS = ["sz_lr", "sz_interp", "sz_1d", "zfp_like"]


def _codec(name):
    return registry.create_codec(name, ErrorBound.relative(1e-3))


class TestContainerFraming:
    def test_pack_unpack_roundtrip(self):
        payload = ctn.pack_container("demo", {"alpha": 1.5},
                                     {"body": b"abc", "side": b""})
        cont = ctn.unpack_container(payload)
        assert cont.codec == "demo"
        assert cont.meta["alpha"] == 1.5
        assert cont.sections == {"body": b"abc", "side": b""}

    def test_meta_is_reserved(self):
        with pytest.raises(ValueError):
            ctn.pack_container("demo", {}, {"meta": b"x"})

    def test_wrong_codec_rejected(self):
        payload = ctn.pack_container("demo", {}, {"body": b"abc"})
        with pytest.raises(ValueError, match="codec"):
            ctn.unpack_container(payload, expect_codec="other")

    def test_bad_magic_rejected(self):
        payload = ctn.pack_container("demo", {}, {"body": b"abc"})
        with pytest.raises(ValueError, match="magic"):
            ctn.unpack_container(b"XXXX" + payload[4:])

    @pytest.mark.parametrize("cut", [0, 3, 7, -11, -1])
    def test_truncation_rejected(self, cut):
        payload = ctn.pack_container("demo", {}, {"body": b"a" * 64})
        with pytest.raises(ValueError):
            ctn.unpack_container(payload[:cut])

    def test_trailing_bytes_rejected(self):
        payload = ctn.pack_container("demo", {}, {"body": b"abc"})
        with pytest.raises(ValueError, match="trailing"):
            ctn.unpack_container(payload + b"zz")

    def test_corrupt_meta_rejected(self):
        from repro.compress.lossless import pack_sections
        with pytest.raises(ValueError, match="meta"):
            ctn.unpack_container(pack_sections({"meta": b"{not json"}))
        with pytest.raises(ValueError, match="meta"):
            ctn.unpack_container(pack_sections({"body": b"no meta here"}))


class TestHuffmanSections:
    def test_multi_stream_roundtrip(self):
        rng = np.random.default_rng(3)
        arrays = [rng.integers(0, 50, size=n).astype(np.uint32)
                  for n in (1000, 1, 700)]
        codec = HuffmanCodec.from_multiple(arrays)
        sections = ctn.pack_huffman([codec.encode(a) for a in arrays])
        from repro.compress.huffman import SYNC_INTERVAL
        back = ctn.unpack_huffman(sections, sync_interval=SYNC_INTERVAL)
        assert len(back) == len(arrays)
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    def test_fallback_counts_for_old_streams(self):
        codes = np.arange(100, dtype=np.uint32) % 7
        stream = HuffmanCodec.from_data(codes).encode(codes)
        sections = ctn.pack_huffman([stream])
        # simulate an old stream: counts lived in codec metadata, not sections
        del sections["huff_nbits"], sections["huff_ncodes"]
        back = ctn.unpack_huffman(sections, fallback_nbits=[stream.nbits],
                                  fallback_ncodes=[codes.size])
        np.testing.assert_array_equal(back[0], codes)
        with pytest.raises(ValueError):
            ctn.unpack_huffman(sections)

    def test_individual_roundtrip(self):
        rng = np.random.default_rng(4)
        arrays = [rng.integers(0, 9, size=n).astype(np.uint32) for n in (300, 17)]
        streams = [HuffmanCodec.from_data(a).encode(a) for a in arrays]
        blob = ctn.pack_huffman_individual(streams)
        from repro.compress.huffman import SYNC_INTERVAL
        back = ctn.unpack_huffman_individual(blob, [a.size for a in arrays],
                                             SYNC_INTERVAL)
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    def test_zarray_roundtrip(self):
        arr = np.linspace(0, 1, 37).reshape(1, 37)
        np.testing.assert_array_equal(ctn.unpack_zarray(ctn.pack_zarray(arr)), arr)


class TestCodecsThroughContainer:
    """Every codec serializes through the one shared container."""

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_roundtrip_and_bound(self, name):
        data = make_smooth((20, 18, 16), noise=0.05, seed=9)
        comp = _codec(name)
        buffer, recon = comp.compress_with_reconstruction(data)
        back = comp.decompress(buffer)
        np.testing.assert_array_equal(back, recon)
        eb = 1e-3 * (data.max() - data.min())
        assert np.max(np.abs(back - data)) <= eb * (1 + 1e-9)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_stream_is_tagged_with_codec(self, name):
        data = make_smooth((12, 12, 12), seed=5)
        buffer = _codec(name).compress(data)
        assert ctn.unpack_container(buffer.payload).codec == name

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_wrong_decompressor_rejected(self, name):
        data = make_smooth((12, 12, 12), seed=6)
        buffer = _codec(name).compress(data)
        other = "sz_lr" if name != "sz_lr" else "sz_interp"
        with pytest.raises(ValueError, match="codec"):
            _codec(other).decompress(buffer.payload)

    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("cut", [5, 40, -7])
    def test_truncated_stream_rejected(self, name, cut):
        data = make_smooth((12, 12, 12), seed=7)
        buffer = _codec(name).compress(data)
        with pytest.raises(ValueError):
            _codec(name).decompress(buffer.payload[:cut])

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_bad_magic_stream_rejected(self, name):
        data = make_smooth((12, 12, 12), seed=8)
        buffer = _codec(name).compress(data)
        with pytest.raises(ValueError):
            _codec(name).decompress(b"JUNK" + buffer.payload[4:])


class TestRegistry:
    def test_builtins_registered(self):
        for name in ALL_CODECS:
            assert registry.is_registered(name)
        assert registry.is_registered("sz1d")          # alias
        assert set(ALL_CODECS) <= set(registry.available_codecs())

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="sz_lr"):
            registry.resolve_codec("lz4")

    def test_alias_resolves_to_canonical(self):
        assert registry.resolve_codec("sz1d").name == "sz_1d"
        comp = registry.create_codec("sz1d", 1e-3)
        assert comp.name == "sz_1d"

    def test_create_filters_unknown_options(self):
        # option meant for another codec is silently dropped, not an error
        comp = registry.create_codec("sz_1d", 1e-3, anchor_stride=8, radius=64)
        assert comp.radius == 64

    def test_duplicate_registration_rejected(self):
        spec = registry.resolve_codec("sz_lr")
        with pytest.raises(ValueError):
            registry.register_codec(spec)

    def test_supports_many_capability(self):
        assert registry.resolve_codec("sz_lr").supports_many
        assert not registry.resolve_codec("sz_interp").supports_many

"""Shared fixtures for compression tests: small synthetic 3D fields.

The field generators live in :mod:`repro.testing` so test modules can import
them absolutely (a relative ``from .conftest import ...`` aborts collection
when the test tree is not a package).
"""

import pytest

from repro.testing import make_rough, make_smooth  # noqa: F401  (re-export)


@pytest.fixture
def smooth_field():
    return make_smooth()


@pytest.fixture
def rough_field():
    return make_rough()

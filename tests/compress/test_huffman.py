"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.huffman import HuffmanCodec, HuffmanEncoded, decode, encode, encoded_size_per_block


class TestBasics:
    def test_roundtrip_small(self):
        data = np.array([1, 2, 2, 3, 3, 3, 3, 7], dtype=np.uint32)
        enc = encode(data)
        np.testing.assert_array_equal(decode(enc), data)

    def test_roundtrip_single_symbol(self):
        data = np.full(50, 42, dtype=np.uint32)
        enc = encode(data)
        assert enc.nbits == 50  # one bit per symbol for a single-symbol alphabet
        np.testing.assert_array_equal(decode(enc), data)

    def test_roundtrip_two_symbols(self):
        data = np.array([0, 1, 0, 1, 1], dtype=np.uint32)
        np.testing.assert_array_equal(decode(encode(data)), data)

    def test_empty(self):
        enc = encode(np.zeros(0, dtype=np.uint32))
        assert enc.nbits == 0
        assert decode(enc).size == 0

    def test_skewed_distribution_compresses(self):
        rng = np.random.default_rng(0)
        data = np.where(rng.random(4000) < 0.95, 100, rng.integers(0, 50, 4000)).astype(np.uint32)
        enc = encode(data)
        # strongly skewed data should need well under 8 bits/symbol
        assert enc.nbits < 4000 * 4

    def test_compression_beats_uniform_bound(self):
        """Average code length is within one bit of the empirical entropy."""
        rng = np.random.default_rng(1)
        data = rng.geometric(0.4, size=5000).astype(np.uint32)
        enc = encode(data)
        values, counts = np.unique(data, return_counts=True)
        p = counts / counts.sum()
        entropy = -(p * np.log2(p)).sum()
        avg_len = enc.nbits / data.size
        assert avg_len <= entropy + 1.0

    def test_decode_wrong_table_or_truncated(self):
        data = np.arange(100, dtype=np.uint32) % 7
        enc = encode(data)
        truncated = HuffmanEncoded(enc.payload[:2], 16, enc.nsymbols,
                                   enc.table_symbols, enc.table_lengths)
        with pytest.raises(ValueError):
            decode(truncated)

    def test_encode_unknown_symbol_raises(self):
        codec = HuffmanCodec.from_data(np.array([1, 2, 3], dtype=np.uint32))
        with pytest.raises(KeyError):
            codec.encode(np.array([99], dtype=np.uint32))

    def test_table_nbytes(self):
        codec = HuffmanCodec.from_data(np.array([5, 6, 7, 7], dtype=np.uint32))
        assert codec.table_nbytes == 3 * 5

    def test_expected_bits_matches_encode(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 20, 500).astype(np.uint32)
        codec = HuffmanCodec.from_data(data)
        assert codec.expected_bits(data) == codec.encode(data).nbits


class TestSharedTable:
    def test_from_multiple_covers_all_symbols(self):
        a = np.array([1, 1, 2], dtype=np.uint32)
        b = np.array([3, 3, 3, 4], dtype=np.uint32)
        codec = HuffmanCodec.from_multiple([a, b])
        np.testing.assert_array_equal(codec.decode(codec.encode(a)), a)
        np.testing.assert_array_equal(codec.decode(codec.encode(b)), b)

    def test_shared_table_cheaper_than_per_block_for_many_small_blocks(self):
        """The size rationale behind SLE: one shared table beats many tables."""
        rng = np.random.default_rng(3)
        blocks = [rng.geometric(0.3, size=64).astype(np.uint32) for _ in range(100)]
        shared = HuffmanCodec.from_multiple(blocks)
        shared_total = shared.table_nbytes + sum(
            (shared.expected_bits(b) + 7) // 8 for b in blocks)
        per_block_total = encoded_size_per_block(blocks)
        assert shared_total < per_block_total

    def test_per_block_total_counts_tables(self):
        blocks = [np.array([1, 2, 3], dtype=np.uint32)] * 4
        total = encoded_size_per_block(blocks)
        assert total >= 4 * 3 * 5  # at least the table bytes


class TestProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=400))
    def test_roundtrip_property(self, values):
        data = np.asarray(values, dtype=np.uint32)
        np.testing.assert_array_equal(decode(encode(data)), data)

    @given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=100))
    def test_roundtrip_large_symbols(self, values):
        data = np.asarray(values, dtype=np.uint32)
        np.testing.assert_array_equal(decode(encode(data)), data)

    @given(st.integers(1, 64), st.integers(2, 30))
    def test_prefix_free_codes(self, nsym, seed):
        """Canonical codes must be prefix-free."""
        rng = np.random.default_rng(seed)
        data = rng.integers(0, nsym, size=500).astype(np.uint32)
        codec = HuffmanCodec.from_data(data)
        codes = [(int(l), int(c)) for l, c in zip(codec.lengths, codec.codes)]
        for i, (li, ci) in enumerate(codes):
            for j, (lj, cj) in enumerate(codes):
                if i == j:
                    continue
                if li <= lj:
                    assert (cj >> (lj - li)) != ci, "code i is a prefix of code j"

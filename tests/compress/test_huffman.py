"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.huffman import (
    MAX_CODE_LEN,
    SYNC_INTERVAL,
    HuffmanCodec,
    HuffmanEncoded,
    _huffman_code_lengths_from_counts,
    _limit_lengths,
    decode,
    encode,
    encoded_size_per_block,
    pack_sync,
    unpack_sync,
)
from repro.compress.lossless import pack_arrays, unpack_arrays


class TestBasics:
    def test_roundtrip_small(self):
        data = np.array([1, 2, 2, 3, 3, 3, 3, 7], dtype=np.uint32)
        enc = encode(data)
        np.testing.assert_array_equal(decode(enc), data)

    def test_roundtrip_single_symbol(self):
        data = np.full(50, 42, dtype=np.uint32)
        enc = encode(data)
        assert enc.nbits == 50  # one bit per symbol for a single-symbol alphabet
        np.testing.assert_array_equal(decode(enc), data)

    def test_roundtrip_two_symbols(self):
        data = np.array([0, 1, 0, 1, 1], dtype=np.uint32)
        np.testing.assert_array_equal(decode(encode(data)), data)

    def test_empty(self):
        enc = encode(np.zeros(0, dtype=np.uint32))
        assert enc.nbits == 0
        assert decode(enc).size == 0

    def test_skewed_distribution_compresses(self):
        rng = np.random.default_rng(0)
        data = np.where(rng.random(4000) < 0.95, 100, rng.integers(0, 50, 4000)).astype(np.uint32)
        enc = encode(data)
        # strongly skewed data should need well under 8 bits/symbol
        assert enc.nbits < 4000 * 4

    def test_compression_beats_uniform_bound(self):
        """Average code length is within one bit of the empirical entropy."""
        rng = np.random.default_rng(1)
        data = rng.geometric(0.4, size=5000).astype(np.uint32)
        enc = encode(data)
        values, counts = np.unique(data, return_counts=True)
        p = counts / counts.sum()
        entropy = -(p * np.log2(p)).sum()
        avg_len = enc.nbits / data.size
        assert avg_len <= entropy + 1.0

    def test_decode_wrong_table_or_truncated(self):
        data = np.arange(100, dtype=np.uint32) % 7
        enc = encode(data)
        truncated = HuffmanEncoded(enc.payload[:2], 16, enc.nsymbols,
                                   enc.table_symbols, enc.table_lengths)
        with pytest.raises(ValueError):
            decode(truncated)

    def test_encode_unknown_symbol_raises(self):
        codec = HuffmanCodec.from_data(np.array([1, 2, 3], dtype=np.uint32))
        with pytest.raises(KeyError):
            codec.encode(np.array([99], dtype=np.uint32))

    def test_table_nbytes(self):
        codec = HuffmanCodec.from_data(np.array([5, 6, 7, 7], dtype=np.uint32))
        assert codec.table_nbytes == 3 * 5

    def test_expected_bits_matches_encode(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 20, 500).astype(np.uint32)
        codec = HuffmanCodec.from_data(data)
        assert codec.expected_bits(data) == codec.encode(data).nbits


class TestSharedTable:
    def test_from_multiple_covers_all_symbols(self):
        a = np.array([1, 1, 2], dtype=np.uint32)
        b = np.array([3, 3, 3, 4], dtype=np.uint32)
        codec = HuffmanCodec.from_multiple([a, b])
        np.testing.assert_array_equal(codec.decode(codec.encode(a)), a)
        np.testing.assert_array_equal(codec.decode(codec.encode(b)), b)

    def test_shared_table_cheaper_than_per_block_for_many_small_blocks(self):
        """The size rationale behind SLE: one shared table beats many tables."""
        rng = np.random.default_rng(3)
        blocks = [rng.geometric(0.3, size=64).astype(np.uint32) for _ in range(100)]
        shared = HuffmanCodec.from_multiple(blocks)
        shared_total = shared.table_nbytes + sum(
            (shared.expected_bits(b) + 7) // 8 for b in blocks)
        per_block_total = encoded_size_per_block(blocks)
        assert shared_total < per_block_total

    def test_per_block_total_counts_tables(self):
        blocks = [np.array([1, 2, 3], dtype=np.uint32)] * 4
        total = encoded_size_per_block(blocks)
        assert total >= 4 * 3 * 5  # at least the table bytes


class TestAdversarial:
    """Edge cases for the vectorized LUT decode path."""

    def test_single_symbol_alphabet_large(self):
        data = np.full(3 * SYNC_INTERVAL + 17, 9, dtype=np.uint32)
        enc = encode(data)
        assert enc.nbits == data.size
        np.testing.assert_array_equal(decode(enc), data)

    def test_empty_input(self):
        enc = encode(np.zeros(0, dtype=np.uint32))
        assert enc.nbits == 0 and enc.nsymbols == 0
        assert decode(enc).size == 0

    def test_kraft_repair_triggered_roundtrip(self):
        """Fibonacci-skewed counts force depths past the limit; the repaired
        length-limited code must still round-trip exactly."""
        fib = [1, 1]
        while len(fib) < 30:
            fib.append(fib[-1] + fib[-2])
        raw_lengths = _huffman_code_lengths_from_counts(np.asarray(fib))
        assert raw_lengths.max() > MAX_CODE_LEN  # the repair has work to do
        data = np.concatenate([np.full(c, s, np.uint32) for s, c in enumerate(fib)])
        np.random.default_rng(0).shuffle(data)
        codec = HuffmanCodec.from_data(data)
        assert int(codec.lengths.max()) <= MAX_CODE_LEN
        enc = codec.encode(data)
        np.testing.assert_array_equal(codec.decode(enc), data)

    def test_limit_lengths_huge_alphabet_widens_limit(self):
        n = (1 << MAX_CODE_LEN) + 10
        lengths = np.full(n, MAX_CODE_LEN + 8, dtype=np.int64)
        limited = _limit_lengths(lengths)
        assert np.sum(2.0 ** (-limited.astype(np.float64))) <= 1.0 + 1e-9

    def test_million_symbol_roundtrip(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=1_000_000).astype(np.uint32)
        enc = encode(data)
        np.testing.assert_array_equal(decode(enc), data)

    def test_serialized_table_roundtrip(self):
        """Tables shipped through lossless.pack_arrays rebuild an equivalent codec."""
        rng = np.random.default_rng(8)
        data = rng.geometric(0.25, size=10_000).astype(np.uint32)
        codec = HuffmanCodec.from_data(data)
        enc = codec.encode(data)
        symbols, lengths = unpack_arrays(pack_arrays(enc.table_symbols, enc.table_lengths))
        rebuilt = HuffmanCodec(symbols, lengths)
        np.testing.assert_array_equal(rebuilt.codes, codec.codes)
        np.testing.assert_array_equal(rebuilt.decode(enc), data)

    def test_pack_sync_roundtrip_and_compact(self):
        rng = np.random.default_rng(11)
        streams = [encode(rng.integers(0, 99, size=n).astype(np.uint32))
                   for n in (1, 300, 100_000)]
        blob = pack_sync([s.sync for s in streams])
        lanes = [np.asarray(s.sync).size for s in streams]
        back = unpack_sync(blob, lanes)
        for s, b in zip(streams, back):
            np.testing.assert_array_equal(np.asarray(s.sync), b)
        # the acceleration structure must stay a small fraction of the payload
        assert len(blob) < 0.05 * sum(len(s.payload) for s in streams)
        # a blob of the wrong size degrades to None (scalar fallback), not garbage
        assert unpack_sync(blob, [lanes[0]]) == [None]

    def test_scalar_fallback_matches_lut_path(self):
        """A stream stripped of its sync offsets decodes identically (slow path)."""
        rng = np.random.default_rng(9)
        data = rng.integers(0, 50, size=5_000).astype(np.uint32)
        enc = encode(data)
        assert enc.sync is not None
        stripped = HuffmanEncoded(enc.payload, enc.nbits, enc.nsymbols,
                                  enc.table_symbols, enc.table_lengths)
        np.testing.assert_array_equal(decode(stripped), decode(enc))


class TestCorruptStreams:
    """Truncated and invalid streams raise ValueError on both decode paths."""

    @staticmethod
    def _stream(n=2000):
        data = (np.arange(n, dtype=np.uint32) % 17)
        return data, encode(data)

    def test_truncated_payload_lut_path(self):
        _, enc = self._stream()
        bad = HuffmanEncoded(enc.payload[:len(enc.payload) // 2], enc.nbits,
                             enc.nsymbols, enc.table_symbols, enc.table_lengths,
                             sync=enc.sync)
        with pytest.raises(ValueError):
            decode(bad)

    def test_truncated_payload_scalar_path(self):
        _, enc = self._stream()
        bad = HuffmanEncoded(enc.payload[:2], 16, enc.nsymbols,
                             enc.table_symbols, enc.table_lengths)
        with pytest.raises(ValueError):
            decode(bad)

    def test_truncated_nbits_lut_path(self):
        """nbits lies low: lanes cannot land on their sync boundaries."""
        _, enc = self._stream()
        bad = HuffmanEncoded(enc.payload, enc.nbits - 3, enc.nsymbols,
                             enc.table_symbols, enc.table_lengths, sync=enc.sync)
        with pytest.raises(ValueError):
            decode(bad)

    def test_invalid_code_lut_path(self):
        """A Kraft-deficient table leaves unassigned LUT slots; hitting one raises."""
        one = encode(np.full(10, 7, dtype=np.uint32))   # single symbol, code '0'
        bad = HuffmanEncoded(b"\xff\xff", 10, 10, one.table_symbols,
                             one.table_lengths, sync=one.sync)
        with pytest.raises(ValueError):
            decode(bad)

    def test_invalid_code_scalar_path(self):
        one = encode(np.full(10, 7, dtype=np.uint32))
        bad = HuffmanEncoded(b"\xff\xff", 10, 10, one.table_symbols, one.table_lengths)
        with pytest.raises(ValueError):
            decode(bad)

    def test_corrupt_table_rejected_at_construction(self):
        """Deserialized tables with absurd lengths or a Kraft violation must
        raise, never silently build garbage canonical codes."""
        syms = np.array([1, 2, 3], dtype=np.uint32)
        for lengths in ([1, 200, 200],   # shift overflow territory
                        [0, 1, 1],       # zero-length code
                        [1, 1, 1]):      # Kraft sum 1.5 > 1
            with pytest.raises(ValueError):
                HuffmanCodec(syms, np.asarray(lengths, dtype=np.uint8))

    def test_corrupt_sync_offsets_fall_back_or_raise(self):
        """Malformed sync metadata must never return silently-wrong data."""
        data, enc = self._stream()
        shifted = HuffmanEncoded(enc.payload, enc.nbits, enc.nsymbols,
                                 enc.table_symbols, enc.table_lengths,
                                 sync=np.asarray(enc.sync) + 1)
        try:
            out = decode(shifted)
            np.testing.assert_array_equal(out, data)  # fell back to scalar path
        except ValueError:
            pass


class TestProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=400))
    def test_roundtrip_property(self, values):
        data = np.asarray(values, dtype=np.uint32)
        np.testing.assert_array_equal(decode(encode(data)), data)

    @given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=100))
    def test_roundtrip_large_symbols(self, values):
        data = np.asarray(values, dtype=np.uint32)
        np.testing.assert_array_equal(decode(encode(data)), data)

    @given(st.integers(1, 64), st.integers(2, 30))
    def test_prefix_free_codes(self, nsym, seed):
        """Canonical codes must be prefix-free."""
        rng = np.random.default_rng(seed)
        data = rng.integers(0, nsym, size=500).astype(np.uint32)
        codec = HuffmanCodec.from_data(data)
        codes = [(int(l), int(c)) for l, c in zip(codec.lengths, codec.codes)]
        for i, (li, ci) in enumerate(codes):
            for j, (lj, cj) in enumerate(codes):
                if i == j:
                    continue
                if li <= lj:
                    assert (cj >> (lj - li)) != ci, "code i is a prefix of code j"

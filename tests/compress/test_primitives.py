"""Tests for the compression primitives: error bounds, quantiser, blocks,
Lorenzo, regression, lossless framing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compress.blocks import BlockPartition, partition_blocks, reassemble_blocks, pad_to_multiple
from repro.compress.errorbound import ErrorBound
from repro.compress.lorenzo import (
    lorenzo_decode,
    lorenzo_encode,
    lorenzo_inverse,
    lorenzo_transform,
    prequantize,
    postquantize,
)
from repro.compress.lossless import (
    pack_array,
    pack_arrays,
    pack_sections,
    unpack_array,
    unpack_arrays,
    unpack_sections,
    zlib_compress,
    zlib_decompress,
)
from repro.compress.quantizer import QuantizedBlock, dequantize, quantize
from repro.compress import regression


class TestErrorBound:
    def test_absolute(self):
        eb = ErrorBound.absolute(0.5)
        assert eb.resolve(np.array([0, 100.0])) == 0.5

    def test_relative(self):
        eb = ErrorBound.relative(1e-2)
        assert eb.resolve(np.array([0.0, 50.0])) == pytest.approx(0.5)

    def test_relative_with_explicit_range(self):
        assert ErrorBound.relative(1e-3).resolve(value_range=200.0) == pytest.approx(0.2)

    def test_relative_constant_field(self):
        eb = ErrorBound.relative(1e-2)
        assert eb.resolve(np.full(10, 3.0)) == pytest.approx(1e-2)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ErrorBound(1e-3, "bogus")

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            ErrorBound(-1.0)
        with pytest.raises(ValueError):
            ErrorBound(float("nan"))

    def test_coerce(self):
        assert ErrorBound.coerce(1e-3).mode == "rel"
        eb = ErrorBound.absolute(2.0)
        assert ErrorBound.coerce(eb) is eb

    def test_rel_needs_data_or_range(self):
        with pytest.raises(ValueError):
            ErrorBound.relative(1e-3).resolve()


class TestQuantizer:
    def test_roundtrip_within_bound(self):
        rng = np.random.default_rng(0)
        errors = rng.normal(scale=0.1, size=1000)
        block = quantize(errors, eb=1e-3)
        recovered = dequantize(block)
        assert np.all(np.abs(recovered - errors) <= 1e-3 * (1 + 1e-12))

    def test_outliers_recovered_exactly(self):
        errors = np.array([0.0, 1e6, -1e6, 0.01])
        block = quantize(errors, eb=1e-3, radius=16)
        assert block.num_outliers == 2
        recovered = dequantize(block)
        np.testing.assert_allclose(recovered[[1, 2]], [1e6, -1e6])

    def test_zero_code_reserved_for_outliers(self):
        errors = np.array([0.0, -1e9])
        block = quantize(errors, eb=1.0, radius=4)
        assert block.codes[0] != 0
        assert block.codes[1] == 0

    def test_invalid_eb(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), eb=0.0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), eb=1.0, radius=1)

    @given(hnp.arrays(np.float64, st.integers(1, 200),
                      elements=st.floats(-1e6, 1e6, allow_nan=False)),
           st.floats(1e-6, 1.0))
    def test_property_bound(self, errors, eb):
        block = quantize(errors, eb=eb)
        recovered = dequantize(block)
        assert np.all(np.abs(recovered - errors) <= eb * (1 + 1e-9))


class TestBlocks:
    def test_pad_to_multiple(self):
        arr = np.arange(10.0)
        padded, orig_shape = pad_to_multiple(arr, 4)
        assert padded.shape == (12,)
        assert orig_shape == (10,)
        assert padded[10] == padded[9]  # edge padding

    def test_partition_reassemble_roundtrip(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(13, 9, 17))
        part = partition_blocks(arr, 6)
        back = reassemble_blocks(part)
        np.testing.assert_array_equal(back, arr)

    def test_partition_shapes(self):
        arr = np.zeros((12, 12, 12))
        part = partition_blocks(arr, 6)
        assert part.blocks.shape == (8, 6, 6, 6)
        assert part.grid_shape == (2, 2, 2)

    def test_partition_block_content(self):
        arr = np.arange(16.0).reshape(4, 4)
        part = partition_blocks(arr, 2)
        np.testing.assert_array_equal(part.blocks[0], arr[:2, :2])
        np.testing.assert_array_equal(part.blocks[-1], arr[2:, 2:])

    def test_reassemble_with_external_blocks(self):
        arr = np.random.default_rng(1).normal(size=(8, 8))
        part = partition_blocks(arr, 4)
        doubled = reassemble_blocks(part, part.blocks * 2)
        np.testing.assert_allclose(doubled, arr * 2)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            partition_blocks(np.zeros((4, 4)), (2, 2, 2))
        with pytest.raises(ValueError):
            pad_to_multiple(np.zeros((4, 4)), 0)

    @given(st.tuples(st.integers(1, 20), st.integers(1, 20)), st.integers(1, 7))
    def test_roundtrip_property_2d(self, shape, bsize):
        arr = np.arange(float(np.prod(shape))).reshape(shape)
        part = partition_blocks(arr, bsize)
        np.testing.assert_array_equal(reassemble_blocks(part), arr)


class TestLorenzo:
    def test_transform_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        q = rng.integers(-1000, 1000, size=(7, 9, 5))
        np.testing.assert_array_equal(lorenzo_inverse(lorenzo_transform(q)), q)

    def test_prequantize_bound(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=1000) * 50
        eb = 1e-2
        recon = postquantize(prequantize(data, eb), eb)
        assert np.max(np.abs(recon - data)) <= eb

    def test_encode_decode_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(9, 6, 4))
        deltas, recon = lorenzo_encode(data, 1e-3)
        decoded = lorenzo_decode(deltas, 1e-3)
        np.testing.assert_array_equal(decoded, recon)
        assert np.max(np.abs(recon - data)) <= 1e-3

    def test_transform_first_element_is_value(self):
        q = np.array([[5, 7], [9, 13]])
        d = lorenzo_transform(q)
        assert d[0, 0] == 5

    def test_invalid_eb(self):
        with pytest.raises(ValueError):
            prequantize(np.zeros(3), 0.0)

    @given(hnp.arrays(np.int64, st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
                      elements=st.integers(-10**6, 10**6)))
    def test_property_roundtrip(self, q):
        np.testing.assert_array_equal(lorenzo_inverse(lorenzo_transform(q)), q)


class TestRegression:
    def test_fits_exact_planes(self):
        i, j, k = np.meshgrid(*[np.arange(6.0)] * 3, indexing="ij")
        plane = 2.0 + 0.5 * i - 0.25 * j + 3.0 * k
        blocks = np.stack([plane, plane * 2])
        coeffs = regression.fit_blocks(blocks)
        model = regression.RegressionModel(coeffs, (6, 6, 6))
        preds = regression.predict_blocks(model)
        np.testing.assert_allclose(preds, blocks, atol=1e-9)

    def test_quantised_coefficients_error_small(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(4, 6, 6, 6))
        model, preds = regression.fit_and_predict(blocks, eb=1e-3)
        raw_coeffs = regression.fit_blocks(blocks)
        # quantised prediction stays close to the unquantised one
        raw_model = regression.RegressionModel(raw_coeffs, (6, 6, 6))
        raw_preds = regression.predict_blocks(raw_model)
        assert np.max(np.abs(preds - raw_preds)) < 1e-2

    def test_model_nbytes(self):
        model = regression.RegressionModel(np.zeros((10, 4)), (6, 6, 6))
        assert model.nbytes == 10 * 4 * 4

    def test_coefficients_float32_representable(self):
        rng = np.random.default_rng(3)
        blocks = rng.normal(size=(3, 5, 5, 5)) * 100
        model, _ = regression.fit_and_predict(blocks, eb=1e-2)
        np.testing.assert_array_equal(
            model.coefficients, model.coefficients.astype(np.float32).astype(np.float64))


class TestLossless:
    def test_zlib_roundtrip(self):
        payload = b"hello world" * 100
        assert zlib_decompress(zlib_compress(payload)) == payload

    def test_sections_roundtrip(self):
        sections = {"a": b"123", "b": b"", "meta": b"{}"}
        back = unpack_sections(pack_sections(sections))
        assert back == sections

    def test_sections_bad_magic(self):
        with pytest.raises(ValueError):
            unpack_sections(b"XXXX" + b"\x00" * 16)

    def test_pack_array_roundtrip(self):
        for arr in [np.arange(10, dtype=np.int64), np.zeros((3, 4), dtype=np.float32),
                    np.array(5.0), np.zeros(0, dtype=np.uint32)]:
            back = unpack_array(pack_array(arr))
            assert back.dtype == arr.dtype
            np.testing.assert_array_equal(back, arr)

    def test_pack_arrays_roundtrip(self):
        a = np.arange(5, dtype=np.uint32)
        b = np.array([1, 2, 3], dtype=np.uint8)
        back = unpack_arrays(pack_arrays(a, b))
        assert len(back) == 2
        np.testing.assert_array_equal(back[0], a)
        np.testing.assert_array_equal(back[1], b)

    def test_pack_arrays_content_with_separator_bytes(self):
        # arrays containing 0x7C ("|") bytes must round-trip fine
        a = np.full(100, 0x7C7C7C7C, dtype=np.uint32)
        b = np.full(17, 124, dtype=np.uint8)
        back = unpack_arrays(pack_arrays(a, b))
        np.testing.assert_array_equal(back[0], a)
        np.testing.assert_array_equal(back[1], b)

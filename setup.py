"""Legacy setup shim.

Kept so `pip install -e .` works on machines without the `wheel` package
(offline environments): pip falls back to `setup.py develop` when invoked with
--no-use-pep517.  All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()

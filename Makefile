# Developer entry points. `make test` is the tier-1 gate; `make lint` runs ruff
# (skipping with a notice when it is not installed); `make bench` runs the
# tracked performance suite, one BENCH_<suite>.json per entry of BENCH_SUITES
# (it degrades to a plain run — the perf tests skip themselves — if
# pytest-benchmark is absent); `make bench-check` gates the fresh medians
# against benchmarks/baselines/ (25% tolerance; `make bench-baseline` adopts
# the fresh results); `make smoke` exercises the `python -m repro` CLI end to
# end, `make smoke-series` does the same for the series subsystem,
# `make smoke-remote` drives a box read through a simulated high-latency
# RangeSource, `make smoke-stream` runs a live producer -> serve ->
# `query follow` pipeline across three real processes, `make smoke-obs`
# drives traced queries against a live server and checks the telemetry the
# `stats` verb reports about them, and `make smoke-http` exercises the HTTP
# gateway (auth, limits, /metrics, read parity with TCP) across real
# processes.  The smoke targets honour REPRO_BACKEND
# (CI runs them with REPRO_BACKEND=process).

PY := PYTHONPATH=src python

# suite -> pytest paths ('+'-separated). Adding a benchmark suite is one line.
BENCH_SUITES := \
	entropy:benchmarks/perf/test_perf_huffman.py+benchmarks/perf/test_perf_sz.py \
	writer:benchmarks/perf/test_perf_writer.py \
	reader:benchmarks/perf/test_perf_reader.py \
	series:benchmarks/perf/test_perf_series.py \
	service:benchmarks/perf/test_perf_service.py \
	remote:benchmarks/perf/test_perf_remote.py \
	stream:benchmarks/perf/test_perf_stream.py \
	obs:benchmarks/perf/test_perf_obs.py \
	http:benchmarks/perf/test_perf_http.py

.PHONY: test lint bench bench-check bench-baseline smoke smoke-series \
	smoke-remote smoke-stream smoke-obs smoke-http

test:
	$(PY) -m pytest -x -q

lint:
	@if $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests benchmarks tools; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

bench:
	@set -e; \
	have_bm=0; $(PY) -c "import pytest_benchmark" 2>/dev/null && have_bm=1; \
	for suite in $(BENCH_SUITES); do \
		name=$${suite%%:*}; \
		paths=$$(printf '%s' "$${suite#*:}" | tr '+' ' '); \
		if [ "$$have_bm" = 1 ]; then \
			$(PY) -m pytest $$paths -q --benchmark-json=BENCH_$$name.json; \
		else \
			$(PY) -m pytest $$paths -q; \
		fi; \
	done

# BENCH_TOLERANCE overrides the default 25% (e.g. CI runners with noisier
# clocks than the machine that produced the committed baselines)
bench-check:
	$(PY) tools/bench_check.py $(if $(BENCH_TOLERANCE),--tolerance $(BENCH_TOLERANCE))

bench-baseline:
	$(PY) tools/bench_check.py --update

smoke:
	@rm -rf .smoke && mkdir -p .smoke
	$(PY) -m repro compress --preset nyx_1 .smoke/plt.h5z
	$(PY) -m repro info .smoke/plt.h5z
	$(PY) -m repro verify .smoke/plt.h5z
	$(PY) -m repro decompress .smoke/plt.h5z .smoke/raw.h5z
	$(PY) -m repro verify .smoke/plt.h5z --against .smoke/raw.h5z
	@rm -rf .smoke

smoke-remote:
	@rm -rf .smoke-remote && mkdir -p .smoke-remote
	$(PY) -m repro compress --preset nyx_1 .smoke-remote/plt.h5z
	$(PY) -m repro info .smoke-remote/plt.h5z \
		--source latency:5ms,block:4k --stats
	$(PY) -c "import numpy as np; import repro; from repro.amr.box import Box; \
		h = repro.open('.smoke-remote/plt.h5z', \
		source='latency:5ms,block:4k,gap:64k'); \
		a = h.read_field('baryon_density', level=0, \
		box=Box((0, 0, 0), (15, 15, 15)), max_level=0); \
		assert np.isfinite(a).all(); \
		s = h.stats; \
		assert s.requests >= s.coalesced_requests >= 1; \
		print('remote box read ok:', a.shape, f'{s.coalesced_requests} reads', \
		f'{s.bytes_read} bytes'); \
		h.close()"
	@rm -rf .smoke-remote

smoke-series:
	@rm -rf .smoke-series && mkdir -p .smoke-series
	$(PY) -c "import os; import repro; from repro.apps.nyx import NyxSimulation; \
		sim = NyxSimulation(coarse_shape=(24, 24, 24), nranks=2, \
		target_fine_density=0.03, max_grid_size=12, seed=7, \
		drift_rate=0.05, growth_rate=0.02, regrid_interval=4); \
		repro.write_series(sim.run(5), '.smoke-series/run', \
		keyframe_interval=4, error_bound=1e-3, \
		backend=os.environ.get('REPRO_BACKEND'))"
	$(PY) -m repro series-info .smoke-series/run
	$(PY) -m repro series-verify .smoke-series/run
	$(PY) -c "import numpy as np; import repro; from repro.amr.box import Box; \
		s = repro.open_series('.smoke-series/run'); \
		t, v = s.time_slice('baryon_density', box=Box((0, 0, 0), (3, 3, 3)), refill=False); \
		assert v.shape[0] == 5 and np.isfinite(v).all(); \
		print('time_slice ok:', v.shape, f'{s.stats.chunks_decoded} chunks decoded'); \
		s.close()"
	@rm -rf .smoke-series

smoke-stream:
	$(PY) tools/smoke_stream.py

smoke-obs:
	$(PY) tools/smoke_obs.py

smoke-http:
	$(PY) tools/smoke_http.py

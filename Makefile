# Developer entry points. `make test` is the tier-1 gate; `make lint` runs ruff
# (skipping with a notice when it is not installed); `make bench` runs the
# tracked performance suite and refreshes BENCH_entropy.json + BENCH_writer.json
# + BENCH_reader.json + BENCH_series.json (it degrades to a plain run — the
# perf tests skip themselves — if pytest-benchmark is absent); `make smoke`
# exercises the `python -m repro` CLI end to end and `make smoke-series` does
# the same for the series subsystem (write N steps -> series-verify ->
# time_slice).

PY := PYTHONPATH=src python

.PHONY: test lint bench smoke smoke-series

test:
	$(PY) -m pytest -x -q

lint:
	@if $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

bench:
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf -q \
			--ignore=benchmarks/perf/test_perf_writer.py \
			--ignore=benchmarks/perf/test_perf_reader.py \
			--ignore=benchmarks/perf/test_perf_series.py \
			--benchmark-json=BENCH_entropy.json \
		|| $(PY) -m pytest benchmarks/perf -q \
			--ignore=benchmarks/perf/test_perf_writer.py \
			--ignore=benchmarks/perf/test_perf_reader.py \
			--ignore=benchmarks/perf/test_perf_series.py
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf/test_perf_writer.py -q \
			--benchmark-json=BENCH_writer.json \
		|| $(PY) -m pytest benchmarks/perf/test_perf_writer.py -q
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf/test_perf_reader.py -q \
			--benchmark-json=BENCH_reader.json \
		|| $(PY) -m pytest benchmarks/perf/test_perf_reader.py -q
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf/test_perf_series.py -q \
			--benchmark-json=BENCH_series.json \
		|| $(PY) -m pytest benchmarks/perf/test_perf_series.py -q

smoke:
	@rm -rf .smoke && mkdir -p .smoke
	$(PY) -m repro compress --preset nyx_1 .smoke/plt.h5z
	$(PY) -m repro info .smoke/plt.h5z
	$(PY) -m repro verify .smoke/plt.h5z
	$(PY) -m repro decompress .smoke/plt.h5z .smoke/raw.h5z
	$(PY) -m repro verify .smoke/plt.h5z --against .smoke/raw.h5z
	@rm -rf .smoke

smoke-series:
	@rm -rf .smoke-series && mkdir -p .smoke-series
	$(PY) -c "import repro; from repro.apps.nyx import NyxSimulation; \
		sim = NyxSimulation(coarse_shape=(24, 24, 24), nranks=2, \
		target_fine_density=0.03, max_grid_size=12, seed=7, \
		drift_rate=0.05, growth_rate=0.02, regrid_interval=4); \
		repro.write_series(sim.run(5), '.smoke-series/run', \
		keyframe_interval=4, error_bound=1e-3)"
	$(PY) -m repro series-info .smoke-series/run
	$(PY) -m repro series-verify .smoke-series/run
	$(PY) -c "import numpy as np; import repro; from repro.amr.box import Box; \
		s = repro.open_series('.smoke-series/run'); \
		t, v = s.time_slice('baryon_density', box=Box((0, 0, 0), (3, 3, 3)), refill=False); \
		assert v.shape[0] == 5 and np.isfinite(v).all(); \
		print('time_slice ok:', v.shape, f'{s.stats.chunks_decoded} chunks decoded'); \
		s.close()"
	@rm -rf .smoke-series

# Developer entry points. `make test` is the tier-1 gate; `make bench` runs the
# tracked performance suite and refreshes BENCH_entropy.json (it degrades to a
# plain run — the perf tests skip themselves — if pytest-benchmark is absent).

PY := PYTHONPATH=src python

.PHONY: test bench

test:
	$(PY) -m pytest -x -q

bench:
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf -q --benchmark-json=BENCH_entropy.json \
		|| $(PY) -m pytest benchmarks/perf -q

# Developer entry points. `make test` is the tier-1 gate; `make lint` runs ruff
# (skipping with a notice when it is not installed); `make bench` runs the
# tracked performance suite and refreshes BENCH_entropy.json +
# BENCH_writer.json + BENCH_reader.json (it degrades to a plain run — the
# perf tests skip themselves — if pytest-benchmark is absent); `make smoke`
# exercises the `python -m repro` CLI end to end.

PY := PYTHONPATH=src python

.PHONY: test lint bench smoke

test:
	$(PY) -m pytest -x -q

lint:
	@if $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

bench:
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf -q \
			--ignore=benchmarks/perf/test_perf_writer.py \
			--ignore=benchmarks/perf/test_perf_reader.py \
			--benchmark-json=BENCH_entropy.json \
		|| $(PY) -m pytest benchmarks/perf -q \
			--ignore=benchmarks/perf/test_perf_writer.py \
			--ignore=benchmarks/perf/test_perf_reader.py
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf/test_perf_writer.py -q \
			--benchmark-json=BENCH_writer.json \
		|| $(PY) -m pytest benchmarks/perf/test_perf_writer.py -q
	@$(PY) -c "import pytest_benchmark" 2>/dev/null \
		&& $(PY) -m pytest benchmarks/perf/test_perf_reader.py -q \
			--benchmark-json=BENCH_reader.json \
		|| $(PY) -m pytest benchmarks/perf/test_perf_reader.py -q

smoke:
	@rm -rf .smoke && mkdir -p .smoke
	$(PY) -m repro compress --preset nyx_1 .smoke/plt.h5z
	$(PY) -m repro info .smoke/plt.h5z
	$(PY) -m repro verify .smoke/plt.h5z
	$(PY) -m repro decompress .smoke/plt.h5z .smoke/raw.h5z
	$(PY) -m repro verify .smoke/plt.h5z --against .smoke/raw.h5z
	@rm -rf .smoke

#!/usr/bin/env python
"""Rate-distortion study of AMRIC's SZ_L/R optimisations (Figures 5–9 style).

Sweeps the paper's error-bound range on a Nyx-like fine level and prints the
(compression ratio, PSNR) curves for:

* LM   — linear merging of unit blocks (the unoptimised strategy),
* SLE  — unit Shared Lossless Encoding,
* Adp  — SLE plus the adaptive SZ block size (Equation 1),
* 1D   — AMReX-style chunked 1D compression,

plus the linear-versus-clustered arrangement comparison for SZ_Interp.

    python examples/rate_distortion_study.py [--unit 8]
"""

import argparse

import numpy as np

from repro.analysis.rate_distortion import rate_distortion_sweep
from repro.analysis.reporting import format_table
from repro.apps import nyx_run
from repro.compress import SZ1DCompressor, SZInterpCompressor, SZLRCompressor
from repro.core.adaptive import select_sz_block_size
from repro.core.preprocess import extract_block_data, pack_blocks_cluster, pack_blocks_linear, preprocess_level
from repro.core.sle import compress_blocks_lm, compress_blocks_sle


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--unit", type=int, default=8, help="unit block size")
    parser.add_argument("--size", type=int, default=32, help="coarse grid size")
    args = parser.parse_args()

    sim = nyx_run(coarse_shape=(args.size,) * 3, nranks=2, target_fine_density=0.03, seed=17)
    hierarchy = sim.hierarchy
    pre = preprocess_level(hierarchy, 0, unit_block_size=args.unit)
    blocks = extract_block_data(hierarchy[0], "baryon_density", pre.unit_blocks)
    flat = np.concatenate([b.reshape(-1) for b in blocks])

    def lm(eb):
        enc = compress_blocks_lm(blocks, SZLRCompressor(eb))
        rec = np.concatenate([r.reshape(-1) for r in enc.reconstructions])
        return enc.compressed_nbytes, flat, rec

    def sle(eb):
        enc = compress_blocks_sle(blocks, SZLRCompressor(eb))
        rec = np.concatenate([r.reshape(-1) for r in enc.reconstructions])
        return enc.compressed_nbytes, flat, rec

    def adaptive(eb):
        size = select_sz_block_size(args.unit)
        enc = compress_blocks_sle(blocks, SZLRCompressor(eb, block_size=size))
        rec = np.concatenate([r.reshape(-1) for r in enc.reconstructions])
        return enc.compressed_nbytes, flat, rec

    def one_d(eb):
        buffers, rec = SZ1DCompressor(eb).compress_chunked(flat, 1024)
        return sum(b.compressed_nbytes for b in buffers), flat, rec.reshape(-1)

    points = rate_distortion_sweep(
        {"LM": lm, "SLE": sle, f"Adp-{select_sz_block_size(args.unit)}": adaptive, "1D": one_d},
        error_bounds=(2e-2, 1e-2, 5e-3, 1e-3))
    print(format_table([p.as_row() for p in points],
                       title=f"SZ_L/R strategies on Nyx coarse level (unit block {args.unit})"))

    # SZ_Interp arrangement comparison (Figure 5)
    rows = []
    for eb in (2e-2, 1e-2, 1e-3):
        for name, packer in (("cluster", pack_blocks_cluster), ("linear", pack_blocks_linear)):
            packed, _ = packer(blocks)
            comp = SZInterpCompressor(eb)
            buf, recon = comp.compress_with_reconstruction(packed)
            from repro.compress.metrics import psnr
            rows.append({"arrangement": name, "error_bound": eb,
                         "CR": packed.nbytes / buf.compressed_nbytes,
                         "PSNR": psnr(packed, recon)})
    print()
    print(format_table(rows, title="SZ_Interp: clustered vs linear arrangement (Figure 5)"))

    # end-to-end sanity: the same data through the repro.write/repro.open
    # facade — the plotfile is self-describing, so the read needs no template
    import os
    import tempfile

    import repro

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "rd_best.h5z")
        report = repro.write(hierarchy, path, compressor="sz_lr",
                             error_bound=1e-3, unit_block_size=args.unit)
        with repro.open(path) as plotfile:
            stored = plotfile.describe()
        print(f"\nfacade round trip: wrote {path} at eb=1e-3 "
              f"(CR {report.compression_ratio:.1f}x in situ, "
              f"{stored['compression_ratio']:.1f}x on disk, "
              f"codec {stored['codec']}, format v{stored['format_version']})")


if __name__ == "__main__":
    main()

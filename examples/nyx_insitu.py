#!/usr/bin/env python
"""Nyx-like multi-timestep in situ compression study.

Reproduces the Nyx side of the paper's evaluation at laptop scale: a
multi-step AMR run dumps a plotfile at every step through three writers
(NoComp, AMReX-original, AMRIC), and the script reports per-step compression
ratios, quality, compressor-launch counts and the modelled write time on the
paper-scale (Table 1) configuration.

    python examples/nyx_insitu.py [--steps 3] [--size 48]
"""

import argparse

import repro
from repro.analysis.reporting import format_table
from repro.apps import RUN_PRESETS, build_run
from repro.parallel import IOCostModel
from repro.parallel.iomodel import RankWorkload


def scale_workloads(report, preset):
    """Scale the measured per-rank workload up to the paper-scale run."""
    measured_raw = max(report.raw_bytes, 1)
    scale = preset.paper_total_bytes / measured_raw
    raw_per_rank = preset.paper_total_bytes / preset.paper_nranks
    cr = report.compression_ratio
    launches = max(1, round(sum(w.compressor_launches for w in report.rank_workloads)
                            / max(len(report.rank_workloads), 1)))
    return [RankWorkload(raw_bytes=int(raw_per_rank),
                         compressed_bytes=int(raw_per_rank / cr),
                         compressor_launches=int(launches))
            for _ in range(preset.paper_nranks)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--size", type=int, default=48)
    parser.add_argument("--preset", default="nyx_1", choices=sorted(RUN_PRESETS))
    args = parser.parse_args()

    preset = RUN_PRESETS[args.preset]
    sim = build_run(preset, coarse_shape=(args.size,) * 3)
    model = IOCostModel()
    rows = []

    # every method goes through the one repro.write facade entry point
    writers = {
        "NoComp": dict(method="nocomp"),
        "AMReX": dict(method="amrex_1d", error_bound=preset.error_bound_amrex),
        "AMRIC(SZ_L/R)": dict(compressor="sz_lr",
                              error_bound=preset.error_bound_amric),
        "AMRIC(SZ_Interp)": dict(compressor="sz_interp",
                                 error_bound=preset.error_bound_amric),
    }

    for step in range(args.steps):
        hierarchy = sim.hierarchy
        for name, write_kwargs in writers.items():
            report = repro.write(hierarchy, None, **write_kwargs)
            workloads = scale_workloads(report, preset)
            breakdown = model.evaluate(workloads, ndatasets=report.ndatasets or 1,
                                       compression_enabled=name != "NoComp")
            rows.append({
                "step": step,
                "method": name,
                "CR": report.compression_ratio,
                "PSNR": report.mean_psnr,
                "launches/rank": sum(w.compressor_launches for w in report.rank_workloads)
                                 / max(len(report.rank_workloads), 1),
                "modelled write (s)": breakdown.total_seconds,
            })
        sim.advance()

    print(format_table(rows, title=f"Nyx in situ study — preset {preset.name} "
                                   f"(paper scale: {preset.paper_nranks} ranks, "
                                   f"{preset.paper_data_gb} GB/step)"))


if __name__ == "__main__":
    main()

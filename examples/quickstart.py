#!/usr/bin/env python
"""Quickstart: compress one AMR snapshot with AMRIC and read it back.

Uses the two-verb facade — ``repro.write`` to produce a self-describing
plotfile and ``repro.open`` to read it back *without the producing hierarchy*
(no structural template needed).  Runs in a few seconds on a laptop::

    python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro
from repro.apps import nyx_run


def main() -> None:
    # 1. run a (synthetic) Nyx-like AMR simulation and take one snapshot
    sim = nyx_run(coarse_shape=(32, 32, 32), nranks=4, target_fine_density=0.02, seed=7)
    hierarchy = sim.hierarchy
    print("AMR snapshot:", hierarchy)
    print(f"  total size: {hierarchy.nbytes / 1e6:.1f} MB, "
          f"fine-level density: {hierarchy[1].density():.1%}")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. write it in situ with AMRIC (SZ_L/R, 1e-3 relative error bound)
        path = os.path.join(tmp, "plotfile_amric.h5z")
        report = repro.write(hierarchy, path, compressor="sz_lr", error_bound=1e-3)
        print("\nAMRIC (SZ_L/R):")
        print(f"  compression ratio: {report.compression_ratio:6.1f}x")
        print(f"  mean PSNR:         {report.mean_psnr:6.1f} dB")
        print(f"  filter calls:      {report.total_filter_calls}")
        print(f"  redundant coarse cells removed: {report.removed_cells}")
        print(f"  file size on disk: {os.path.getsize(path) / 1e6:.2f} MB")

        # 3. compare against AMReX's original 1D compression and no compression
        amrex = repro.write(hierarchy, os.path.join(tmp, "plotfile_amrex.h5z"),
                            method="amrex_1d", error_bound=1e-2)
        nocomp = repro.write(hierarchy, os.path.join(tmp, "plotfile_raw.h5z"),
                             method="nocomp")
        print("\nComparison (same snapshot):")
        for rep in (report, amrex, nocomp):
            print(f"  {rep.method:16s} CR={rep.compression_ratio:7.1f}  "
                  f"PSNR={rep.mean_psnr if np.isfinite(rep.mean_psnr) else float('inf'):7.1f}  "
                  f"compressor launches={sum(w.compressor_launches for w in rep.rank_workloads)}")

        # 4. open the AMRIC plotfile from the file alone: the self-describing
        #    header replaces the old structural-template requirement
        with repro.open(path) as plotfile:
            print(f"\nOpened {os.path.basename(path)}: fields={plotfile.fields}, "
                  f"levels={plotfile.levels}, codec={plotfile.codec}")

            # lazy random access: decode only the chunks under one fine box
            name = "baryon_density"
            box = hierarchy[1].boxarray.boxes[0]
            patch = plotfile.read_field(name, level=1, box=box)
            print(f"  read_field({name!r}, level=1, box={box}) decoded "
                  f"{plotfile.stats.chunks_decoded} chunk(s) -> {patch.shape}")

            # full staged read (scan -> decode -> place -> refill)
            restored = plotfile.read()

        # 5. check the error bound end to end
        orig = hierarchy[1].multifab.to_global(name, hierarchy[1].domain)
        back = restored[1].multifab.to_global(name, restored[1].domain)
        mask = hierarchy[1].boxarray.coverage_mask(hierarchy[1].domain)
        max_err = np.max(np.abs(orig[mask] - back[mask]))
        bound = report.error_bound * hierarchy[1].multifab.value_range(name)
        print(f"\nRead-back check on '{name}': max error {max_err:.3e} <= bound {bound:.3e}: "
              f"{max_err <= bound * (1 + 1e-9)}")


if __name__ == "__main__":
    main()

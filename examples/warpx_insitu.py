#!/usr/bin/env python
"""WarpX-like in situ compression study (the smooth-data regime).

Shows the paper's WarpX-side findings at laptop scale: the electromagnetic
fields compress extremely well, SZ_Interp beats SZ_L/R on this smooth data,
and AMRIC's chunk handling keeps the compressor-launch count equal to the
number of ranks × fields while AMReX's 1024-element chunks need thousands.

    python examples/warpx_insitu.py [--steps 2]
"""

import argparse

import repro
from repro.analysis.reporting import format_table
from repro.apps import RUN_PRESETS, build_run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--preset", default="warpx_1",
                        choices=[k for k in RUN_PRESETS if k.startswith("warpx")])
    args = parser.parse_args()

    preset = RUN_PRESETS[args.preset]
    sim = build_run(preset)
    rows = []
    # every method goes through the one repro.write facade entry point
    writers = {
        "NoComp": dict(method="nocomp"),
        "AMReX": dict(method="amrex_1d", error_bound=preset.error_bound_amrex),
        "AMRIC(SZ_L/R)": dict(compressor="sz_lr",
                              error_bound=preset.error_bound_amric),
        "AMRIC(SZ_Interp)": dict(compressor="sz_interp",
                                 error_bound=preset.error_bound_amric),
    }
    for step in range(args.steps):
        hierarchy = sim.hierarchy
        pulse_boxes = len(hierarchy[1].boxarray) if hierarchy.nlevels > 1 else 0
        for name, write_kwargs in writers.items():
            report = repro.write(hierarchy, None, **write_kwargs)
            rows.append({
                "step": step,
                "fine boxes": pulse_boxes,
                "method": name,
                "CR": report.compression_ratio,
                "PSNR": report.mean_psnr,
                "launches": sum(w.compressor_launches for w in report.rank_workloads),
            })
        sim.advance()

    print(format_table(rows, title=f"WarpX in situ study — preset {preset.name}"))
    print("\nExpected shape (paper): CR(AMRIC) >> CR(AMReX); "
          "SZ_Interp > SZ_L/R on this smooth data; launches(AMRIC) << launches(AMReX).")


if __name__ == "__main__":
    main()

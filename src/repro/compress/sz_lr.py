"""SZ_L/R: block-based Lorenzo / linear-regression compression.

This is the reproduction of SZ 2.x's default pipeline, the compressor AMRIC
optimises:

1. the input is truncated into blocks (6×6×6 by default — §3.2 of the paper);
   edge blocks keep their natural (smaller) size exactly like SZ, which is the
   source of the "residue block" problem the adaptive-block-size optimisation
   addresses;
2. every block is predicted either by the Lorenzo predictor (dual-quantisation
   form, see :mod:`repro.compress.lorenzo`) or by a first-order regression
   plane (:mod:`repro.compress.regression`), whichever is estimated to encode
   smaller;
3. the per-block quantisation codes are Huffman-encoded — with a **single
   shared table** per call (this is exactly what the paper's unit SLE relies
   on when AMRIC hands SZ a list of unit blocks) — and deflated with zlib.

Public entry points
-------------------
``compress`` / ``compress_with_reconstruction`` / ``decompress``
    single-array API (the :class:`~repro.compress.base.Compressor` interface);
``compress_many`` / ``decompress_many``
    multi-array API used by AMRIC's pre-processing: each array (a "unit
    block") is predicted independently, while the lossless encoding is either
    shared (``shared_encoding=True`` → unit SLE) or per-array
    (``shared_encoding=False`` → the costly per-block-tree alternative).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.compress import container as ctn
from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.errorbound import ErrorBound
from repro.compress import huffman
from repro.compress.huffman import HuffmanCodec
from repro.compress.quantizer import DEFAULT_RADIUS
from repro.compress import regression

__all__ = ["SZLRCompressor"]

_LORENZO = 0
_REGRESSION = 1


# ----------------------------------------------------------------------
# region / block partition of an array without padding (SZ semantics)
# ----------------------------------------------------------------------
def _region_slices(shape: Tuple[int, ...], block_size: Tuple[int, ...]):
    """Yield the (up to 2^ndim) corner regions of an array.

    Each region is uniform in block shape: along every axis it is either the
    "full blocks" part (a multiple of the block size) or the remainder part
    (shorter than one block).  Iteration order is deterministic, which the
    decoder relies on.
    """
    per_axis: List[List[Tuple[int, int]]] = []
    for n, b in zip(shape, block_size):
        full = (n // b) * b
        segments: List[Tuple[int, int]] = []
        if full > 0:
            segments.append((0, full))
        if n - full > 0:
            segments.append((full, n))
        per_axis.append(segments)
    for combo in itertools.product(*per_axis):
        yield tuple(slice(s, e) for s, e in combo)


def _region_block_shape(region_shape: Tuple[int, ...],
                        block_size: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(min(b, s) for b, s in zip(block_size, region_shape))


def _split_region_into_blocks(region: np.ndarray,
                              block_shape: Tuple[int, ...]) -> np.ndarray:
    """Reshape a region whose extents are multiples of ``block_shape`` into
    an array of shape ``(nblocks,) + block_shape``."""
    grid = tuple(s // b for s, b in zip(region.shape, block_shape))
    interleaved = tuple(v for pair in zip(grid, block_shape) for v in pair)
    reshaped = region.reshape(interleaved)
    ndim = region.ndim
    grid_axes = tuple(range(0, 2 * ndim, 2))
    block_axes = tuple(range(1, 2 * ndim, 2))
    return np.ascontiguousarray(reshaped.transpose(grid_axes + block_axes)
                                .reshape((-1,) + block_shape))


def _merge_blocks_into_region(blocks: np.ndarray, region_shape: Tuple[int, ...],
                              block_shape: Tuple[int, ...]) -> np.ndarray:
    grid = tuple(s // b for s, b in zip(region_shape, block_shape))
    ndim = len(region_shape)
    stacked = blocks.reshape(grid + block_shape)
    order: List[int] = []
    for i in range(ndim):
        order.extend([i, ndim + i])
    return np.ascontiguousarray(stacked.transpose(order).reshape(region_shape))


def _blockwise_lorenzo(q_blocks: np.ndarray) -> np.ndarray:
    """Lorenzo difference applied independently within each block of a batch."""
    out = q_blocks.astype(np.int64, copy=True)
    for axis in range(1, out.ndim):
        prepend_shape = list(out.shape)
        prepend_shape[axis] = 1
        out = np.diff(out, axis=axis, prepend=np.zeros(prepend_shape, dtype=np.int64))
    return out


def _blockwise_lorenzo_inverse(deltas: np.ndarray) -> np.ndarray:
    out = deltas.astype(np.int64, copy=True)
    for axis in range(1, out.ndim):
        out = np.cumsum(out, axis=axis)
    return out


def _estimated_bits(values: np.ndarray, axis: Tuple[int, ...]) -> np.ndarray:
    """Cheap per-block size estimate for signed residual values."""
    return np.sum(2.0 * np.log2(1.0 + np.abs(values)) + 1.0, axis=axis)


# ----------------------------------------------------------------------
# intermediate encoding of one array
# ----------------------------------------------------------------------
@dataclass
class _EncodedArray:
    """Everything produced by predicting/quantising one array (pre-Huffman)."""

    shape: Tuple[int, ...]
    codes: np.ndarray                 # uint32, one per cell, concatenated region/block order
    selection: np.ndarray             # uint8 per block (0 = Lorenzo, 1 = regression)
    anchors: np.ndarray               # int64, one per Lorenzo block
    lorenzo_outliers: np.ndarray      # int64
    regression_outliers: np.ndarray   # float64
    regression_coeffs: np.ndarray     # float64 (n_regression_blocks, ndim + 1)
    reconstruction: np.ndarray

    @property
    def metadata_nbytes(self) -> int:
        """Bytes of per-array side information (outside the Huffman stream)."""
        return (self.selection.size // 8 + 1 + self.anchors.size * 8
                + self.lorenzo_outliers.size * 8 + self.regression_outliers.size * 8
                + self.regression_coeffs.size * 4)


class SZLRCompressor(Compressor):
    """SZ with Lorenzo + linear-regression block predictors (``SZ_L/R``)."""

    name = "sz_lr"

    def __init__(self, error_bound: ErrorBound | float, block_size: int | Sequence[int] = 6,
                 mode: str = "rel", radius: int = DEFAULT_RADIUS,
                 lossless_level: int = 6):
        super().__init__(error_bound, mode)
        self._block_size_spec = block_size
        self.radius = int(radius)
        if self.radius < 2:
            raise ValueError("radius must be >= 2")
        self.lossless_level = int(lossless_level)
        #: the shared Huffman table used by the most recent compress_many call
        self.last_shared_codec: HuffmanCodec | None = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _block_size_for(self, ndim: int) -> Tuple[int, ...]:
        bs = self._block_size_spec
        if np.isscalar(bs):
            return (int(bs),) * ndim
        bs = tuple(int(b) for b in bs)  # type: ignore[arg-type]
        if len(bs) != ndim:
            raise ValueError(f"block_size {bs} does not match array dimension {ndim}")
        return bs

    @property
    def block_size(self) -> int | Sequence[int]:
        return self._block_size_spec

    # ------------------------------------------------------------------
    # core per-array encoder
    # ------------------------------------------------------------------
    def _encode_array(self, data: np.ndarray, abs_eb: float) -> _EncodedArray:
        """Predict and quantise one array.

        The array is cut into corner regions (full-block part / remainder part
        per axis).  Each region independently chooses between

        * the Lorenzo predictor applied across the *whole region* (dual
          quantisation; prediction freely crosses SZ-block boundaries, exactly
          like the original SZ scan), or
        * the per-SZ-block regression predictor.

        Prediction never crosses region boundaries, and never crosses the
        boundary of the array itself — which is what makes the unit-SLE
        behaviour of AMRIC (prediction confined to unit blocks) fall out of
        the ``compress_many`` API, and what makes thin remainder regions
        ("residue blocks", Fig. 8 of the paper) predict poorly.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        ndim = data.ndim
        block_size = self._block_size_for(ndim)
        radius = self.radius

        codes_parts: List[np.ndarray] = []
        selection_parts: List[np.ndarray] = []
        anchors_parts: List[np.ndarray] = []
        lor_outlier_parts: List[np.ndarray] = []
        reg_outlier_parts: List[np.ndarray] = []
        reg_coeff_parts: List[np.ndarray] = []
        reconstruction = np.empty_like(data)

        for region_sl in _region_slices(data.shape, block_size):
            region = data[region_sl]
            block_shape = _region_block_shape(region.shape, block_size)
            blocks = _split_region_into_blocks(region, block_shape)
            block_axes = tuple(range(1, blocks.ndim))

            # --- Lorenzo path: dual quantisation across the region ----------
            q = np.rint(region / (2.0 * abs_eb)).astype(np.int64)
            deltas = q.copy()
            for axis in range(ndim):
                prepend_shape = list(deltas.shape)
                prepend_shape[axis] = 1
                deltas = np.diff(deltas, axis=axis,
                                 prepend=np.zeros(prepend_shape, dtype=np.int64))
            corner = (0,) * ndim
            anchor = np.int64(deltas[corner])
            deltas[corner] = 0
            recon_lorenzo = q * (2.0 * abs_eb)
            lorenzo_bits = float(np.sum(2.0 * np.log2(1.0 + np.abs(deltas)) + 1.0)) + 64.0

            # --- Regression path: per SZ-block plane fit --------------------
            model, preds = regression.fit_and_predict(blocks, abs_eb)
            residuals = blocks - preds
            reg_raw = np.rint(residuals / (2.0 * abs_eb)).astype(np.int64)
            reg_recon_err = reg_raw * (2.0 * abs_eb)
            reg_outlier_mask = (np.abs(reg_raw) >= radius) | \
                (np.abs(reg_recon_err - residuals) > abs_eb * (1 + 1e-12))
            recon_regression = preds + np.where(reg_outlier_mask, residuals, reg_recon_err)
            regression_bits = float(
                np.sum(2.0 * np.log2(1.0 + np.abs(np.where(reg_outlier_mask, 0, reg_raw))) + 1.0)
                + 64.0 * reg_outlier_mask.sum()
                + 32.0 * (ndim + 1) * blocks.shape[0])

            # --- per-region choice -------------------------------------------
            use_regression = bool(regression_bits < lorenzo_bits)
            selection_parts.append(np.asarray([use_regression], dtype=np.uint8))

            if use_regression:
                codes = np.where(reg_outlier_mask, 0, reg_raw + radius).astype(np.uint32)
                codes_parts.append(codes.reshape(codes.shape[0], -1).ravel())
                reg_outlier_parts.append(residuals[reg_outlier_mask])
                reg_coeff_parts.append(model.coefficients)
                reconstruction[region_sl] = _merge_blocks_into_region(
                    recon_regression, region.shape, block_shape)
            else:
                lor_outlier_mask = np.abs(deltas) >= radius
                codes = np.where(lor_outlier_mask, 0, deltas + radius).astype(np.uint32)
                codes_parts.append(codes.ravel())
                anchors_parts.append(np.asarray([anchor], dtype=np.int64))
                lor_outlier_parts.append(deltas[lor_outlier_mask])
                reconstruction[region_sl] = recon_lorenzo

        return _EncodedArray(
            shape=tuple(int(s) for s in data.shape),
            codes=np.concatenate(codes_parts) if codes_parts else np.zeros(0, np.uint32),
            selection=np.concatenate(selection_parts) if selection_parts else np.zeros(0, np.uint8),
            anchors=np.concatenate(anchors_parts) if anchors_parts else np.zeros(0, np.int64),
            lorenzo_outliers=np.concatenate(lor_outlier_parts) if lor_outlier_parts else np.zeros(0, np.int64),
            regression_outliers=np.concatenate(reg_outlier_parts) if reg_outlier_parts else np.zeros(0, np.float64),
            regression_coeffs=(np.concatenate(reg_coeff_parts) if reg_coeff_parts
                               else np.zeros((0, ndim + 1), np.float64)),
            reconstruction=reconstruction,
        )

    def _decode_array(self, shape: Tuple[int, ...], abs_eb: float, codes: np.ndarray,
                      selection: np.ndarray, anchors: np.ndarray,
                      lorenzo_outliers: np.ndarray, regression_outliers: np.ndarray,
                      regression_coeffs: np.ndarray) -> np.ndarray:
        ndim = len(shape)
        block_size = self._block_size_for(ndim)
        radius = self.radius
        out = np.empty(shape, dtype=np.float64)

        code_pos = 0
        region_index = 0
        anchor_pos = 0
        lor_out_pos = 0
        reg_out_pos = 0
        coeff_pos = 0

        for region_sl in _region_slices(shape, block_size):
            region_shape = tuple(s.stop - s.start for s in region_sl)
            block_shape = _region_block_shape(region_shape, block_size)
            block_volume = int(np.prod(block_shape))
            region_volume = int(np.prod(region_shape))
            nblocks = region_volume // block_volume

            region_codes = codes[code_pos:code_pos + region_volume].astype(np.int64)
            code_pos += region_volume

            use_regression = bool(selection[region_index])
            region_index += 1

            if use_regression:
                reg_codes = region_codes.reshape((nblocks,) + block_shape)
                coeffs = regression_coeffs[coeff_pos:coeff_pos + nblocks]
                coeff_pos += nblocks
                model = regression.RegressionModel(coefficients=coeffs, block_shape=block_shape)
                preds = regression.predict_blocks(model)
                errors = (reg_codes - radius) * (2.0 * abs_eb)
                outlier_mask = reg_codes == 0
                n_out = int(outlier_mask.sum())
                if n_out:
                    errors[outlier_mask] = regression_outliers[reg_out_pos:reg_out_pos + n_out]
                    reg_out_pos += n_out
                else:
                    errors[outlier_mask] = 0.0
                out[region_sl] = _merge_blocks_into_region(
                    preds + errors, region_shape, block_shape)
            else:
                deltas = region_codes.reshape(region_shape) - radius
                outlier_mask = region_codes.reshape(region_shape) == 0
                n_out = int(outlier_mask.sum())
                if n_out:
                    deltas[outlier_mask] = lorenzo_outliers[lor_out_pos:lor_out_pos + n_out]
                    lor_out_pos += n_out
                else:
                    deltas[outlier_mask] = 0
                deltas[(0,) * ndim] = anchors[anchor_pos]
                anchor_pos += 1
                q = deltas
                for axis in range(ndim):
                    q = np.cumsum(q, axis=axis)
                out[region_sl] = q * (2.0 * abs_eb)

        return out

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def _serialize(self, encoded: Sequence[_EncodedArray], abs_eb: float,
                   shared_encoding: bool, dtype: str,
                   codec: HuffmanCodec | None = None) -> Tuple[bytes, HuffmanCodec | None]:
        meta = {
            "abs_eb": abs_eb,
            "radius": self.radius,
            "block_size": list(self._block_size_for(len(encoded[0].shape))),
            "shared": bool(shared_encoding),
            "dtype": dtype,
            "shapes": [list(e.shape) for e in encoded],
            "sync_interval": huffman.SYNC_INTERVAL,
        }
        sections: dict = {}

        if shared_encoding:
            # reuse a caller-provided codec (one SLE table across chunks) when
            # it covers this chunk's symbols; otherwise build one from scratch.
            # encode() itself detects missing symbols (KeyError), so coverage
            # costs no extra lookup pass on the hot path.
            streams = None
            if codec is not None:
                try:
                    streams = [codec.encode(e.codes) for e in encoded]
                except KeyError:
                    streams = None
            if streams is None:
                codec = HuffmanCodec.from_multiple([e.codes for e in encoded])
                streams = [codec.encode(e.codes) for e in encoded]
            sections.update(ctn.pack_huffman(streams, self.lossless_level))
        else:
            # one table + payload per array (the costly non-SLE alternative)
            codec = None
            streams = [HuffmanCodec.from_data(e.codes).encode(e.codes) for e in encoded]
            sections["huff_individual"] = ctn.pack_huffman_individual(
                streams, self.lossless_level)

        sections["selection"] = ctn.pack_zbytes(
            np.packbits(np.concatenate([e.selection for e in encoded])).tobytes(),
            self.lossless_level)
        sections["anchors"] = ctn.pack_zarray(
            np.concatenate([e.anchors for e in encoded]), self.lossless_level)
        sections["lorenzo_outliers"] = ctn.pack_zarray(
            np.concatenate([e.lorenzo_outliers for e in encoded]), self.lossless_level)
        sections["regression_outliers"] = ctn.pack_zarray(
            np.concatenate([e.regression_outliers for e in encoded]), self.lossless_level)
        coeffs = np.concatenate([e.regression_coeffs for e in encoded], axis=0) \
            if encoded else np.zeros((0, 1))
        sections["regression_coeffs"] = ctn.pack_zarray(
            coeffs.astype(np.float32), self.lossless_level)
        # per-array counts so the decoder can split the concatenated side arrays
        counts = np.asarray(
            [[e.selection.size, e.anchors.size, e.lorenzo_outliers.size,
              e.regression_outliers.size, e.regression_coeffs.shape[0], e.codes.size]
             for e in encoded], dtype=np.int64)
        sections["counts"] = counts.tobytes()
        return ctn.pack_container(self.name, meta, sections), codec

    def _deserialize(self, payload: bytes):
        cont = ctn.unpack_container(payload, expect_codec=self.name)
        meta, sections = cont.meta, cont.sections
        counts = np.frombuffer(sections["counts"], dtype=np.int64).reshape(-1, 6)

        selection_all = np.unpackbits(
            np.frombuffer(ctn.unpack_zbytes(sections["selection"]), dtype=np.uint8),
            count=int(counts[:, 0].sum())).astype(np.uint8)
        anchors_all = ctn.unpack_zarray(sections["anchors"]).astype(np.int64)
        lor_out_all = ctn.unpack_zarray(sections["lorenzo_outliers"]).astype(np.int64)
        reg_out_all = ctn.unpack_zarray(sections["regression_outliers"]).astype(np.float64)
        coeffs_all = ctn.unpack_zarray(sections["regression_coeffs"]).astype(np.float64)

        # decode Huffman streams back to per-array code arrays
        interval = int(meta.get("sync_interval", 0))
        ncodes = [int(c) for c in counts[:, 5]]
        if meta["shared"]:
            codes_per_array = ctn.unpack_huffman(
                sections, sync_interval=interval, fallback_ncodes=ncodes)
        else:
            codes_per_array = ctn.unpack_huffman_individual(
                sections["huff_individual"], ncodes, interval)

        return meta, counts, codes_per_array, selection_all, anchors_all, \
            lor_out_all, reg_out_all, coeffs_all

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        buffer, recons = self.compress_many_with_reconstruction([data])
        return buffer, recons[0]

    def compress_many(self, arrays: Sequence[np.ndarray], shared_encoding: bool = True,
                      value_range: float | None = None,
                      codec: HuffmanCodec | None = None) -> CompressedBuffer:
        buffer, _ = self.compress_many_with_reconstruction(
            arrays, shared_encoding=shared_encoding, value_range=value_range, codec=codec)
        return buffer

    def compress_many_with_reconstruction(
            self, arrays: Sequence[np.ndarray], shared_encoding: bool = True,
            value_range: float | None = None,
            codec: HuffmanCodec | None = None) -> Tuple[CompressedBuffer, List[np.ndarray]]:
        """Compress several arrays into one buffer (AMRIC unit-block API).

        ``codec`` optionally supplies a pre-built shared Huffman table (SLE
        across *chunks*); it is used only when it covers every symbol of this
        call, and the table actually used is exposed as
        :attr:`last_shared_codec` so callers can carry it to the next chunk.
        """
        if not len(arrays):
            raise ValueError("need at least one array")
        input_dtype = str(np.asarray(arrays[0]).dtype)
        arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
        if value_range is None:
            gmin = min(float(a.min()) for a in arrays)
            gmax = max(float(a.max()) for a in arrays)
            value_range = gmax - gmin
        abs_eb = self.error_bound.resolve(value_range=value_range)
        encoded = [self._encode_array(a, abs_eb) for a in arrays]
        payload, used_codec = self._serialize(encoded, abs_eb, shared_encoding,
                                              input_dtype, codec=codec)
        self.last_shared_codec = used_codec
        original_nbytes = sum(
            a.size * np.dtype(input_dtype).itemsize for a in arrays)
        buffer = CompressedBuffer(
            payload=payload,
            original_shape=arrays[0].shape if len(arrays) == 1 else (original_nbytes // 8,),
            original_dtype=input_dtype,
            original_nbytes=original_nbytes,
            codec=self.name,
            meta={"abs_eb": abs_eb, "narrays": len(arrays),
                  "shared_encoding": bool(shared_encoding),
                  "shapes": [a.shape for a in arrays]},
        )
        return buffer, [e.reconstruction for e in encoded]

    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        arrays = self.decompress_many(buffer)
        if len(arrays) != 1:
            raise ValueError("buffer holds multiple arrays; use decompress_many")
        return arrays[0]

    def decompress_many(self, buffer: CompressedBuffer | bytes) -> List[np.ndarray]:
        payload = self._payload_of(buffer)
        meta, counts, codes_per_array, selection_all, anchors_all, lor_out_all, \
            reg_out_all, coeffs_all = self._deserialize(payload)
        abs_eb = float(meta["abs_eb"])
        shapes = [tuple(s) for s in meta["shapes"]]

        out: List[np.ndarray] = []
        sel_pos = anc_pos = lor_pos = reg_pos = coeff_pos = 0
        for i, shape in enumerate(shapes):
            n_sel, n_anc, n_lor, n_reg, n_coeff, _ = (int(c) for c in counts[i])
            selection = selection_all[sel_pos:sel_pos + n_sel]
            anchors = anchors_all[anc_pos:anc_pos + n_anc]
            lor_outliers = lor_out_all[lor_pos:lor_pos + n_lor]
            reg_outliers = reg_out_all[reg_pos:reg_pos + n_reg]
            coeffs = coeffs_all[coeff_pos:coeff_pos + n_coeff]
            sel_pos += n_sel
            anc_pos += n_anc
            lor_pos += n_lor
            reg_pos += n_reg
            coeff_pos += n_coeff
            out.append(self._decode_array(shape, abs_eb, codes_per_array[i], selection,
                                          anchors, lor_outliers, reg_outliers, coeffs))
        dtype = np.dtype(meta["dtype"])
        return [a.astype(dtype) if dtype != np.float64 else a for a in out]

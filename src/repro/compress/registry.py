"""The codec registry: compressors resolved by name, not by if/elif chains.

``AMRICConfig.compressor``, :class:`~repro.core.filter_mod.AMRICLevelFilter`
and the baseline writers all used to hard-code which class a codec name maps
to; adding a codec meant editing every one of them.  The registry is the one
place that knows the mapping:

* :func:`register_codec` — declare a codec (name, factory, capabilities);
* :func:`resolve_codec` — name → :class:`CodecSpec`, with a helpful
  :class:`ValueError` listing the registered names on a miss;
* :func:`create_codec` — name → constructed :class:`Compressor`, forwarding
  only the keyword options the codec declares it accepts (so callers can
  offer a superset of options without caring which codec consumes which).

The four built-in codecs are registered at import time; external code can
register more (the registry is deliberately process-global, mirroring HDF5's
filter registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.compress.base import Compressor
from repro.compress.errorbound import ErrorBound
from repro.compress.sz_lr import SZLRCompressor
from repro.compress.sz_interp import SZInterpCompressor
from repro.compress.sz1d import SZ1DCompressor
from repro.compress.zfp_like import ZFPLikeCompressor

__all__ = [
    "CodecSpec",
    "register_codec",
    "resolve_codec",
    "create_codec",
    "available_codecs",
    "is_registered",
]


@dataclass(frozen=True)
class CodecSpec:
    """Everything the rest of the system needs to know about one codec."""

    name: str
    factory: Callable[..., Compressor]
    #: keyword options the factory accepts beyond (error_bound, mode)
    options: Tuple[str, ...] = ()
    #: True when the codec offers the multi-array (unit-block) API
    #: ``compress_many_with_reconstruction`` that unit SLE relies on
    supports_many: bool = False
    description: str = ""

    def create(self, error_bound: ErrorBound | float, mode: str = "rel",
               **options) -> Compressor:
        """Build the codec, keeping only the options this codec accepts."""
        kwargs = {k: v for k, v in options.items() if k in self.options}
        return self.factory(error_bound, mode=mode, **kwargs)


_REGISTRY: Dict[str, CodecSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_codec(spec: CodecSpec, aliases: Tuple[str, ...] = ()) -> None:
    """Add a codec to the registry (name and aliases must be unused)."""
    for name in (spec.name, *aliases):
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"codec name {name!r} already registered")
    _REGISTRY[spec.name] = spec
    for alias in aliases:
        _ALIASES[alias] = spec.name


def is_registered(name: str) -> bool:
    return name in _REGISTRY or name in _ALIASES


def resolve_codec(name: str) -> CodecSpec:
    """Name (or alias) → spec; ValueError listing known codecs on a miss."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise ValueError(
            f"unknown codec {name!r}; registered codecs: {available_codecs()}")
    return _REGISTRY[canonical]


def create_codec(name: str, error_bound: ErrorBound | float, mode: str = "rel",
                 **options) -> Compressor:
    """Construct a codec by name (see :meth:`CodecSpec.create`)."""
    return resolve_codec(name).create(error_bound, mode=mode, **options)


def available_codecs() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# built-in codecs
# ----------------------------------------------------------------------
register_codec(CodecSpec(
    name="sz_lr", factory=SZLRCompressor,
    options=("block_size", "radius", "lossless_level"),
    supports_many=True,
    description="SZ 2.x-style Lorenzo + per-block linear regression"))
register_codec(CodecSpec(
    name="sz_interp", factory=SZInterpCompressor,
    options=("anchor_stride", "radius", "lossless_level", "cubic"),
    description="SZ3-style multi-level interpolation prediction"))
register_codec(CodecSpec(
    name="sz_1d", factory=SZ1DCompressor,
    options=("radius", "lossless_level"),
    description="1D Lorenzo codec behind AMReX's original in situ compression"),
    aliases=("sz1d",))
register_codec(CodecSpec(
    name="zfp_like", factory=ZFPLikeCompressor,
    options=("block_size", "radius", "lossless_level"),
    description="fixed-block orthogonal-transform comparator"))


def _temporal_delta_factory(error_bound, mode: str = "rel", **options):
    # imported lazily: repro.compress.temporal pulls in the h5lite filter base,
    # which would cycle back into this package during its own import
    from repro.compress.temporal import TemporalDeltaCodec

    return TemporalDeltaCodec(error_bound, mode=mode, **options)


register_codec(CodecSpec(
    name="temporal_delta", factory=_temporal_delta_factory,
    options=("offset", "lossless_level"),
    description="fixed-grid value quantisation, delta-coded across timesteps"))

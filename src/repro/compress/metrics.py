"""Compression quality metrics (PSNR, NRMSE, ratio, bitrate).

PSNR follows the paper's definition (footnote 2):

``PSNR = 20·log10(R) − 10·log10( Σ e_i² / N )``

where ``R`` is the value range of the *original* data and ``e_i`` the
point-wise absolute errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "mse",
    "nrmse",
    "psnr",
    "max_abs_error",
    "compression_ratio",
    "bitrate",
    "CompressionStats",
]


def _check(original: np.ndarray, reconstructed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: original {original.shape} vs reconstructed {reconstructed.shape}")
    if original.size == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return original, reconstructed


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original, reconstructed = _check(original, reconstructed)
    return float(np.mean((original - reconstructed) ** 2))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Maximum point-wise absolute error (what the error bound constrains)."""
    original, reconstructed = _check(original, reconstructed)
    return float(np.max(np.abs(original - reconstructed)))


def value_range(original: np.ndarray) -> float:
    original = np.asarray(original, dtype=np.float64)
    r = float(original.max() - original.min())
    return r


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalised by the value range."""
    r = value_range(original)
    if r == 0:
        r = 1.0
    return float(np.sqrt(mse(original, reconstructed)) / r)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (paper definition, footnote 2)."""
    original, reconstructed = _check(original, reconstructed)
    r = value_range(original)
    err = mse(original, reconstructed)
    if err == 0:
        return float("inf")
    if r == 0:
        r = 1.0
    return float(20.0 * np.log10(r) - 10.0 * np.log10(err))


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """original size / compressed size."""
    if compressed_nbytes <= 0:
        return float("inf")
    return original_nbytes / compressed_nbytes


def bitrate(original_nelements: int, compressed_nbytes: int) -> float:
    """Bits per element of the compressed representation."""
    if original_nelements <= 0:
        raise ValueError("need at least one element")
    return 8.0 * compressed_nbytes / original_nelements


@dataclass
class CompressionStats:
    """A single (method, dataset, error bound) measurement record."""

    method: str
    error_bound: float
    original_nbytes: int
    compressed_nbytes: int
    psnr: float
    max_error: float
    nrmse: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.original_nbytes, self.compressed_nbytes)

    @property
    def bitrate(self) -> float:
        return 64.0 * self.compressed_nbytes / max(self.original_nbytes, 1)

    @staticmethod
    def measure(method: str, error_bound: float, original: np.ndarray,
                reconstructed: np.ndarray, compressed_nbytes: int,
                **extra: float) -> "CompressionStats":
        """Build a record from an original/reconstruction pair."""
        return CompressionStats(
            method=method,
            error_bound=float(error_bound),
            original_nbytes=int(np.asarray(original).nbytes),
            compressed_nbytes=int(compressed_nbytes),
            psnr=psnr(original, reconstructed),
            max_error=max_abs_error(original, reconstructed),
            nrmse=nrmse(original, reconstructed),
            extra=dict(extra),
        )

    def as_row(self) -> Dict[str, float | str]:
        """Flat dict for table reporting."""
        row: Dict[str, float | str] = {
            "method": self.method,
            "error_bound": self.error_bound,
            "compression_ratio": self.compression_ratio,
            "psnr": self.psnr,
            "max_error": self.max_error,
            "nrmse": self.nrmse,
        }
        row.update(self.extra)
        return row

"""SZ 1D: the codec behind AMReX's original in situ compression.

AMReX's HDF5 plotfile compression hands the filter a *linearised* buffer (all
spatial structure lost) and the filter compresses it with SZ in 1D.  The codec
here mirrors that: a 1D Lorenzo predictor (dual-quantisation form), one
Huffman table per call, and a zlib back-end.  The small-chunk behaviour the
paper criticises (one compressor launch per 1024-element HDF5 chunk) is
imposed by the filter layer, not by this codec — see
:mod:`repro.h5lite.filters` and :mod:`repro.baselines.amrex_1d`.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Tuple

import numpy as np

from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.errorbound import ErrorBound
from repro.compress import huffman
from repro.compress.huffman import HuffmanCodec, HuffmanEncoded
from repro.compress.lossless import (
    pack_array,
    pack_arrays,
    pack_sections,
    unpack_array,
    unpack_arrays,
    unpack_sections,
    zlib_compress,
    zlib_decompress,
)
from repro.compress.quantizer import DEFAULT_RADIUS

__all__ = ["SZ1DCompressor"]


class SZ1DCompressor(Compressor):
    """1D Lorenzo (first-difference) error-bounded compressor."""

    name = "sz_1d"

    def __init__(self, error_bound: ErrorBound | float, mode: str = "rel",
                 radius: int = DEFAULT_RADIUS, lossless_level: int = 6):
        super().__init__(error_bound, mode)
        self.radius = int(radius)
        self.lossless_level = int(lossless_level)

    # ------------------------------------------------------------------
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        input_dtype = str(np.asarray(data).dtype)
        original_nbytes = int(np.asarray(data).nbytes)
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        original_shape = tuple(int(s) for s in data.shape)
        flat = data.reshape(-1)
        abs_eb = self.resolve_eb(flat)

        q = np.rint(flat / (2.0 * abs_eb)).astype(np.int64)
        deltas = np.diff(q, prepend=np.int64(0))
        anchor = int(deltas[0])
        deltas = deltas.copy()
        deltas[0] = 0
        outlier_mask = np.abs(deltas) >= self.radius
        codes = np.where(outlier_mask, 0, deltas + self.radius).astype(np.uint32)
        outliers = deltas[outlier_mask].astype(np.int64)
        recon = (q * (2.0 * abs_eb)).reshape(original_shape)

        codec = HuffmanCodec.from_data(codes)
        stream = codec.encode(codes)
        meta = {
            "codec": self.name,
            "abs_eb": abs_eb,
            "radius": self.radius,
            "shape": list(original_shape),
            "dtype": input_dtype,
            "nbits": stream.nbits,
            "ncodes": int(codes.size),
            "anchor": anchor,
            "sync_interval": huffman.SYNC_INTERVAL,
        }
        payload = pack_sections({
            "meta": json.dumps(meta).encode("utf-8"),
            "huff_table": pack_arrays(stream.table_symbols, stream.table_lengths),
            "huff_payload": zlib_compress(stream.payload, self.lossless_level),
            "huff_sync": huffman.pack_sync([stream.sync]),
            "outliers": zlib_compress(pack_array(outliers), self.lossless_level),
        })
        buffer = CompressedBuffer(
            payload=payload,
            original_shape=original_shape,
            original_dtype=input_dtype,
            original_nbytes=original_nbytes,
            codec=self.name,
            meta={"abs_eb": abs_eb},
        )
        return buffer, recon

    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        sections = unpack_sections(self._payload_of(buffer))
        meta = json.loads(sections["meta"].decode("utf-8"))
        abs_eb = float(meta["abs_eb"])
        radius = int(meta["radius"])

        symbols, lengths = unpack_arrays(sections["huff_table"])
        codec = HuffmanCodec(symbols, lengths)
        sync = huffman.unpack_sync_for(sections.get("huff_sync"),
                                       meta.get("sync_interval", 0),
                                       [int(meta["ncodes"])])[0]
        stream = HuffmanEncoded(zlib_decompress(sections["huff_payload"]), int(meta["nbits"]),
                                int(meta["ncodes"]), symbols, lengths, sync=sync)
        codes = codec.decode(stream).astype(np.int64)
        outliers = unpack_array(zlib_decompress(sections["outliers"])).astype(np.int64)

        deltas = codes - radius
        outlier_mask = codes == 0
        if outliers.size:
            deltas[outlier_mask] = outliers
        else:
            deltas[outlier_mask] = 0
        deltas[0] = int(meta["anchor"])
        q = np.cumsum(deltas)
        recon = (q * (2.0 * abs_eb)).reshape(tuple(meta["shape"]))
        dtype = np.dtype(meta["dtype"])
        return recon.astype(dtype) if dtype != np.float64 else recon

    # ------------------------------------------------------------------
    def compress_chunked(self, data: np.ndarray, chunk_elements: int
                         ) -> Tuple[List[CompressedBuffer], np.ndarray]:
        """Compress a linearised buffer chunk by chunk (AMReX's small-chunk mode).

        Each chunk is an independent compression (its own Huffman table and
        value range), exactly the behaviour of one HDF5 filter invocation per
        chunk.  Returns the per-chunk buffers and the full reconstruction.
        """
        if chunk_elements < 2:
            raise ValueError("chunk_elements must be >= 2")
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        buffers: List[CompressedBuffer] = []
        recon = np.empty_like(flat)
        for start in range(0, flat.size, chunk_elements):
            chunk = flat[start:start + chunk_elements]
            buf, rec = self.compress_with_reconstruction(chunk)
            buffers.append(buf)
            recon[start:start + chunk.size] = rec
        return buffers, recon.reshape(np.asarray(data).shape)

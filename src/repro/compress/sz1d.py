"""SZ 1D: the codec behind AMReX's original in situ compression.

AMReX's HDF5 plotfile compression hands the filter a *linearised* buffer (all
spatial structure lost) and the filter compresses it with SZ in 1D.  The codec
here mirrors that: a 1D Lorenzo predictor (dual-quantisation form), one
Huffman table per call, and a zlib back-end.  The small-chunk behaviour the
paper criticises (one compressor launch per 1024-element HDF5 chunk) is
imposed by the filter layer, not by this codec — see
:mod:`repro.h5lite.filters` and :mod:`repro.baselines.amrex_1d`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.compress import container as ctn
from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.errorbound import ErrorBound
from repro.compress import huffman
from repro.compress.huffman import HuffmanCodec
from repro.compress.quantizer import DEFAULT_RADIUS

__all__ = ["SZ1DCompressor"]


class SZ1DCompressor(Compressor):
    """1D Lorenzo (first-difference) error-bounded compressor."""

    name = "sz_1d"

    def __init__(self, error_bound: ErrorBound | float, mode: str = "rel",
                 radius: int = DEFAULT_RADIUS, lossless_level: int = 6):
        super().__init__(error_bound, mode)
        self.radius = int(radius)
        self.lossless_level = int(lossless_level)

    # ------------------------------------------------------------------
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        input_dtype = str(np.asarray(data).dtype)
        original_nbytes = int(np.asarray(data).nbytes)
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        original_shape = tuple(int(s) for s in data.shape)
        flat = data.reshape(-1)
        abs_eb = self.resolve_eb(flat)

        q = np.rint(flat / (2.0 * abs_eb)).astype(np.int64)
        deltas = np.diff(q, prepend=np.int64(0))
        anchor = int(deltas[0])
        deltas = deltas.copy()
        deltas[0] = 0
        outlier_mask = np.abs(deltas) >= self.radius
        codes = np.where(outlier_mask, 0, deltas + self.radius).astype(np.uint32)
        outliers = deltas[outlier_mask].astype(np.int64)
        recon = (q * (2.0 * abs_eb)).reshape(original_shape)

        codec = HuffmanCodec.from_data(codes)
        stream = codec.encode(codes)
        meta = {
            "abs_eb": abs_eb,
            "radius": self.radius,
            "shape": list(original_shape),
            "dtype": input_dtype,
            "anchor": anchor,
            "sync_interval": huffman.SYNC_INTERVAL,
        }
        sections = ctn.pack_huffman([stream], self.lossless_level)
        sections["outliers"] = ctn.pack_zarray(outliers, self.lossless_level)
        payload = ctn.pack_container(self.name, meta, sections)
        buffer = CompressedBuffer(
            payload=payload,
            original_shape=original_shape,
            original_dtype=input_dtype,
            original_nbytes=original_nbytes,
            codec=self.name,
            meta={"abs_eb": abs_eb},
        )
        return buffer, recon

    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        cont = ctn.unpack_container(self._payload_of(buffer), expect_codec=self.name)
        meta, sections = cont.meta, cont.sections
        abs_eb = float(meta["abs_eb"])
        radius = int(meta["radius"])

        # streams from before the unified container kept nbits/ncodes in meta
        codes = ctn.unpack_huffman(
            sections, sync_interval=int(meta.get("sync_interval", 0)),
            fallback_nbits=[int(meta["nbits"])] if "nbits" in meta else None,
            fallback_ncodes=[int(meta["ncodes"])] if "ncodes" in meta else None,
        )[0].astype(np.int64)
        outliers = ctn.unpack_zarray(sections["outliers"]).astype(np.int64)

        deltas = codes - radius
        outlier_mask = codes == 0
        if outliers.size:
            deltas[outlier_mask] = outliers
        else:
            deltas[outlier_mask] = 0
        deltas[0] = int(meta["anchor"])
        q = np.cumsum(deltas)
        recon = (q * (2.0 * abs_eb)).reshape(tuple(meta["shape"]))
        dtype = np.dtype(meta["dtype"])
        return recon.astype(dtype) if dtype != np.float64 else recon

    # ------------------------------------------------------------------
    def compress_chunked(self, data: np.ndarray, chunk_elements: int
                         ) -> Tuple[List[CompressedBuffer], np.ndarray]:
        """Compress a linearised buffer chunk by chunk (AMReX's small-chunk mode).

        Each chunk is an independent compression (its own Huffman table and
        value range), exactly the behaviour of one HDF5 filter invocation per
        chunk.  Returns the per-chunk buffers and the full reconstruction.
        """
        if chunk_elements < 2:
            raise ValueError("chunk_elements must be >= 2")
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        buffers: List[CompressedBuffer] = []
        recon = np.empty_like(flat)
        for start in range(0, flat.size, chunk_elements):
            chunk = flat[start:start + chunk_elements]
            buf, rec = self.compress_with_reconstruction(chunk)
            buffers.append(buf)
            recon[start:start + chunk.size] = rec
        return buffers, recon.reshape(np.asarray(data).shape)

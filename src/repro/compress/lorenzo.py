"""Lorenzo prediction via dual quantisation.

The classic SZ Lorenzo predictor forms each point's prediction from its
already-*reconstructed* neighbours, which makes the scan inherently
sequential.  cuSZ introduced the equivalent **dual-quantisation** formulation:

1. pre-quantise the data onto the error-bound grid,
   ``q = round(x / (2*eb))`` (so ``|x - 2*eb*q| <= eb``);
2. apply the Lorenzo difference operator *in the integer domain*
   (a cascade of first differences along each axis);
3. entropy-code the integer deltas.

Because step 2 is exact integer arithmetic, decompression (a cascade of
cumulative sums) reproduces ``q`` bit-for-bit and the overall error stays
bounded by ``eb``.  Both directions are pure numpy and need no Python loops,
which is why this reproduction adopts the dual-quantisation formulation (see
DESIGN.md §1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "prequantize",
    "postquantize",
    "lorenzo_transform",
    "lorenzo_inverse",
    "lorenzo_encode",
    "lorenzo_decode",
]


def prequantize(data: np.ndarray, eb: float) -> np.ndarray:
    """Quantise data onto the error-bound grid: ``q = round(x / (2*eb))`` (int64)."""
    if eb <= 0:
        raise ValueError("absolute error bound must be positive")
    return np.rint(np.asarray(data, dtype=np.float64) / (2.0 * eb)).astype(np.int64)


def postquantize(q: np.ndarray, eb: float) -> np.ndarray:
    """Reconstruct values from grid indices: ``x̂ = 2*eb*q``."""
    return np.asarray(q, dtype=np.float64) * (2.0 * eb)


def lorenzo_transform(q: np.ndarray) -> np.ndarray:
    """N-dimensional Lorenzo difference of an integer field.

    Equivalent to predicting each point from the inclusion–exclusion sum of its
    already-visited neighbours and emitting the prediction residual; implemented
    as a cascade of first differences (``prepend=0``) along every axis.
    """
    out = np.asarray(q, dtype=np.int64)
    for axis in range(out.ndim):
        out = np.diff(out, axis=axis, prepend=np.zeros_like(out[(slice(None),) * axis + (slice(0, 1),)]))
    return out


def lorenzo_inverse(deltas: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_transform` (cascade of cumulative sums)."""
    out = np.asarray(deltas, dtype=np.int64)
    for axis in range(out.ndim):
        out = np.cumsum(out, axis=axis)
    return out


def lorenzo_encode(data: np.ndarray, eb: float) -> Tuple[np.ndarray, np.ndarray]:
    """Full Lorenzo encode: data → (integer deltas, reconstruction).

    The reconstruction is exactly what the decoder will produce, so callers can
    evaluate distortion without decoding.
    """
    q = prequantize(data, eb)
    deltas = lorenzo_transform(q)
    reconstruction = postquantize(q, eb)
    return deltas, reconstruction


def lorenzo_decode(deltas: np.ndarray, eb: float) -> np.ndarray:
    """Invert :func:`lorenzo_encode`: integer deltas → reconstructed values."""
    q = lorenzo_inverse(deltas)
    return postquantize(q, eb)

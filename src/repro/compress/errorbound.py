"""Error-bound specification and resolution.

SZ-style compressors accept either an **absolute** error bound or a
**value-range relative** bound (the mode the paper uses throughout: "relative
error bound" there means ``abs_bound = rel * (max - min)`` of the field being
compressed).  A bound object resolves itself against the data (or an explicit
value range) into the absolute bound the quantiser needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorBound"]

_MODES = ("abs", "rel")


@dataclass(frozen=True)
class ErrorBound:
    """An error-bound specification.

    Parameters
    ----------
    value:
        The bound value.  For ``mode="abs"`` this is the absolute bound; for
        ``mode="rel"`` it is multiplied by the data's value range.
    mode:
        ``"abs"`` or ``"rel"`` (value-range relative).
    """

    value: float
    mode: str = "rel"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown error-bound mode {self.mode!r}; expected one of {_MODES}")
        if not np.isfinite(self.value) or self.value <= 0:
            raise ValueError(f"error bound must be a positive finite number, got {self.value}")

    # ------------------------------------------------------------------
    @staticmethod
    def absolute(value: float) -> "ErrorBound":
        return ErrorBound(value, "abs")

    @staticmethod
    def relative(value: float) -> "ErrorBound":
        return ErrorBound(value, "rel")

    @staticmethod
    def coerce(value: "ErrorBound | float", mode: str = "rel") -> "ErrorBound":
        """Accept either an ErrorBound or a bare float (interpreted with ``mode``)."""
        if isinstance(value, ErrorBound):
            return value
        return ErrorBound(float(value), mode)

    # ------------------------------------------------------------------
    def resolve(self, data: np.ndarray | None = None,
                value_range: float | None = None) -> float:
        """Return the absolute error bound for ``data`` (or an explicit range).

        A degenerate (constant) field resolves a relative bound against a
        range of 1.0 so the bound stays positive and the compressor remains
        well-defined.
        """
        if self.mode == "abs":
            return float(self.value)
        if value_range is None:
            if data is None:
                raise ValueError("relative error bound needs data or an explicit value_range")
            data = np.asarray(data)
            if data.size == 0:
                value_range = 0.0
            else:
                value_range = float(data.max() - data.min())
        if value_range <= 0:
            value_range = 1.0
        return float(self.value) * value_range

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mode}:{self.value:g}"

"""Per-block linear-regression prediction (the "R" of SZ_L/R).

SZ 2.x fits a first-order polynomial ``f(i, j, k) = b0 + b1*i + b2*j + b3*k``
to every block (default 6×6×6) by least squares, quantises the coefficients,
and quantises the residuals against the error bound.  Because the design
matrix only depends on the block shape, the fit for *all* blocks of a batch is
a single matrix multiplication — the whole predictor is vectorised over
blocks.

The residuals are computed against the prediction built from the *quantised*
coefficients, so the reconstruction error is governed purely by the residual
quantiser and the user's error bound holds exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["RegressionModel", "fit_blocks", "predict_blocks", "quantize_coefficients"]


@dataclass
class RegressionModel:
    """Quantised regression coefficients for a batch of equal-shaped blocks."""

    coefficients: np.ndarray     #: float64 (nblocks, ndim + 1) — already quantised
    block_shape: Tuple[int, ...]

    @property
    def nblocks(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def nbytes(self) -> int:
        """Storage cost of the coefficients (stored as float32, as SZ does)."""
        return int(self.coefficients.shape[0] * self.coefficients.shape[1] * 4)


def _design_matrix(block_shape: Tuple[int, ...]) -> np.ndarray:
    """Design matrix [1, i, j, k, ...] for one block, centred coordinates."""
    coords = np.meshgrid(*[np.arange(s, dtype=np.float64) - (s - 1) / 2.0
                           for s in block_shape], indexing="ij")
    columns = [np.ones(int(np.prod(block_shape)))]
    columns.extend(c.ravel() for c in coords)
    return np.stack(columns, axis=1)  # (npoints, ndim+1)


def fit_blocks(blocks: np.ndarray) -> np.ndarray:
    """Least-squares plane fit for every block.

    Parameters
    ----------
    blocks:
        Array of shape ``(nblocks,) + block_shape``.

    Returns
    -------
    coefficients of shape ``(nblocks, ndim + 1)`` (unquantised).
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    nblocks = blocks.shape[0]
    block_shape = blocks.shape[1:]
    design = _design_matrix(block_shape)
    pinv = np.linalg.pinv(design)              # (ndim+1, npoints)
    flat = blocks.reshape(nblocks, -1)          # (nblocks, npoints)
    return flat @ pinv.T                        # (nblocks, ndim+1)


def quantize_coefficients(coefficients: np.ndarray, eb: float,
                          block_shape: Tuple[int, ...]) -> np.ndarray:
    """Quantise regression coefficients the way SZ does.

    The intercept is quantised with precision ``eb/2``; each slope with
    ``eb / (2 * extent)`` so that the accumulated prediction error from
    coefficient rounding stays within a fraction of the bound.  Coefficients
    are then representable exactly in float32 multiples of the step, which is
    what gets stored.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    steps = np.empty(coefficients.shape[1], dtype=np.float64)
    steps[0] = eb / 2.0
    for axis, extent in enumerate(block_shape):
        steps[axis + 1] = eb / (2.0 * max(extent, 1))
    quantised = np.rint(coefficients / steps) * steps
    # Coefficients are persisted as float32; round-trip through float32 here so
    # the encoder's prediction matches the decoder's bit-for-bit.
    return quantised.astype(np.float32).astype(np.float64)


def predict_blocks(model: RegressionModel) -> np.ndarray:
    """Evaluate the fitted planes: returns array of shape (nblocks,) + block_shape."""
    design = _design_matrix(model.block_shape)   # (npoints, ndim+1)
    flat = model.coefficients @ design.T         # (nblocks, npoints)
    return flat.reshape((model.nblocks,) + model.block_shape)


def fit_and_predict(blocks: np.ndarray, eb: float) -> Tuple[RegressionModel, np.ndarray]:
    """Fit, quantise coefficients and return predictions in one call."""
    blocks = np.asarray(blocks, dtype=np.float64)
    coeffs = fit_blocks(blocks)
    quantised = quantize_coefficients(coeffs, eb, blocks.shape[1:])
    model = RegressionModel(coefficients=quantised, block_shape=blocks.shape[1:])
    return model, predict_blocks(model)

"""The unified codec container: one serializer for every compressed stream.

Before this module each codec (``sz_lr``, ``sz_interp``, ``sz1d``,
``zfp_like``) hand-rolled the same serialisation: a JSON ``meta`` section,
Huffman table/payload/sync sections, zlib-deflated side arrays, all framed
through :func:`repro.compress.lossless.pack_sections`.  Four copies of that
code meant four places to keep in sync whenever the framing evolved (the sync
offsets of PR 1 touched all four).  This module is the single implementation:

* :func:`pack_container` / :func:`unpack_container` — the versioned,
  magic-tagged section container (named byte sections with uint64 length
  framing, inherited unchanged from :mod:`repro.compress.lossless` so streams
  written before this refactor still deserialize);
* :func:`pack_huffman` / :func:`unpack_huffman` — the shared-table Huffman
  stream sections (table, deflated payload, per-stream bit counts, packed
  sync offsets) used by every codec's entropy stage;
* :func:`pack_huffman_individual` / :func:`unpack_huffman_individual` — the
  per-array-table alternative (``shared_encoding=False``, the costly non-SLE
  path the paper compares against);
* :func:`pack_zarray` / :func:`unpack_zarray` and :func:`pack_zbytes` /
  :func:`unpack_zbytes` — deflated side-array sections.

Every container carries its codec name inside ``meta`` so a stream handed to
the wrong decompressor is rejected with :class:`ValueError` instead of being
misinterpreted.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compress import huffman
from repro.compress.huffman import HuffmanCodec, HuffmanEncoded
from repro.compress.lossless import (
    pack_array,
    pack_arrays,
    pack_sections,
    unpack_array,
    unpack_arrays,
    unpack_sections,
    zlib_compress,
    zlib_decompress,
)

__all__ = [
    "CodecContainer",
    "pack_container",
    "unpack_container",
    "pack_huffman",
    "unpack_huffman",
    "pack_huffman_individual",
    "unpack_huffman_individual",
    "pack_zarray",
    "unpack_zarray",
    "pack_zbytes",
    "unpack_zbytes",
]


@dataclass
class CodecContainer:
    """A parsed codec stream: who wrote it, its metadata, its raw sections."""

    codec: str
    meta: Dict[str, object]
    sections: Dict[str, bytes] = field(default_factory=dict)


def pack_container(codec: str, meta: Dict[str, object],
                   sections: Dict[str, bytes]) -> bytes:
    """Frame one codec's stream: JSON meta (tagged with the codec name) + sections."""
    if "meta" in sections:
        raise ValueError("'meta' is a reserved section name")
    tagged = dict(meta)
    tagged["codec"] = codec
    out: Dict[str, bytes] = {"meta": json.dumps(tagged).encode("utf-8")}
    out.update(sections)
    return pack_sections(out)


def unpack_container(payload: bytes, expect_codec: Optional[str] = None) -> CodecContainer:
    """Invert :func:`pack_container`, validating magic, version and codec name.

    Raises :class:`ValueError` on a bad magic, an unsupported version, a
    truncated buffer, a missing/corrupt meta section, or (when
    ``expect_codec`` is given) a stream written by a different codec.
    """
    sections = unpack_sections(payload)
    if "meta" not in sections:
        raise ValueError("codec container has no 'meta' section")
    try:
        meta = json.loads(bytes(sections.pop("meta")).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt codec container meta: {exc}") from exc
    codec = str(meta.get("codec", ""))
    if expect_codec is not None and codec != expect_codec:
        raise ValueError(
            f"stream was written by codec {codec!r}, not {expect_codec!r}")
    return CodecContainer(codec=codec, meta=meta, sections=sections)


# ----------------------------------------------------------------------
# Huffman stream sections (one shared table, any number of streams)
# ----------------------------------------------------------------------
def pack_huffman(streams: Sequence[HuffmanEncoded], lossless_level: int = 6) -> Dict[str, bytes]:
    """Sections for Huffman streams sharing one canonical table.

    All streams must carry the same table (true for the shared-encoding/SLE
    path and trivially for a single stream).  Emits ``huff_table``,
    ``huff_payload`` (deflated concatenation), ``huff_nbits`` /
    ``huff_ncodes`` (int64 per stream) and ``huff_sync`` (packed sync
    offsets, the parallel-decode acceleration structure).
    """
    if not streams:
        raise ValueError("need at least one Huffman stream")
    s0 = streams[0]
    return {
        "huff_table": pack_arrays(s0.table_symbols, s0.table_lengths),
        "huff_payload": zlib_compress(b"".join(s.payload for s in streams),
                                      lossless_level),
        "huff_nbits": np.asarray([s.nbits for s in streams], dtype=np.int64).tobytes(),
        "huff_ncodes": np.asarray([s.nsymbols for s in streams], dtype=np.int64).tobytes(),
        "huff_sync": huffman.pack_sync([s.sync for s in streams]),
    }


def unpack_huffman(sections: Dict[str, bytes], *,
                   sync_interval: int = 0,
                   fallback_nbits: Optional[Sequence[int]] = None,
                   fallback_ncodes: Optional[Sequence[int]] = None) -> List[np.ndarray]:
    """Decode the shared-table Huffman sections back to per-stream code arrays.

    Streams written before the unified container kept ``nbits``/``ncodes`` in
    codec-specific metadata instead of sections; pass those via the
    ``fallback_*`` arguments so old streams keep deserialising.
    """
    symbols, lengths = unpack_arrays(sections["huff_table"])
    codec = HuffmanCodec(symbols, lengths)
    payload_bits = zlib_decompress(sections["huff_payload"])
    if "huff_nbits" in sections:
        nbits = np.frombuffer(sections["huff_nbits"], dtype=np.int64)
    elif fallback_nbits is not None:
        nbits = np.asarray(fallback_nbits, dtype=np.int64)
    else:
        raise ValueError("Huffman sections carry no bit counts")
    if "huff_ncodes" in sections:
        ncodes = np.frombuffer(sections["huff_ncodes"], dtype=np.int64)
    elif fallback_ncodes is not None:
        ncodes = np.asarray(fallback_ncodes, dtype=np.int64)
    else:
        raise ValueError("Huffman sections carry no symbol counts")
    if nbits.size != ncodes.size:
        raise ValueError("Huffman bit/symbol count mismatch")
    syncs = huffman.unpack_sync_for(sections.get("huff_sync"), int(sync_interval),
                                    [int(c) for c in ncodes])
    out: List[np.ndarray] = []
    offset = 0
    for i in range(nbits.size):
        n = int(ncodes[i])
        if n == 0:
            out.append(np.zeros(0, dtype=np.uint32))
            continue
        nbytes = (int(nbits[i]) + 7) // 8
        stream = HuffmanEncoded(payload_bits[offset:offset + nbytes], int(nbits[i]),
                                n, symbols, lengths, sync=syncs[i])
        out.append(codec.decode(stream))
        offset += nbytes
    return out


def pack_huffman_individual(streams: Sequence[HuffmanEncoded],
                            lossless_level: int = 6) -> bytes:
    """One table + payload per stream, length-framed and deflated together.

    This is the non-shared-encoding alternative (each array pays for its own
    Huffman table — the cost unit SLE removes).
    """
    blobs: List[bytes] = []
    for stream in streams:
        blob = pack_sections({
            "symbols": pack_array(stream.table_symbols),
            "lengths": pack_array(stream.table_lengths),
            "payload": stream.payload,
            "nbits": struct.pack("<q", stream.nbits),
            "sync": huffman.pack_sync([stream.sync]),
        })
        blobs.append(blob)
    framed = b"".join(struct.pack("<Q", len(b)) + b for b in blobs)
    return zlib_compress(framed, lossless_level)


def unpack_huffman_individual(section: bytes, ncodes: Sequence[int],
                              sync_interval: int = 0) -> List[np.ndarray]:
    """Invert :func:`pack_huffman_individual` (``ncodes``: symbols per stream)."""
    framed = zlib_decompress(section)
    out: List[np.ndarray] = []
    offset = 0
    for n in ncodes:
        (blob_len,) = struct.unpack_from("<Q", framed, offset)
        offset += 8
        blob = unpack_sections(framed[offset:offset + blob_len])
        offset += blob_len
        symbols = unpack_array(blob["symbols"])
        lengths = unpack_array(blob["lengths"])
        (nbits,) = struct.unpack("<q", blob["nbits"])
        sync = huffman.unpack_sync_for(blob.get("sync"), int(sync_interval),
                                       [int(n)])[0]
        stream = HuffmanEncoded(blob["payload"], nbits, int(n),
                                symbols, lengths, sync=sync)
        out.append(HuffmanCodec(symbols, lengths).decode(stream))
    return out


# ----------------------------------------------------------------------
# deflated side-array sections
# ----------------------------------------------------------------------
def pack_zarray(array: np.ndarray, lossless_level: int = 6) -> bytes:
    """A numpy array as one deflated section."""
    return zlib_compress(pack_array(array), lossless_level)


def unpack_zarray(section: bytes) -> np.ndarray:
    return unpack_array(zlib_decompress(section))


def pack_zbytes(payload: bytes, lossless_level: int = 6) -> bytes:
    """Raw bytes as one deflated section."""
    return zlib_compress(payload, lossless_level)


def unpack_zbytes(section: bytes) -> bytes:
    return zlib_decompress(section)

"""A ZFP-flavoured transform codec (background comparator only).

ZFP compresses fixed 4×4×4 blocks with an orthogonal block transform followed
by embedded coefficient coding.  The paper only mentions ZFP as background
(§2.2); its evaluation uses SZ.  This module provides a small transform-based
codec so the "prediction-based versus transform-based" comparison in the
examples/analysis layer has a real second family to point at:

* fixed 4×4×4 blocks, separable orthonormal DCT-II transform;
* uniform scalar quantisation of the coefficients with a step chosen so the
  *spatial-domain* maximum error provably stays below the requested bound;
* Huffman + zlib entropy stage shared with the SZ implementations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compress import container as ctn
from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.blocks import partition_blocks, reassemble_blocks
from repro.compress.errorbound import ErrorBound
from repro.compress import huffman
from repro.compress.huffman import HuffmanCodec
from repro.compress.quantizer import DEFAULT_RADIUS

__all__ = ["ZFPLikeCompressor"]


def _dct_matrix(n: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of size n."""
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat[0, :] *= np.sqrt(1.0 / n)
    mat[1:, :] *= np.sqrt(2.0 / n)
    return mat


class ZFPLikeCompressor(Compressor):
    """Fixed-block orthogonal-transform codec with a guaranteed error bound."""

    name = "zfp_like"

    def __init__(self, error_bound: ErrorBound | float, block_size: int = 4,
                 mode: str = "rel", radius: int = DEFAULT_RADIUS,
                 lossless_level: int = 6):
        super().__init__(error_bound, mode)
        self.block_size = int(block_size)
        if self.block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.radius = int(radius)
        self.lossless_level = int(lossless_level)

    # ------------------------------------------------------------------
    def _basis(self, ndim: int) -> Tuple[np.ndarray, float]:
        """The separable inverse-transform operator's L1 column bound.

        If coefficient ``c_k`` has error ``|δ_k| <= step/2``, the spatial error
        at any point is at most ``gamma * step / 2`` where ``gamma`` is the
        maximum over points of the L1 norm of the inverse-basis row.
        """
        mat = _dct_matrix(self.block_size)
        # inverse transform = mat.T applied along each axis; per-axis row L1 norm
        per_axis = np.abs(mat.T).sum(axis=1).max()
        gamma = float(per_axis ** ndim)
        return mat, gamma

    def _forward(self, blocks: np.ndarray, mat: np.ndarray) -> np.ndarray:
        out = blocks
        ndim = blocks.ndim - 1
        for axis in range(1, ndim + 1):
            out = np.moveaxis(np.tensordot(out, mat, axes=([axis], [1])), -1, axis)
        return out

    def _inverse(self, coeffs: np.ndarray, mat: np.ndarray) -> np.ndarray:
        out = coeffs
        ndim = coeffs.ndim - 1
        for axis in range(1, ndim + 1):
            out = np.moveaxis(np.tensordot(out, mat.T, axes=([axis], [1])), -1, axis)
        return out

    # ------------------------------------------------------------------
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        input_dtype = str(np.asarray(data).dtype)
        original_nbytes = int(np.asarray(data).nbytes)
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        abs_eb = self.resolve_eb(data)
        mat, gamma = self._basis(data.ndim)
        step = 2.0 * abs_eb / gamma

        part = partition_blocks(data, self.block_size, pad_mode="edge")
        coeffs = self._forward(part.blocks.astype(np.float64), mat)
        raw = np.rint(coeffs / step).astype(np.int64)
        # keep every coefficient representable: clip to the radius and absorb the
        # clipped remainder as an exactly-stored outlier coefficient
        outlier_mask = np.abs(raw) >= self.radius
        codes = np.where(outlier_mask, 0, raw + self.radius).astype(np.uint32)
        outliers = coeffs[outlier_mask].astype(np.float64)
        dequant = np.where(outlier_mask, coeffs, raw * step)
        recon_blocks = self._inverse(dequant, mat)
        recon = reassemble_blocks(part, recon_blocks)

        codec = HuffmanCodec.from_data(codes.ravel())
        stream = codec.encode(codes.ravel())
        meta = {
            "abs_eb": abs_eb,
            "step": step,
            "radius": self.radius,
            "block_size": self.block_size,
            "shape": list(data.shape),
            "dtype": input_dtype,
            "sync_interval": huffman.SYNC_INTERVAL,
        }
        sections = ctn.pack_huffman([stream], self.lossless_level)
        sections["outliers"] = ctn.pack_zarray(outliers, self.lossless_level)
        payload = ctn.pack_container(self.name, meta, sections)
        buffer = CompressedBuffer(
            payload=payload,
            original_shape=tuple(int(s) for s in data.shape),
            original_dtype=input_dtype,
            original_nbytes=original_nbytes,
            codec=self.name,
            meta={"abs_eb": abs_eb},
        )
        return buffer, recon

    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        cont = ctn.unpack_container(self._payload_of(buffer), expect_codec=self.name)
        meta, sections = cont.meta, cont.sections
        step = float(meta["step"])
        radius = int(meta["radius"])
        block_size = int(meta["block_size"])
        shape = tuple(meta["shape"])

        # streams from before the unified container kept nbits/ncodes in meta
        codes = ctn.unpack_huffman(
            sections, sync_interval=int(meta.get("sync_interval", 0)),
            fallback_nbits=[int(meta["nbits"])] if "nbits" in meta else None,
            fallback_ncodes=[int(meta["ncodes"])] if "ncodes" in meta else None,
        )[0].astype(np.int64)
        outliers = ctn.unpack_zarray(sections["outliers"])

        mat, _ = self._basis(len(shape))
        dummy = np.zeros(shape, dtype=np.float64)
        part = partition_blocks(dummy, block_size, pad_mode="edge")
        coeffs = (codes.reshape(part.blocks.shape) - radius) * step
        outlier_mask = codes.reshape(part.blocks.shape) == 0
        if outliers.size:
            coeffs[outlier_mask] = outliers
        else:
            coeffs[outlier_mask] = 0.0
        recon_blocks = self._inverse(coeffs, mat)
        recon = reassemble_blocks(part, recon_blocks)
        dtype = np.dtype(meta["dtype"])
        return recon.astype(dtype) if dtype != np.float64 else recon

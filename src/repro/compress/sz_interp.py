"""SZ_Interp: global multi-level interpolation compression (SZ3-style).

The interpolation compressor predicts the whole dataset level by level:

1. anchor points on a coarse lattice (stride ``anchor_stride``, a power of
   two) are stored verbatim;
2. for each level (stride ``s`` from the anchor stride down to 2, halving each
   time) and each axis in turn, the points halfway between known lattice
   points are predicted by cubic (where four neighbours exist) or linear
   interpolation of already-*reconstructed* values, and the prediction errors
   are quantised against the error bound;
3. the quantisation codes of all levels are Huffman-encoded and deflated.

Prediction always uses reconstructed values, so compression and decompression
walk the identical recursion and the error bound holds exactly.  Because
interpolation is a *global* operation, this compressor is sensitive to how
AMRIC arranges the truncated unit blocks (linear stacking versus the clustered
cube of §3.1) — which is precisely the effect Figure 5 of the paper measures.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.compress import container as ctn
from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.errorbound import ErrorBound
from repro.compress import huffman
from repro.compress.huffman import HuffmanCodec
from repro.compress.quantizer import DEFAULT_RADIUS

__all__ = ["SZInterpCompressor"]


def _level_plan(shape: Tuple[int, ...], anchor_stride: int) -> List[Tuple[int, int]]:
    """The (stride, axis) passes, coarse to fine, shared by encoder and decoder."""
    plan: List[Tuple[int, int]] = []
    s = anchor_stride
    while s >= 2:
        for axis in range(len(shape)):
            plan.append((s, axis))
        s //= 2
    return plan


class SZInterpCompressor(Compressor):
    """SZ with multi-level spline/linear interpolation prediction (``SZ_Interp``)."""

    name = "sz_interp"

    def __init__(self, error_bound: ErrorBound | float, anchor_stride: int = 16,
                 mode: str = "rel", radius: int = DEFAULT_RADIUS,
                 lossless_level: int = 6, cubic: bool = True):
        super().__init__(error_bound, mode)
        if anchor_stride < 2 or (anchor_stride & (anchor_stride - 1)) != 0:
            raise ValueError("anchor_stride must be a power of two >= 2")
        self.anchor_stride = int(anchor_stride)
        self.radius = int(radius)
        self.lossless_level = int(lossless_level)
        self.cubic = bool(cubic)

    # ------------------------------------------------------------------
    # the shared interpolation sweep
    # ------------------------------------------------------------------
    def _sweep(self, shape: Tuple[int, ...], recon: np.ndarray, abs_eb: float,
               data: np.ndarray | None, codes_in: np.ndarray | None,
               outliers_in: np.ndarray | None):
        """Run the interpolation recursion.

        Encoding mode (``data`` given): emits codes/outliers and fills ``recon``.
        Decoding mode (``codes_in`` given): consumes codes/outliers and fills
        ``recon``.  Both modes perform the identical prediction arithmetic.
        """
        ndim = len(shape)
        radius = self.radius
        encoding = data is not None
        codes_out: List[np.ndarray] = []
        outliers_out: List[np.ndarray] = []
        code_pos = 0
        outlier_pos = 0

        # lattice step per axis (known points); starts at the anchor stride
        steps = [self.anchor_stride] * ndim

        for s, axis in _level_plan(shape, self.anchor_stride):
            n = shape[axis]
            h = s // 2
            t_idx = np.arange(h, n, s)
            if t_idx.size == 0:
                steps[axis] = h if h >= 1 else 1
                continue
            max_known = ((n - 1) // s) * s

            sel_other = [slice(None, None, steps[d]) for d in range(ndim)]

            def take(indices: np.ndarray) -> np.ndarray:
                sel = list(sel_other)
                sel[axis] = indices
                return recon[tuple(sel)]

            has_r1 = (t_idx + h) <= max_known
            r1_idx = np.where(has_r1, t_idx + h, t_idx - h)
            l1 = take(t_idx - h)
            r1 = take(r1_idx)

            bshape = [1] * ndim
            bshape[axis] = t_idx.size
            has_r1_b = has_r1.reshape(bshape)

            pred = np.where(has_r1_b, 0.5 * (l1 + r1), l1)
            if self.cubic:
                has_cubic = (t_idx - 3 * h >= 0) & (t_idx + 3 * h <= max_known) & has_r1
                if has_cubic.any():
                    l2 = take(np.where(has_cubic, t_idx - 3 * h, t_idx - h))
                    r2 = take(np.where(has_cubic, np.minimum(t_idx + 3 * h, max_known), r1_idx))
                    pred_cubic = (-l2 + 9.0 * l1 + 9.0 * r1 - r2) / 16.0
                    pred = np.where(has_cubic.reshape(bshape), pred_cubic, pred)

            sel_target = list(sel_other)
            sel_target[axis] = t_idx

            if encoding:
                truth = data[tuple(sel_target)]
                err = truth - pred
                raw = np.rint(err / (2.0 * abs_eb)).astype(np.int64)
                recon_err = raw * (2.0 * abs_eb)
                outlier = (np.abs(raw) >= radius) | \
                    (np.abs(recon_err - err) > abs_eb * (1 + 1e-12))
                codes = np.where(outlier, 0, raw + radius).astype(np.uint32)
                codes_out.append(codes.ravel())
                outliers_out.append(err[outlier].astype(np.float64))
                recon[tuple(sel_target)] = pred + np.where(outlier, err, recon_err)
            else:
                count = int(np.prod(pred.shape))
                codes = codes_in[code_pos:code_pos + count].reshape(pred.shape).astype(np.int64)
                code_pos += count
                err = (codes - radius) * (2.0 * abs_eb)
                outlier = codes == 0
                n_out = int(outlier.sum())
                if n_out:
                    err[outlier] = outliers_in[outlier_pos:outlier_pos + n_out]
                    outlier_pos += n_out
                else:
                    err[outlier] = 0.0
                recon[tuple(sel_target)] = pred + err

            steps[axis] = h

        if encoding:
            codes_cat = (np.concatenate(codes_out) if codes_out
                         else np.zeros(0, dtype=np.uint32))
            outliers_cat = (np.concatenate(outliers_out) if outliers_out
                            else np.zeros(0, dtype=np.float64))
            return codes_cat, outliers_cat
        return None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        input_dtype = str(np.asarray(data).dtype)
        original_nbytes = int(np.asarray(data).nbytes)
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        abs_eb = self.resolve_eb(data)
        shape = tuple(int(s) for s in data.shape)

        recon = np.zeros(shape, dtype=np.float64)
        anchor_sel = tuple(slice(None, None, self.anchor_stride) for _ in shape)
        anchors = np.ascontiguousarray(data[anchor_sel])
        recon[anchor_sel] = anchors

        codes, outliers = self._sweep(shape, recon, abs_eb, data, None, None)

        codec = HuffmanCodec.from_data(codes) if codes.size else \
            HuffmanCodec(np.zeros(0, np.uint32), np.zeros(0, np.uint8))
        stream = codec.encode(codes)
        meta = {
            "abs_eb": abs_eb,
            "radius": self.radius,
            "anchor_stride": self.anchor_stride,
            "cubic": self.cubic,
            "shape": list(shape),
            "dtype": input_dtype,
            "sync_interval": huffman.SYNC_INTERVAL,
        }
        sections = ctn.pack_huffman([stream], self.lossless_level)
        sections["anchors"] = ctn.pack_zarray(anchors, self.lossless_level)
        sections["outliers"] = ctn.pack_zarray(outliers, self.lossless_level)
        payload = ctn.pack_container(self.name, meta, sections)
        buffer = CompressedBuffer(
            payload=payload,
            original_shape=shape,
            original_dtype=input_dtype,
            original_nbytes=original_nbytes,
            codec=self.name,
            meta={"abs_eb": abs_eb, "anchor_cells": int(anchors.size)},
        )
        return buffer, recon

    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        cont = ctn.unpack_container(self._payload_of(buffer), expect_codec=self.name)
        meta, sections = cont.meta, cont.sections
        shape = tuple(meta["shape"])
        abs_eb = float(meta["abs_eb"])
        if meta["radius"] != self.radius or meta["anchor_stride"] != self.anchor_stride:
            # decoding parameters travel with the stream; honour them
            decoder = SZInterpCompressor(self.error_bound, anchor_stride=meta["anchor_stride"],
                                         radius=meta["radius"], cubic=meta["cubic"])
            return decoder.decompress(buffer)

        # streams from before the unified container kept nbits/ncodes in meta
        codes = ctn.unpack_huffman(
            sections, sync_interval=int(meta.get("sync_interval", 0)),
            fallback_nbits=[int(meta["nbits"])] if "nbits" in meta else None,
            fallback_ncodes=[int(meta["ncodes"])] if "ncodes" in meta else None)[0]
        anchors = ctn.unpack_zarray(sections["anchors"])
        outliers = ctn.unpack_zarray(sections["outliers"])

        recon = np.zeros(shape, dtype=np.float64)
        anchor_sel = tuple(slice(None, None, self.anchor_stride) for _ in shape)
        recon[anchor_sel] = anchors
        self._sweep(shape, recon, abs_eb, None, codes, outliers)
        dtype = np.dtype(meta["dtype"])
        return recon.astype(dtype) if dtype != np.float64 else recon

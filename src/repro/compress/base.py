"""Common compressor interface and the compressed-buffer container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

import numpy as np

from repro.compress.errorbound import ErrorBound

__all__ = ["CompressedBuffer", "Compressor"]


@dataclass
class CompressedBuffer:
    """The result of compressing one array.

    Attributes
    ----------
    payload:
        The self-contained compressed byte stream (whatever the compressor's
        ``decompress`` expects).
    original_shape / original_dtype:
        Shape and dtype of the input array.
    original_nbytes:
        Size of the uncompressed input in bytes.
    codec:
        Name of the compressor that produced the buffer.
    meta:
        Codec-specific metadata useful for reporting (never needed to decode —
        everything required for decoding lives inside ``payload``).
    """

    payload: bytes
    original_shape: Tuple[int, ...]
    original_dtype: str
    original_nbytes: int
    codec: str
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def compressed_nbytes(self) -> int:
        return len(self.payload)

    @property
    def compression_ratio(self) -> float:
        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes

    @property
    def bitrate(self) -> float:
        """Bits per element of the original array."""
        nelems = int(np.prod(self.original_shape)) if self.original_shape else 1
        if nelems == 0:
            return 0.0
        return 8.0 * self.compressed_nbytes / nelems


class Compressor(abc.ABC):
    """Abstract error-bounded lossy compressor."""

    name: str = "base"

    def __init__(self, error_bound: ErrorBound | float, mode: str = "rel"):
        self.error_bound = ErrorBound.coerce(error_bound, mode)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        """Compress ``data`` and return the buffer plus the decoded reconstruction.

        The reconstruction must be byte-identical to what :meth:`decompress`
        would return; implementations produce it as a by-product of encoding so
        analyses can measure distortion without paying the decode cost.
        """

    @abc.abstractmethod
    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        """Decode a buffer produced by this compressor."""

    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedBuffer:
        """Compress ``data`` (drops the reconstruction)."""
        buffer, _ = self.compress_with_reconstruction(data)
        return buffer

    def resolve_eb(self, data: np.ndarray, value_range: float | None = None) -> float:
        """Absolute error bound for this input."""
        return self.error_bound.resolve(data, value_range=value_range)

    @staticmethod
    def _payload_of(buffer: "CompressedBuffer | bytes") -> bytes:
        return buffer.payload if isinstance(buffer, CompressedBuffer) else buffer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(error_bound={self.error_bound})"

"""Array ↔ block partition helpers.

SZ_L/R truncates its input into fixed-size cubes (6×6×6 by default) and
predicts each cube independently; AMRIC's pre-processing likewise truncates
AMR boxes into "unit blocks".  These helpers provide the padded
partition / reassembly both layers share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["BlockPartition", "partition_blocks", "reassemble_blocks", "pad_to_multiple"]


def pad_to_multiple(array: np.ndarray, block_size: int | Sequence[int],
                    mode: str = "edge") -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Pad ``array`` so every dimension is a multiple of ``block_size``.

    Returns the padded array and the original shape.  Edge padding keeps the
    padded cells close to their neighbours so they compress well and do not
    perturb prediction at block borders.
    """
    array = np.asarray(array)
    if np.isscalar(block_size):
        block_size = (int(block_size),) * array.ndim
    block_size = tuple(int(b) for b in block_size)
    if len(block_size) != array.ndim:
        raise ValueError("block_size dimensionality mismatch")
    if any(b < 1 for b in block_size):
        raise ValueError("block sizes must be >= 1")
    pads = []
    for s, b in zip(array.shape, block_size):
        remainder = s % b
        pads.append((0, 0 if remainder == 0 else b - remainder))
    if any(p[1] for p in pads):
        array = np.pad(array, pads, mode=mode)
    return array, tuple(int(s) for s in np.asarray(array.shape) - np.asarray([p[1] for p in pads]))


@dataclass
class BlockPartition:
    """A batched view of an array cut into equal cubes.

    Attributes
    ----------
    blocks:
        Array of shape ``(nblocks, b0, b1, ..., b_{d-1})``.
    grid_shape:
        Number of blocks along each dimension of the padded array.
    original_shape:
        Shape before padding (used by :func:`reassemble_blocks`).
    block_size:
        The cube size per dimension.
    """

    blocks: np.ndarray
    grid_shape: Tuple[int, ...]
    original_shape: Tuple[int, ...]
    block_size: Tuple[int, ...]

    @property
    def nblocks(self) -> int:
        return int(self.blocks.shape[0])


def partition_blocks(array: np.ndarray, block_size: int | Sequence[int],
                     pad_mode: str = "edge") -> BlockPartition:
    """Cut ``array`` into equal blocks of ``block_size`` (padding as needed)."""
    array = np.asarray(array)
    original_shape = array.shape
    if np.isscalar(block_size):
        block_size = (int(block_size),) * array.ndim
    block_size = tuple(int(b) for b in block_size)
    padded, _ = pad_to_multiple(array, block_size, mode=pad_mode)
    grid_shape = tuple(s // b for s, b in zip(padded.shape, block_size))

    # reshape to (g0, b0, g1, b1, ...) then move the grid axes to the front
    interleaved_shape = tuple(v for pair in zip(grid_shape, block_size) for v in pair)
    reshaped = padded.reshape(interleaved_shape)
    grid_axes = tuple(range(0, 2 * array.ndim, 2))
    block_axes = tuple(range(1, 2 * array.ndim, 2))
    transposed = reshaped.transpose(grid_axes + block_axes)
    blocks = transposed.reshape((-1,) + block_size)
    return BlockPartition(blocks=np.ascontiguousarray(blocks), grid_shape=grid_shape,
                          original_shape=original_shape, block_size=block_size)


def reassemble_blocks(partition: BlockPartition, blocks: np.ndarray | None = None) -> np.ndarray:
    """Invert :func:`partition_blocks`, trimming any padding."""
    blocks = partition.blocks if blocks is None else np.asarray(blocks)
    grid_shape = partition.grid_shape
    block_size = partition.block_size
    ndim = len(block_size)
    expected = (int(np.prod(grid_shape)),) + block_size
    if blocks.shape != expected:
        raise ValueError(f"blocks shape {blocks.shape} != expected {expected}")
    stacked = blocks.reshape(grid_shape + block_size)
    # interleave grid and block axes back: (g0, g1, ..., b0, b1, ...) -> (g0, b0, g1, b1, ...)
    order = []
    for i in range(ndim):
        order.extend([i, ndim + i])
    interleaved = stacked.transpose(order)
    padded_shape = tuple(g * b for g, b in zip(grid_shape, block_size))
    full = interleaved.reshape(padded_shape)
    slices = tuple(slice(0, s) for s in partition.original_shape)
    return np.ascontiguousarray(full[slices])

"""Canonical Huffman coding of quantisation codes.

SZ encodes its quantisation codes with a custom Huffman coder; the paper's
Shared Lossless Encoding (SLE) optimisation is entirely about *how many*
Huffman tables are built (one shared table versus one per small block), so the
codec here exposes exactly that choice:

* :func:`encode` / :func:`decode` — one table for one code stream;
* :class:`HuffmanCodec` — reusable table (shared across blocks for SLE);
* :func:`encoded_size_per_block` — per-block-table encoding (the expensive
  alternative SLE avoids), used in analyses and tests.

Encoding is fully vectorised (numpy bit-fiddling + ``packbits``); decoding is
a table-driven loop, fast enough for the data sizes correctness tests use.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["HuffmanCodec", "encode", "decode", "HuffmanEncoded"]

_MAX_CODE_LEN = 32


@dataclass
class HuffmanEncoded:
    """A Huffman-encoded code stream plus everything needed to decode it."""

    payload: bytes               #: packed bitstream
    nbits: int                   #: number of valid bits in the payload
    nsymbols: int                #: number of encoded symbols
    table_symbols: np.ndarray    #: the distinct symbol values (uint32)
    table_lengths: np.ndarray    #: canonical code length per distinct symbol (uint8)

    @property
    def payload_nbytes(self) -> int:
        return len(self.payload)

    @property
    def table_nbytes(self) -> int:
        """Serialised table size: symbol values (4 B) + code lengths (1 B)."""
        return int(self.table_symbols.size * 5)

    @property
    def total_nbytes(self) -> int:
        return self.payload_nbytes + self.table_nbytes


def _limit_lengths(lengths: np.ndarray, max_len: int = _MAX_CODE_LEN) -> np.ndarray:
    """Clamp code lengths to ``max_len`` while keeping Kraft's inequality valid.

    A simple heuristic (sufficient here because quantisation codes rarely need
    more than ~20 bits): clamp, then repair by extending the shortest codes.
    """
    lengths = lengths.copy()
    if lengths.size == 0 or lengths.max() <= max_len:
        return lengths
    lengths = np.minimum(lengths, max_len)
    # repair Kraft sum
    kraft = np.sum(2.0 ** (-lengths))
    order = np.argsort(lengths)
    i = 0
    while kraft > 1.0 + 1e-12 and i < lengths.size:
        idx = order[i]
        if lengths[idx] < max_len:
            kraft -= 2.0 ** (-lengths[idx])
            lengths[idx] += 1
            kraft += 2.0 ** (-lengths[idx])
        else:
            i += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values given code lengths (symbols sorted by (len, idx))."""
    n = lengths.size
    codes = np.zeros(n, dtype=np.uint64)
    if n == 0:
        return codes
    order = np.lexsort((np.arange(n), lengths))
    code = 0
    prev_len = int(lengths[order[0]])
    for rank, idx in enumerate(order):
        cur_len = int(lengths[idx])
        if rank > 0:
            code = (code + 1) << (cur_len - prev_len)
        codes[idx] = code
        prev_len = cur_len
    return codes


class HuffmanCodec:
    """A reusable canonical Huffman table built from symbol frequencies."""

    def __init__(self, symbols: np.ndarray, lengths: np.ndarray):
        self.symbols = np.asarray(symbols, dtype=np.uint32)
        self.lengths = np.asarray(lengths, dtype=np.uint8)
        if self.symbols.shape != self.lengths.shape:
            raise ValueError("symbols and lengths must align")
        self.codes = _canonical_codes(self.lengths.astype(np.int64))
        # symbol -> position lookup
        self._index: Dict[int, int] = {int(s): i for i, s in enumerate(self.symbols)}
        # decode structures: symbols sorted canonically
        order = np.lexsort((np.arange(self.symbols.size), self.lengths))
        self._dec_lengths = self.lengths[order].astype(np.int64)
        self._dec_symbols = self.symbols[order]
        self._dec_codes = self.codes[order].astype(np.int64)

    # ------------------------------------------------------------------
    @staticmethod
    def from_data(data: np.ndarray) -> "HuffmanCodec":
        """Build a codec from the codes that will be encoded."""
        data = np.asarray(data).ravel()
        if data.size == 0:
            return HuffmanCodec(np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint8))
        symbols, counts = np.unique(data, return_counts=True)
        freqs = np.zeros(symbols.size, dtype=np.int64)
        freqs[:] = counts
        lengths = _huffman_code_lengths_from_counts(counts)
        lengths = _limit_lengths(lengths)
        return HuffmanCodec(symbols.astype(np.uint32), lengths.astype(np.uint8))

    @staticmethod
    def from_multiple(datasets: Iterable[np.ndarray]) -> "HuffmanCodec":
        """Build one shared codec from several code streams (the SLE table)."""
        arrays = [np.asarray(d).ravel() for d in datasets]
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return HuffmanCodec(np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint8))
        return HuffmanCodec.from_data(np.concatenate(arrays))

    # ------------------------------------------------------------------
    @property
    def nsymbols(self) -> int:
        return int(self.symbols.size)

    @property
    def table_nbytes(self) -> int:
        return int(self.symbols.size * 5)

    def expected_bits(self, data: np.ndarray) -> int:
        """Exact number of payload bits needed to encode ``data`` with this table."""
        data = np.asarray(data).ravel()
        if data.size == 0:
            return 0
        positions = self._positions(data)
        return int(self.lengths.astype(np.int64)[positions].sum())

    def _positions(self, data: np.ndarray) -> np.ndarray:
        """Map each symbol in ``data`` to its index in the table (must exist)."""
        sorter = np.argsort(self.symbols, kind="stable")
        sorted_syms = self.symbols[sorter]
        pos = np.searchsorted(sorted_syms, data)
        pos = np.clip(pos, 0, sorted_syms.size - 1)
        if not np.all(sorted_syms[pos] == data):
            missing = np.unique(data[sorted_syms[pos] != data])[:5]
            raise KeyError(f"symbols not in Huffman table: {missing}")
        return sorter[pos]

    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> HuffmanEncoded:
        """Encode ``data`` (flattened) into a packed bitstream."""
        data = np.asarray(data).ravel()
        if data.size == 0:
            return HuffmanEncoded(b"", 0, 0, self.symbols, self.lengths)
        positions = self._positions(data)
        lengths = self.lengths.astype(np.int64)[positions]
        codes = self.codes.astype(np.uint64)[positions]
        total_bits = int(lengths.sum())
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        # per output bit: which symbol it belongs to and which bit of the code
        symbol_of_bit = np.repeat(np.arange(data.size), lengths)
        bit_in_code = np.arange(total_bits) - np.repeat(starts, lengths)
        shift = (np.repeat(lengths, lengths) - 1 - bit_in_code).astype(np.uint64)
        bits = ((codes[symbol_of_bit] >> shift) & np.uint64(1)).astype(np.uint8)
        payload = np.packbits(bits).tobytes()
        return HuffmanEncoded(payload, total_bits, int(data.size), self.symbols, self.lengths)

    def decode(self, encoded: HuffmanEncoded) -> np.ndarray:
        """Decode a bitstream produced by :meth:`encode` (table-driven loop)."""
        if encoded.nsymbols == 0:
            return np.zeros(0, dtype=np.uint32)
        bits = np.unpackbits(np.frombuffer(encoded.payload, dtype=np.uint8),
                             count=encoded.nbits)
        # canonical decoding: first code and symbol offset per code length
        lengths = self._dec_lengths
        codes = self._dec_codes
        symbols = self._dec_symbols
        max_len = int(lengths.max()) if lengths.size else 0
        first_code = {}
        first_index = {}
        for length in np.unique(lengths):
            mask = lengths == length
            first_code[int(length)] = int(codes[mask][0])
            first_index[int(length)] = int(np.nonzero(mask)[0][0])
        counts = {int(l): int((lengths == l).sum()) for l in np.unique(lengths)}

        out = np.empty(encoded.nsymbols, dtype=np.uint32)
        bit_list = bits.tolist()
        pos = 0
        code = 0
        length = 0
        produced = 0
        nbits = encoded.nbits
        while produced < encoded.nsymbols:
            if pos >= nbits:
                raise ValueError("truncated Huffman stream")
            code = (code << 1) | bit_list[pos]
            pos += 1
            length += 1
            fc = first_code.get(length)
            if fc is not None and fc <= code < fc + counts[length]:
                out[produced] = symbols[first_index[length] + (code - fc)]
                produced += 1
                code = 0
                length = 0
            elif length > max_len:
                raise ValueError("invalid Huffman stream (code length overflow)")
        return out


def _huffman_code_lengths_from_counts(counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths for symbols with the given positive counts."""
    n = counts.size
    lengths = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lengths
    if n == 1:
        lengths[0] = 1
        return lengths
    heap: List[Tuple[int, int, int]] = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    parent: Dict[int, int] = {}
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    for leaf in range(n):
        depth = 0
        node = leaf
        while node in parent:
            node = parent[node]
            depth += 1
        lengths[leaf] = depth
    return lengths


# ----------------------------------------------------------------------
# convenience one-shot API
# ----------------------------------------------------------------------
def encode(data: np.ndarray) -> HuffmanEncoded:
    """Build a table from ``data`` and encode it."""
    codec = HuffmanCodec.from_data(data)
    return codec.encode(data)


def decode(encoded: HuffmanEncoded) -> np.ndarray:
    """Decode using the table carried inside ``encoded``."""
    codec = HuffmanCodec(encoded.table_symbols, encoded.table_lengths)
    return codec.decode(encoded)


def encoded_size_per_block(blocks: Sequence[np.ndarray]) -> int:
    """Total bytes when each block gets its own Huffman table (no SLE).

    Models the per-block encoding overhead SLE removes: every block pays for
    its own serialised table plus its own byte-aligned payload.
    """
    total = 0
    for block in blocks:
        codec = HuffmanCodec.from_data(block)
        bits = codec.expected_bits(np.asarray(block).ravel())
        total += codec.table_nbytes + (bits + 7) // 8
    return total

"""Canonical Huffman coding of quantisation codes (vectorized engine).

SZ encodes its quantisation codes with a custom Huffman coder; the paper's
Shared Lossless Encoding (SLE) optimisation is entirely about *how many*
Huffman tables are built (one shared table versus one per small block), so the
codec here exposes exactly that choice:

* :func:`encode` / :func:`decode` — one table for one code stream;
* :class:`HuffmanCodec` — reusable table (shared across blocks for SLE);
* :func:`encoded_size_per_block` — per-block-table encoding (the expensive
  alternative SLE avoids), used in analyses and tests.

Both directions are fully vectorized (DESIGN.md §2):

* **encode** packs the per-symbol codewords into 32-bit big-endian words with
  two ``np.bincount`` scatter passes, so peak temporary memory is O(symbols),
  not O(bits).  Alongside the bitstream it records *sync offsets* — the bit
  position of every ``SYNC_INTERVAL``-th symbol — which cost 8 bytes per
  ``SYNC_INTERVAL`` symbols and are what makes the decoder parallel.
* **decode** splits the stream at the sync offsets into independent lanes and
  advances all lanes in lockstep: peek the next ``K`` bits of every lane
  through a sliding 24-bit byte window, look all of them up in a flat
  canonical table ``LUT[next_k_bits] -> (symbol, code_len)``, emit, advance.
  Code lengths are limited to ``MAX_CODE_LEN`` (16) by the Kraft repair in
  :func:`_limit_lengths`, which keeps the LUT at most 2**16 entries.

Streams without sync offsets (hand-built :class:`HuffmanEncoded` objects, or
tables whose code lengths exceed the LUT width) fall back to an exact
table-driven scalar loop with identical error behaviour: a ``ValueError`` on
truncated streams and on bit patterns that match no code.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["HuffmanCodec", "encode", "decode", "HuffmanEncoded",
           "MAX_CODE_LEN", "SYNC_INTERVAL", "pack_sync", "unpack_sync",
           "unpack_sync_for"]

#: default code-length limit — keeps the decode LUT at 2**16 entries
MAX_CODE_LEN = 16
_MAX_CODE_LEN = MAX_CODE_LEN  # backwards-compatible alias

#: symbols per decoder lane; encode records one sync offset per interval
SYNC_INTERVAL = 256

#: the longest codeword the vectorized encoder can pack (two 32-bit words)
_ENCODE_MAX_LEN = 32


@dataclass
class HuffmanEncoded:
    """A Huffman-encoded code stream plus everything needed to decode it."""

    payload: bytes               #: packed bitstream
    nbits: int                   #: number of valid bits in the payload
    nsymbols: int                #: number of encoded symbols
    table_symbols: np.ndarray    #: the distinct symbol values (uint32)
    table_lengths: np.ndarray    #: canonical code length per distinct symbol (uint8)
    #: bit offset of every SYNC_INTERVAL-th symbol (enables parallel decode);
    #: optional — streams without it decode through the scalar fallback
    sync: Optional[np.ndarray] = None

    @property
    def payload_nbytes(self) -> int:
        return len(self.payload)

    @property
    def table_nbytes(self) -> int:
        """Serialised table size: symbol values (4 B) + code lengths (1 B)."""
        return int(self.table_symbols.size * 5)

    @property
    def total_nbytes(self) -> int:
        return self.payload_nbytes + self.table_nbytes


def _limit_lengths(lengths: np.ndarray, max_len: int = MAX_CODE_LEN) -> np.ndarray:
    """Clamp code lengths to ``max_len`` while keeping Kraft's inequality valid.

    A simple heuristic (sufficient here because quantisation codes rarely need
    more than ~20 bits): clamp, then repair by extending the shortest codes.
    Alphabets larger than ``2**max_len`` get a correspondingly larger limit so
    a prefix code always exists.
    """
    lengths = lengths.copy()
    if lengths.size == 0 or lengths.max() <= max_len:
        return lengths
    if lengths.size > (1 << max_len):
        max_len = int(np.ceil(np.log2(lengths.size))) + 1
        if lengths.max() <= max_len:
            return lengths
    lengths = np.minimum(lengths, max_len)
    # repair Kraft sum
    kraft = np.sum(2.0 ** (-lengths))
    order = np.argsort(lengths)
    i = 0
    while kraft > 1.0 + 1e-12 and i < lengths.size:
        idx = order[i]
        if lengths[idx] < max_len:
            kraft -= 2.0 ** (-lengths[idx])
            lengths[idx] += 1
            kraft += 2.0 ** (-lengths[idx])
        else:
            i += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values given code lengths (symbols sorted by (len, idx))."""
    n = lengths.size
    codes = np.zeros(n, dtype=np.uint64)
    if n == 0:
        return codes
    order = np.lexsort((np.arange(n), lengths))
    sorted_lengths = lengths[order].astype(np.int64)
    # canonical identity: code_i * 2^-len_i == sum_{j<i} 2^-len_j; with all
    # lengths <= base the sums are exact integers in units of 2^-base
    base = int(sorted_lengths[-1])
    contrib = np.int64(1) << (base - sorted_lengths)
    prefix = np.concatenate(([0], np.cumsum(contrib[:-1])))
    codes[order] = (prefix >> (base - sorted_lengths)).astype(np.uint64)
    return codes


class HuffmanCodec:
    """A reusable canonical Huffman table built from symbol frequencies."""

    def __init__(self, symbols: np.ndarray, lengths: np.ndarray):
        self.symbols = np.asarray(symbols, dtype=np.uint32)
        self.lengths = np.asarray(lengths, dtype=np.uint8)
        if self.symbols.shape != self.lengths.shape:
            raise ValueError("symbols and lengths must align")
        if self.lengths.size:
            # reject corrupt tables loudly: lengths >= 64 would overflow the
            # canonical-code shifts silently, and a Kraft-violating table is
            # not a prefix code at all
            if int(self.lengths.max()) >= 64 or int(self.lengths.min()) < 1:
                raise ValueError("invalid Huffman table (code length out of range)")
            if float(np.sum(2.0 ** (-self.lengths.astype(np.float64)))) > 1.0 + 1e-9:
                raise ValueError("invalid Huffman table (Kraft inequality violated)")
        self.codes = _canonical_codes(self.lengths.astype(np.int64))
        # symbol -> table-position lookup, precomputed once (encode hot path)
        self._sorter = np.argsort(self.symbols, kind="stable")
        self._sorted_symbols = self.symbols[self._sorter]
        # decode structures: symbols sorted canonically
        order = np.lexsort((np.arange(self.symbols.size), self.lengths))
        self._dec_lengths = self.lengths[order].astype(np.int64)
        self._dec_symbols = self.symbols[order]
        self._dec_codes = self.codes[order].astype(np.int64)
        self._lut: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    @staticmethod
    def from_data(data: np.ndarray) -> "HuffmanCodec":
        """Build a codec from the codes that will be encoded."""
        data = np.asarray(data).ravel()
        if data.size == 0:
            return HuffmanCodec(np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint8))
        symbols, counts = np.unique(data, return_counts=True)
        lengths = _huffman_code_lengths_from_counts(counts)
        lengths = _limit_lengths(lengths)
        return HuffmanCodec(symbols.astype(np.uint32), lengths.astype(np.uint8))

    @staticmethod
    def from_multiple(datasets: Iterable[np.ndarray]) -> "HuffmanCodec":
        """Build one shared codec from several code streams (the SLE table)."""
        arrays = [np.asarray(d).ravel() for d in datasets]
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return HuffmanCodec(np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint8))
        return HuffmanCodec.from_data(np.concatenate(arrays))

    # ------------------------------------------------------------------
    @property
    def nsymbols(self) -> int:
        return int(self.symbols.size)

    @property
    def table_nbytes(self) -> int:
        return int(self.symbols.size * 5)

    def expected_bits(self, data: np.ndarray) -> int:
        """Exact number of payload bits needed to encode ``data`` with this table."""
        data = np.asarray(data).ravel()
        if data.size == 0:
            return 0
        positions = self._positions(data)
        return int(self.lengths.astype(np.int64)[positions].sum())

    def covers(self, data: np.ndarray) -> bool:
        """Whether every symbol of ``data`` is present in this table."""
        data = np.asarray(data).ravel()
        if data.size == 0:
            return True
        if self._sorted_symbols.size == 0:
            return False
        pos = np.searchsorted(self._sorted_symbols, data)
        pos = np.clip(pos, 0, self._sorted_symbols.size - 1)
        return bool(np.all(self._sorted_symbols[pos] == data))

    def _positions(self, data: np.ndarray) -> np.ndarray:
        """Map each symbol in ``data`` to its index in the table (must exist)."""
        pos = np.searchsorted(self._sorted_symbols, data)
        pos = np.clip(pos, 0, self._sorted_symbols.size - 1)
        if not np.all(self._sorted_symbols[pos] == data):
            missing = np.unique(data[self._sorted_symbols[pos] != data])[:5]
            raise KeyError(f"symbols not in Huffman table: {missing}")
        return self._sorter[pos]

    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> HuffmanEncoded:
        """Encode ``data`` (flattened) into a packed bitstream.

        The codewords are scattered into 32-bit big-endian words via two
        ``np.bincount`` accumulations (fields within a word never overlap, so
        OR equals ADD); temporaries are O(symbols).
        """
        data = np.asarray(data).ravel()
        if data.size == 0:
            return HuffmanEncoded(b"", 0, 0, self.symbols, self.lengths,
                                  sync=np.zeros(0, dtype=np.int64))
        positions = self._positions(data)
        lengths = self.lengths.astype(np.int64)[positions]
        if int(self.lengths.max()) > _ENCODE_MAX_LEN:
            raise ValueError(f"codes longer than {_ENCODE_MAX_LEN} bits cannot be encoded")
        codes = self.codes.astype(np.int64)[positions]
        ends = np.cumsum(lengths)
        total_bits = int(ends[-1])
        starts = ends - lengths
        sync = starts[::SYNC_INTERVAL].astype(np.int64)

        word = (starts >> 5).astype(np.int64)
        shift = 32 - (starts & 31) - lengths            # may be negative: spill
        spill = shift < 0
        hi = np.where(spill, codes >> np.maximum(-shift, 0),
                      codes << np.maximum(shift, 0))
        lo = np.where(spill, (codes << np.maximum(32 + shift, 0)) & 0xFFFFFFFF, 0)
        nwords = (total_bits + 31) // 32
        # disjoint bit fields: the per-word sums are < 2**32, exact in float64
        acc = np.bincount(word, weights=hi.astype(np.float64), minlength=nwords)
        acc[1:] += np.bincount(word[spill] + 1, weights=lo[spill].astype(np.float64),
                               minlength=nwords)[1:nwords]
        packed = acc.astype(np.int64).astype(np.uint32)
        payload = packed.astype(">u4").tobytes()[:(total_bits + 7) // 8]
        return HuffmanEncoded(payload, total_bits, int(data.size),
                              self.symbols, self.lengths, sync=sync)

    # ------------------------------------------------------------------
    def _build_lut(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """Flat canonical decode table ``LUT[next_k_bits] -> (symbol, length)``.

        Canonical codes occupy a contiguous prefix of the k-bit code space, so
        the table is two ``np.repeat`` calls; unassigned slots keep length 0,
        which the decoder reports as an invalid stream.
        """
        if self._lut is None:
            k = int(self._dec_lengths.max())
            reps = np.int64(1) << (k - self._dec_lengths)
            filled = int(reps.sum())
            lut_sym = np.zeros(1 << k, dtype=np.uint32)
            lut_len = np.zeros(1 << k, dtype=np.int64)
            lut_sym[:filled] = np.repeat(self._dec_symbols, reps)
            lut_len[:filled] = np.repeat(self._dec_lengths, reps)
            self._lut = (k, lut_sym, lut_len)
        return self._lut

    def decode(self, encoded: HuffmanEncoded) -> np.ndarray:
        """Decode a bitstream produced by :meth:`encode`.

        Streams carrying sync offsets (everything this codec encodes, and
        everything the SZ serializers round-trip) take the vectorized
        multi-lane LUT path; anything else uses the exact scalar fallback.
        """
        n = int(encoded.nsymbols)
        if n == 0:
            return np.zeros(0, dtype=np.uint32)
        nbits = int(encoded.nbits)
        if len(encoded.payload) * 8 < nbits:
            raise ValueError("truncated Huffman stream")
        if self._dec_lengths.size == 0:
            raise ValueError("invalid Huffman stream (empty table)")
        sync = encoded.sync
        if sync is not None:
            sync = np.asarray(sync, dtype=np.int64).ravel()
            nlanes = (n + SYNC_INTERVAL - 1) // SYNC_INTERVAL
            well_formed = (
                sync.size == nlanes and nlanes > 0 and int(sync[0]) == 0
                and bool(np.all(np.diff(sync) >= 0)) and int(sync[-1]) <= nbits)
            if well_formed and int(self._dec_lengths.max()) <= MAX_CODE_LEN:
                return self._decode_lanes(encoded.payload, nbits, n, sync)
        return self._decode_scalar(encoded.payload, nbits, n)

    def _decode_lanes(self, payload: bytes, nbits: int, n: int,
                      sync: np.ndarray) -> np.ndarray:
        k, lut_sym, lut_len = self._build_lut()
        mask = np.uint32((1 << k) - 1)
        base_shift = 24 - k

        # sliding 24-bit windows: window[j] holds bits 8j..8j+23 of the stream
        b = np.frombuffer(payload, dtype=np.uint8)
        padded = np.zeros(b.size + 4, dtype=np.uint32)
        padded[:b.size] = b
        window = (padded[:-2] << np.uint32(16)) | (padded[1:-1] << np.uint32(8)) \
            | padded[2:]

        nlanes = sync.size
        tail = n - (nlanes - 1) * SYNC_INTERVAL     # symbols in the last lane
        pos = sync.copy()
        out = np.empty((nlanes, SYNC_INTERVAL), dtype=np.uint32)
        for t in range(SYNC_INTERVAL):
            m = nlanes if t < tail else nlanes - 1
            if m == 0:
                break
            p = pos[:m]
            np.minimum(p, nbits, out=p)             # keep peeks in bounds
            peek = (window[p >> 3] >> (base_shift - (p & 7))).astype(np.uint32) & mask
            step = lut_len[peek]
            if not step.all():
                raise ValueError("invalid Huffman stream (unassigned code)")
            out[:m, t] = lut_sym[peek]
            p += step
        expected_end = np.empty(nlanes, dtype=np.int64)
        expected_end[:-1] = sync[1:]
        expected_end[-1] = nbits
        if not np.array_equal(pos, expected_end):
            raise ValueError("truncated or corrupt Huffman stream")
        return out.reshape(-1)[:n]

    def _decode_scalar(self, payload: bytes, nbits: int, n: int) -> np.ndarray:
        """Exact canonical decode, one code at a time (fallback path)."""
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=nbits)
        lengths = self._dec_lengths
        codes = self._dec_codes
        symbols = self._dec_symbols
        max_len = int(lengths.max())
        first_code: Dict[int, int] = {}
        first_index: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for length in np.unique(lengths):
            sel = lengths == length
            first_code[int(length)] = int(codes[sel][0])
            first_index[int(length)] = int(np.nonzero(sel)[0][0])
            counts[int(length)] = int(sel.sum())

        out = np.empty(n, dtype=np.uint32)
        bit_list = bits.tolist()
        pos = 0
        code = 0
        length = 0
        produced = 0
        while produced < n:
            if pos >= nbits:
                raise ValueError("truncated Huffman stream")
            code = (code << 1) | bit_list[pos]
            pos += 1
            length += 1
            fc = first_code.get(length)
            if fc is not None and fc <= code < fc + counts[length]:
                out[produced] = symbols[first_index[length] + (code - fc)]
                produced += 1
                code = 0
                length = 0
            elif length > max_len:
                raise ValueError("invalid Huffman stream (code length overflow)")
        return out


def _huffman_code_lengths_from_counts(counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths for symbols with the given positive counts.

    Depths are computed in a single top-down pass over the merge tree (parents
    are always created after their children, so iterating node ids downward
    sees every parent's depth first) instead of walking each leaf's parent
    chain, turning the O(n·depth) per-leaf walk into O(n).
    """
    n = counts.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.ones(1, dtype=np.int64)
    heap: List[Tuple[int, int, int]] = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    parent = np.zeros(2 * n - 1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        depth[node] = depth[parent[node]] + 1
    return depth[:n]


# ----------------------------------------------------------------------
# compact sync-offset serialization
# ----------------------------------------------------------------------
def pack_sync(syncs: Sequence[Optional[np.ndarray]]) -> bytes:
    """Serialise sync offsets of one or more streams compactly.

    Absolute offsets grow with the stream, but per-lane *deltas* are bounded
    by ``SYNC_INTERVAL * _ENCODE_MAX_LEN`` bits (8192 < 2**16) and nearly
    uniform, so uint16 deltas + deflate cost a tiny fraction of raw int64
    offsets (sync offsets are an acceleration structure — they must not eat
    into the compression ratio they exist to speed up).
    """
    parts: List[np.ndarray] = []
    for sync in syncs:
        arr = np.zeros(0, dtype=np.int64) if sync is None \
            else np.asarray(sync, dtype=np.int64).ravel()
        parts.append(np.diff(arr, prepend=np.int64(0)).astype(np.uint16))
    cat = np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint16)
    return zlib.compress(cat.tobytes(), 6)


def unpack_sync(blob: bytes, lane_counts: Sequence[int]) -> List[Optional[np.ndarray]]:
    """Invert :func:`pack_sync`; ``lane_counts`` gives lanes per stream.

    Returns ``None`` entries (→ scalar decode fallback) if the blob does not
    hold exactly the expected number of deltas.
    """
    deltas = np.frombuffer(zlib.decompress(blob), dtype=np.uint16).astype(np.int64)
    if deltas.size != int(sum(lane_counts)):
        return [None] * len(lane_counts)
    out: List[Optional[np.ndarray]] = []
    pos = 0
    for count in lane_counts:
        out.append(np.cumsum(deltas[pos:pos + count]))
        pos += count
    return out


def unpack_sync_for(blob: Optional[bytes], interval: int,
                    ncodes: Sequence[int]) -> List[Optional[np.ndarray]]:
    """Sync offsets per stream from a serialized section, or ``None`` entries.

    ``interval`` is the writer's recorded ``sync_interval``; a missing section
    or an interval other than the current :data:`SYNC_INTERVAL` disables the
    fast path (the scalar decoder stays authoritative) instead of guessing.
    """
    if blob is None or int(interval) != SYNC_INTERVAL:
        return [None] * len(ncodes)
    lanes = [(int(n) + SYNC_INTERVAL - 1) // SYNC_INTERVAL for n in ncodes]
    return unpack_sync(blob, lanes)


# ----------------------------------------------------------------------
# convenience one-shot API
# ----------------------------------------------------------------------
def encode(data: np.ndarray) -> HuffmanEncoded:
    """Build a table from ``data`` and encode it."""
    codec = HuffmanCodec.from_data(data)
    return codec.encode(data)


def decode(encoded: HuffmanEncoded) -> np.ndarray:
    """Decode using the table carried inside ``encoded``."""
    codec = HuffmanCodec(encoded.table_symbols, encoded.table_lengths)
    return codec.decode(encoded)


def encoded_size_per_block(blocks: Sequence[np.ndarray]) -> int:
    """Total bytes when each block gets its own Huffman table (no SLE).

    Models the per-block encoding overhead SLE removes: every block pays for
    its own serialised table plus its own byte-aligned payload.
    """
    total = 0
    for block in blocks:
        codec = HuffmanCodec.from_data(block)
        bits = codec.expected_bits(np.asarray(block).ravel())
        total += codec.table_nbytes + (bits + 7) // 8
    return total

"""Lossless back-end and byte-stream framing helpers.

SZ finishes with a lossless pass (zstd in the C code; zlib here) over the
Huffman payload, and every compressed buffer needs a small self-describing
container so the decompressor can find its sections.  The framing is a simple
length-prefixed section list — intentionally minimal, but versioned so files
written by one version of the library are rejected cleanly by another.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "zlib_compress",
    "zlib_decompress",
    "pack_sections",
    "unpack_sections",
    "pack_array",
    "unpack_array",
    "pack_arrays",
    "unpack_arrays",
]

_MAGIC = b"RPRZ"
_VERSION = 1


def zlib_compress(payload: bytes, level: int = 6) -> bytes:
    """Deflate ``payload`` (the SZ lossless stage)."""
    return zlib.compress(payload, level)


def zlib_decompress(payload: bytes) -> bytes:
    return zlib.decompress(payload)


def pack_sections(sections: Dict[str, bytes]) -> bytes:
    """Serialise named byte sections into one framed buffer."""
    parts: List[bytes] = [_MAGIC, struct.pack("<HH", _VERSION, len(sections))]
    for name, payload in sections.items():
        name_b = name.encode("utf-8")
        if len(name_b) > 255:
            raise ValueError(f"section name too long: {name!r}")
        parts.append(struct.pack("<B", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<Q", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def unpack_sections(buffer: bytes) -> Dict[str, bytes]:
    """Invert :func:`pack_sections`.

    Raises :class:`ValueError` on a bad magic, an unsupported version, a
    truncated buffer (any section header or payload running past the end) and
    trailing garbage, so corrupt streams fail loudly instead of decoding into
    nonsense.
    """
    if len(buffer) < 8:
        raise ValueError("truncated compressed buffer (no header)")
    if buffer[:4] != _MAGIC:
        raise ValueError("not a repro compressed buffer (bad magic)")
    version, count = struct.unpack_from("<HH", buffer, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported container version {version}")
    out: Dict[str, bytes] = {}
    offset = 8
    try:
        for _ in range(count):
            (name_len,) = struct.unpack_from("<B", buffer, offset)
            offset += 1
            name = bytes(buffer[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            (size,) = struct.unpack_from("<Q", buffer, offset)
            offset += 8
            if offset + size > len(buffer):
                raise ValueError("truncated compressed buffer (section payload cut short)")
            out[name] = buffer[offset:offset + size]
            offset += size
    except struct.error as exc:
        raise ValueError(f"truncated compressed buffer: {exc}") from exc
    if offset != len(buffer):
        raise ValueError("trailing bytes in compressed buffer")
    return out


def pack_array(array: np.ndarray) -> bytes:
    """Serialise a small numpy array (dtype + shape + raw bytes)."""
    array = np.ascontiguousarray(array)
    dtype_b = array.dtype.str.encode("ascii")
    header = struct.pack("<B", len(dtype_b)) + dtype_b
    header += struct.pack("<B", array.ndim)
    header += struct.pack(f"<{array.ndim}q", *array.shape) if array.ndim else b""
    return header + array.tobytes()


def pack_arrays(*arrays: np.ndarray) -> bytes:
    """Serialise several arrays into one length-prefixed blob."""
    parts: List[bytes] = [struct.pack("<H", len(arrays))]
    for array in arrays:
        blob = pack_array(array)
        parts.append(struct.pack("<Q", len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_arrays(payload: bytes) -> List[np.ndarray]:
    """Invert :func:`pack_arrays`."""
    (count,) = struct.unpack_from("<H", payload, 0)
    offset = 2
    out: List[np.ndarray] = []
    for _ in range(count):
        (size,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        out.append(unpack_array(payload[offset:offset + size]))
        offset += size
    return out


def unpack_array(payload: bytes) -> np.ndarray:
    """Invert :func:`pack_array`."""
    (dtype_len,) = struct.unpack_from("<B", payload, 0)
    offset = 1
    dtype = np.dtype(bytes(payload[offset:offset + dtype_len]).decode("ascii"))
    offset += dtype_len
    (ndim,) = struct.unpack_from("<B", payload, offset)
    offset += 1
    shape: Tuple[int, ...] = ()
    if ndim:
        shape = struct.unpack_from(f"<{ndim}q", payload, offset)
        offset += 8 * ndim
    flat = np.frombuffer(payload, dtype=dtype, offset=offset)
    return flat.reshape(shape).copy()

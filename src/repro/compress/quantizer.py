"""Error-bounded linear quantisation (the SZ quantiser).

Prediction errors are mapped to integer codes ``round(err / (2*eb))``; the
decoder recovers ``code * 2*eb``, guaranteeing ``|err - recovered| <= eb``.
Codes outside the quantisation radius are "unpredictable" and stored verbatim
(SZ stores them as truncated floats; here they are kept as float64 so the
bound is exact).

Codes are shifted by ``radius`` before entropy coding so they are non-negative
(the layout Huffman expects), with 0 reserved for the unpredictable marker —
the same convention SZ uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["QuantizedBlock", "quantize", "dequantize", "DEFAULT_RADIUS"]

#: Default quantisation radius (SZ uses a 2^16-entry quantisation interval table).
DEFAULT_RADIUS = 32768


@dataclass
class QuantizedBlock:
    """Result of quantising a batch of prediction errors."""

    codes: np.ndarray            #: uint32 codes, 0 = unpredictable, else code + radius
    outliers: np.ndarray         #: float64 values of unpredictable errors (in scan order)
    radius: int
    eb: float

    @property
    def num_outliers(self) -> int:
        return int(self.outliers.size)

    @property
    def num_codes(self) -> int:
        return int(self.codes.size)


def quantize(errors: np.ndarray, eb: float, radius: int = DEFAULT_RADIUS) -> QuantizedBlock:
    """Quantise prediction errors with absolute bound ``eb``.

    Parameters
    ----------
    errors:
        Prediction errors (any shape, float).
    eb:
        Absolute error bound (> 0).
    radius:
        Quantisation radius; codes with ``|code| >= radius`` are outliers.
    """
    if eb <= 0:
        raise ValueError("absolute error bound must be positive")
    if radius < 2:
        raise ValueError("radius must be >= 2")
    errors = np.asarray(errors, dtype=np.float64)
    raw = np.rint(errors / (2.0 * eb)).astype(np.int64)
    outlier_mask = np.abs(raw) >= radius
    # also guard against quantisation that would still violate the bound
    recon = raw * (2.0 * eb)
    bad = np.abs(recon - errors) > eb * (1 + 1e-12)
    outlier_mask |= bad
    codes = np.where(outlier_mask, 0, raw + radius).astype(np.uint32)
    outliers = errors[outlier_mask].astype(np.float64)
    return QuantizedBlock(codes=codes.reshape(errors.shape), outliers=outliers,
                          radius=int(radius), eb=float(eb))


def dequantize(block: QuantizedBlock) -> np.ndarray:
    """Recover prediction errors from a :class:`QuantizedBlock` (exactly bounded)."""
    codes = block.codes.astype(np.int64)
    errors = (codes - block.radius) * (2.0 * block.eb)
    outlier_mask = codes == 0
    if block.outliers.size:
        errors[outlier_mask] = block.outliers
    else:
        errors[outlier_mask] = 0.0
    return errors


def dequantize_codes(codes: np.ndarray, outliers: np.ndarray, eb: float,
                     radius: int = DEFAULT_RADIUS) -> np.ndarray:
    """Like :func:`dequantize` but from raw arrays (used by the decoders)."""
    return dequantize(QuantizedBlock(codes=np.asarray(codes, dtype=np.uint32),
                                     outliers=np.asarray(outliers, dtype=np.float64),
                                     radius=radius, eb=eb))

"""The ``temporal_delta`` codec: quantised values, delta-coded across timesteps.

The spatial SZ-family codecs predict each value from its *spatial*
neighbours; in an in situ series the strongest predictor of a cell is the
same cell one plotfile earlier.  This codec exploits that:

* every value is snapped onto a **fixed absolute quantisation grid**
  ``offset + code * 2*eb`` (so ``|x - x̂| <= eb`` per element, the usual SZ
  guarantee).  Because the grid is fixed for a whole series, the code of a
  cell at step *t* is a plain integer whose temporal difference is small for
  smoothly-evolving fields;
* a **key** stream entropy-codes the absolute codes and is fully
  self-contained;
* a **delta** stream entropy-codes ``codes_t - codes_ref`` against a
  reference stream (the previous dump of the same chunk) and can only be
  decoded with that reference's codes at hand.

Both stream kinds decode to *exactly* ``offset + codes * 2*eb`` — the
reconstruction of a delta chunk is element-wise identical to the key
encoding of the same data, which is what lets a delta-compressed series
verify against keyframe-only writes bit for bit.

Streams travel in the unified codec container
(:mod:`repro.compress.container`): a JSON ``meta`` section (mode, grid,
element count) plus the shared Huffman sections every codec uses.  The codec
registers in the codec registry as ``temporal_delta``; the series subsystem
(:mod:`repro.series`) owns the rolling references and keyframe cadence.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.container import pack_container, pack_huffman, unpack_container, unpack_huffman
from repro.compress.errorbound import ErrorBound
from repro.compress.huffman import HuffmanCodec

__all__ = [
    "MODE_KEY",
    "MODE_DELTA",
    "TemporalDeltaCodec",
    "TemporalDeltaFilter",
    "stream_mode",
]

MODE_KEY = "key"
MODE_DELTA = "delta"

#: shifted codes must fit the uint32 alphabet Huffman expects
_MAX_CODE_SPREAD = np.iinfo(np.uint32).max


class TemporalDeltaCodec(Compressor):
    """Fixed-grid value quantisation with key/delta entropy-coded streams.

    Parameters
    ----------
    error_bound:
        The per-element bound.  ``mode="abs"`` fixes the quantisation grid
        spacing at ``2 * error_bound`` (what the series writer uses — the
        grid must not move between steps); ``mode="rel"`` resolves the bound
        against each input's value range (standalone registry use).
    offset:
        Origin of the quantisation grid.  The series writer passes the
        field's minimum at the first step so codes stay small and
        non-negative.
    """

    name = "temporal_delta"

    def __init__(self, error_bound: ErrorBound | float, mode: str = "rel",
                 offset: float = 0.0, lossless_level: int = 6):
        super().__init__(error_bound, mode)
        self.offset = float(offset)
        self.lossless_level = int(lossless_level)

    # ------------------------------------------------------------------
    # the fixed quantisation grid
    # ------------------------------------------------------------------
    def _grid_eb(self, data: Optional[np.ndarray] = None) -> float:
        if self.error_bound.mode == "abs" or data is None:
            eb = self.error_bound.resolve(value_range=1.0)
        else:
            eb = self.error_bound.resolve(data)
        if eb <= 0:
            raise ValueError("temporal_delta needs a positive error bound")
        return eb

    def quantize(self, data: np.ndarray, eb: Optional[float] = None) -> np.ndarray:
        """Snap values onto the grid: ``code = rint((x - offset) / (2*eb))``."""
        eb = self._grid_eb(np.asarray(data)) if eb is None else float(eb)
        x = np.asarray(data, dtype=np.float64).reshape(-1)
        return np.rint((x - self.offset) / (2.0 * eb)).astype(np.int64)

    @staticmethod
    def grid_values(codes: np.ndarray, eb: float, offset: float) -> np.ndarray:
        """The one reconstruction stencil: ``offset + codes * 2*eb``.

        Every consumer (codec decode, chunk filter, series chain resolution)
        must reconstruct through this function so the delta==keyframe
        bit-identity guarantee cannot silently diverge between layers.
        """
        return float(offset) + np.asarray(codes, dtype=np.int64) * (2.0 * float(eb))

    def dequantize(self, codes: np.ndarray, eb: float,
                   offset: Optional[float] = None) -> np.ndarray:
        """The exact reconstruction of a code stream (mode-independent)."""
        origin = self.offset if offset is None else float(offset)
        return self.grid_values(codes, eb, origin)

    # ------------------------------------------------------------------
    # stream framing (key and delta share it; only the payload codes differ)
    # ------------------------------------------------------------------
    def _pack_codes(self, codes: np.ndarray, mode: str, eb: float, n: int,
                    shape: Optional[Tuple[int, ...]] = None) -> bytes:
        codes = np.asarray(codes, dtype=np.int64).reshape(-1)
        if codes.size:
            min_code = int(codes.min())
            spread = int(codes.max()) - min_code
            if spread > _MAX_CODE_SPREAD:
                raise ValueError(
                    f"temporal_delta code spread {spread} exceeds the entropy "
                    "coder's alphabet; the error bound is too tight for this data")
            shifted = (codes - min_code).astype(np.uint32)
        else:
            min_code = 0
            shifted = np.zeros(0, dtype=np.uint32)
        stream = HuffmanCodec.from_data(shifted).encode(shifted)
        meta: Dict[str, object] = {
            "mode": mode,
            "eb": float(eb),
            "offset": self.offset,
            "n": int(n),
            "min_code": min_code,
        }
        if shape is not None:
            meta["shape"] = [int(s) for s in shape]
        return pack_container(self.name, meta,
                              pack_huffman([stream], self.lossless_level))

    @staticmethod
    def unpack_codes(payload: bytes) -> Tuple[str, np.ndarray, Dict[str, object]]:
        """Parse one stream back into (mode, int64 codes, meta).

        For a key stream the codes are the absolute grid codes; for a delta
        stream they are the code *differences* against the reference stream
        (adding the reference's absolute codes is the caller's job — see
        :meth:`decode_with_reference`).
        """
        container = unpack_container(payload, expect_codec=TemporalDeltaCodec.name)
        meta = container.meta
        mode = str(meta.get("mode", ""))
        if mode not in (MODE_KEY, MODE_DELTA):
            raise ValueError(f"corrupt temporal_delta stream: unknown mode {mode!r}")
        (shifted,) = unpack_huffman(container.sections)
        codes = shifted.astype(np.int64) + int(meta.get("min_code", 0))
        n = int(meta.get("n", codes.size))
        if codes.size != n:
            raise ValueError(
                f"corrupt temporal_delta stream: {codes.size} codes for {n} elements")
        return mode, codes, meta

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode_key(self, data: np.ndarray,
                   eb: Optional[float] = None) -> Tuple[bytes, np.ndarray, np.ndarray]:
        """Self-contained stream: returns (payload, codes, reconstruction)."""
        data = np.asarray(data)
        eb = self._grid_eb(data) if eb is None else float(eb)
        codes = self.quantize(data, eb)
        payload = self._pack_codes(codes, MODE_KEY, eb, codes.size,
                                   shape=data.shape)
        return payload, codes, self.dequantize(codes, eb)

    def encode_delta(self, data: np.ndarray, ref_codes: np.ndarray,
                     eb: Optional[float] = None) -> Tuple[bytes, np.ndarray, np.ndarray]:
        """Delta stream against ``ref_codes``: returns (payload, codes, reconstruction).

        The returned ``codes`` are the *absolute* codes of ``data`` (what the
        next step deltas against); only their difference to the reference is
        entropy-coded.  The reconstruction is identical to what
        :meth:`encode_key` would produce for the same data.
        """
        eb = self._grid_eb(np.asarray(data)) if eb is None else float(eb)
        codes = self.quantize(data, eb)
        ref = np.asarray(ref_codes, dtype=np.int64).reshape(-1)
        if ref.size != codes.size:
            raise ValueError(
                f"reference stream has {ref.size} codes, data has {codes.size}; "
                "delta encoding needs an identical layout")
        payload = self._pack_codes(codes - ref, MODE_DELTA, eb, codes.size)
        return payload, codes, self.dequantize(codes, eb)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode_key(self, payload: bytes) -> Tuple[np.ndarray, np.ndarray]:
        """Decode a key stream to (values, codes); delta streams raise."""
        mode, codes, meta = self.unpack_codes(payload)
        if mode != MODE_KEY:
            raise ValueError(
                "temporal_delta stream is a delta against an earlier step and "
                "cannot be decoded standalone; open the series "
                "(repro.open_series) so the reference chain can be resolved")
        # the grid travels inside the stream — decode must not depend on how
        # this codec instance happens to be configured
        return self.dequantize(codes, float(meta["eb"]),
                               offset=float(meta.get("offset", 0.0))), codes

    def decode_with_reference(self, payload: bytes,
                              ref_codes: Optional[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """Decode either stream kind to (values, absolute codes)."""
        mode, codes, meta = self.unpack_codes(payload)
        if mode == MODE_DELTA:
            if ref_codes is None:
                raise ValueError(
                    "delta stream needs its reference codes; none were supplied")
            ref = np.asarray(ref_codes, dtype=np.int64).reshape(-1)
            if ref.size != codes.size:
                raise ValueError(
                    f"reference stream has {ref.size} codes, delta stream has "
                    f"{codes.size}; the series layout is inconsistent")
            codes = codes + ref
        return self.dequantize(codes, float(meta["eb"]),
                               offset=float(meta.get("offset", 0.0))), codes

    # ------------------------------------------------------------------
    # the generic Compressor surface (standalone/registry use: key mode)
    # ------------------------------------------------------------------
    def compress_with_reconstruction(self, data: np.ndarray) -> Tuple[CompressedBuffer, np.ndarray]:
        data = np.asarray(data, dtype=np.float64)
        payload, _, recon = self.encode_key(data)
        buffer = CompressedBuffer(
            payload=payload, original_shape=data.shape,
            original_dtype=str(data.dtype), original_nbytes=data.nbytes,
            codec=self.name, meta={"mode": MODE_KEY})
        return buffer, recon.reshape(data.shape)

    def decompress(self, buffer: CompressedBuffer | bytes) -> np.ndarray:
        payload = self._payload_of(buffer)
        mode, codes, meta = self.unpack_codes(payload)
        if mode != MODE_KEY:
            raise ValueError(
                "temporal_delta stream is a delta against an earlier step and "
                "cannot be decoded standalone; open the series "
                "(repro.open_series) so the reference chain can be resolved")
        values = self.dequantize(codes, float(meta["eb"]),
                                 offset=float(meta.get("offset", 0.0)))
        if isinstance(buffer, CompressedBuffer):
            return values.reshape(buffer.original_shape)
        shape = meta.get("shape")
        if shape is not None:
            return values.reshape([int(s) for s in shape])
        return values


def stream_mode(payload: bytes) -> str:
    """Peek a stream's kind ("key" or "delta") without decoding its codes."""
    container = unpack_container(payload, expect_codec=TemporalDeltaCodec.name)
    mode = str(container.meta.get("mode", ""))
    if mode not in (MODE_KEY, MODE_DELTA):
        raise ValueError(f"corrupt temporal_delta stream: unknown mode {mode!r}")
    return mode


# ----------------------------------------------------------------------
# the chunk filter (what the plotfile's filter_id names)
# ----------------------------------------------------------------------
from repro.h5lite.filters import Filter  # noqa: E402  (no cycle: h5lite only uses compress.base)


class TemporalDeltaFilter(Filter):
    """Chunk filter for temporal streams: valid prefix coded, tail re-padded.

    ``decode`` is what the staged reader uses for *key* chunks — they are
    self-contained like every other filter's payloads.  Delta chunks raise a
    :class:`ValueError` pointing at :func:`repro.open_series`, which resolves
    the reference chain through the series handle instead.
    """

    filter_id = "temporal_delta"

    def __init__(self, codec: Optional[TemporalDeltaCodec] = None):
        super().__init__()
        self.codec = codec or TemporalDeltaCodec(ErrorBound.relative(1e-3))

    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        chunk = np.asarray(chunk, dtype=np.float64).reshape(-1)
        n = chunk.size if actual_elements is None else int(actual_elements)
        if not 0 < n <= chunk.size:
            raise ValueError(
                f"actual_elements {n} out of range for chunk of {chunk.size}")
        payload, _, _ = self.codec.encode_key(chunk[:n])
        self._account(chunk, n, payload)
        return payload

    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        values, _ = self.codec.decode_key(payload)
        if values.size > chunk_elements:
            raise ValueError(
                f"temporal_delta chunk holds {values.size} elements but the "
                f"dataset's chunks hold {chunk_elements}")
        out = np.zeros(chunk_elements, dtype=np.float64)
        out[:values.size] = values
        return out

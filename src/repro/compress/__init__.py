"""SZ-family error-bounded lossy compression substrate.

The paper builds on the SZ compressor in two flavours:

* ``SZ_L/R`` — block-based prediction (Lorenzo and per-block linear
  regression), error-bounded linear quantisation, Huffman coding and a
  lossless back-end (:class:`~repro.compress.sz_lr.SZLRCompressor`);
* ``SZ_Interp`` — global multi-level interpolation prediction
  (:class:`~repro.compress.sz_interp.SZInterpCompressor`).

plus the 1D codec AMReX's original in situ compression uses
(:class:`~repro.compress.sz1d.SZ1DCompressor`).

All compressors guarantee ``|x - x̂| <= eb`` for every element (absolute error
bound), support value-range-relative bounds, and expose

``compress(array) -> CompressedBuffer``
``decompress(buffer) -> array``
``compress_with_reconstruction(array) -> (CompressedBuffer, array)``

The last form returns the decompressed output without paying the Huffman
decode cost (the encoder already knows the reconstruction) and is what the
analysis/benchmark layer uses for PSNR at scale.

The codec registry (:mod:`repro.compress.registry`) resolves codecs by name
and the unified container (:mod:`repro.compress.container`) is the one
serializer every codec's byte stream goes through.
"""

from repro.compress.errorbound import ErrorBound
from repro.compress.metrics import (
    CompressionStats,
    compression_ratio,
    max_abs_error,
    mse,
    nrmse,
    psnr,
)
from repro.compress.sz_lr import SZLRCompressor
from repro.compress.sz_interp import SZInterpCompressor
from repro.compress.sz1d import SZ1DCompressor
from repro.compress.zfp_like import ZFPLikeCompressor
from repro.compress.base import CompressedBuffer, Compressor
from repro.compress.registry import (
    CodecSpec,
    available_codecs,
    create_codec,
    register_codec,
    resolve_codec,
)

__all__ = [
    "CodecSpec",
    "available_codecs",
    "create_codec",
    "register_codec",
    "resolve_codec",
    "ErrorBound",
    "CompressedBuffer",
    "Compressor",
    "SZLRCompressor",
    "SZInterpCompressor",
    "SZ1DCompressor",
    "ZFPLikeCompressor",
    "CompressionStats",
    "compression_ratio",
    "psnr",
    "mse",
    "nrmse",
    "max_abs_error",
]

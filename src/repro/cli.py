"""The ``python -m repro`` command line: plotfile tooling over the facade.

Nine subcommands, all thin shells over :func:`repro.open` / :func:`repro.write`
and their series/service counterparts:

``info PATH``
    Print the self-describing header summary and per-dataset storage table —
    nothing is decoded.  Legacy pre-header files are refused with a clear
    message (their structure is simply not in the file).
``compress OUT``
    Produce a compressed plotfile, either from a synthetic run preset
    (``--preset nyx_1``) or by recompressing an existing plotfile
    (``--input other.h5z``).
``decompress IN OUT``
    Fully reconstruct a plotfile and rewrite it uncompressed (method
    "nocomp"), itself self-describing and re-openable.  For legacy inputs,
    ``--template`` names a self-describing plotfile with identical structure
    to stand in for the missing header.
``verify PATH``
    Scan + decode every chunk of a plotfile and check the reconstruction is
    structurally sound; with ``--against RAW`` also check the decoded data
    stays within the header's error bound of the reference copy.
``series-info DIR``
    Print a series manifest summary and the per-step temporal
    rate-distortion table — nothing is decoded.
``series-verify DIR``
    Decode every step of a series (resolving all delta chains) and check
    manifest/file consistency, keyframe cadence and finiteness.
``serve``
    Run the query service (:mod:`repro.service`): one shared chunk cache and
    query engine serving describe/read_field/time_slice to concurrent
    clients, and watching live (append-mode) series for subscribers.  By
    default a JSON-over-TCP listener; ``--http PORT`` adds (or, with
    ``--http-only``, substitutes) the HTTP/JSON gateway — ``POST /v1/query``,
    ``GET /metrics``, ``GET /healthz``, chunked ``GET /v1/subscribe`` — over
    the *same* request core, so both transports share one auth policy
    (``--auth-token``, literal or ``env:NAME`` / ``file:PATH``), one request
    size limit and one per-client rate limiter.
``query``
    One request against a running ``serve`` instance (describe, read-field,
    time-slice, stats, ping, refresh) — or a *stream*: ``query follow DIR``
    (equivalently ``query --follow DIR``) subscribes to a live series and
    prints one JSON line per committed step as it lands, pairing each with a
    box read when ``--field`` is given, reconnecting and resuming from the
    next unseen step if the server drops.
``stats [HOST:PORT]``
    One live telemetry snapshot from a running ``serve`` instance: engine
    counters plus the full metrics registry (cache hits, I/O bytes and
    coalescing, per-op latency histograms with derived p50/p99, span
    timings).  ``--prom`` renders the Prometheus text exposition format,
    ``--json`` the raw snapshot.

Every command exits 0 on success and 1 on failure, with errors reported as
one-line messages (corrupt files surface the underlying ``ValueError``).
Subcommands that decode accept ``--backend``; its default honours the
``REPRO_BACKEND`` environment variable (how CI exercises the process
backend through ``make smoke``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

#: every execution backend the CLI can name (mirrors core.config._BACKENDS)
BACKEND_CHOICES = ("serial", "thread", "process", "shm")


def _default_backend() -> str:
    """Default for every ``--backend`` flag (CI sets ``REPRO_BACKEND=process``
    or ``REPRO_BACKEND=shm``).

    Validated here because argparse only checks ``choices`` for values given
    on the command line, never for defaults — a typo'd env var must fail up
    front, not deep inside a run.
    """
    value = os.environ.get("REPRO_BACKEND") or "serial"
    if value not in BACKEND_CHOICES:
        raise ValueError(
            f"REPRO_BACKEND must be one of {', '.join(BACKEND_CHOICES)}, "
            f"got {value!r}")
    return value


def _make_cli_backend(args):
    """The backend instance a decoding subcommand runs on.

    Built here (rather than passing the name through) so ``--max-workers``
    reaches the pool; the caller owns it and must ``close()`` it.
    """
    from repro.parallel.backend import make_backend

    return make_backend(args.backend, getattr(args, "max_workers", None))


def _add_source_arg(subparser) -> None:
    subparser.add_argument(
        "--source", default=None,
        help="byte-source spec: local (default), mmap, memory, or "
             "RangeSource modifiers like latency:50ms,block:64k,readahead:2 "
             "(simulates a high-latency medium with coalescing + block cache)")


def _add_backend_args(subparser, backend_default: str) -> None:
    subparser.add_argument("--backend", default=backend_default,
                           choices=BACKEND_CHOICES)
    subparser.add_argument("--max-workers", type=int, default=None,
                           help="pool width for thread/process/shm backends "
                                "(default: the executor's own default)")


def build_parser() -> argparse.ArgumentParser:
    backend_default = _default_backend()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AMRIC plotfile tooling (self-describing format v1)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print plotfile metadata (no decoding)")
    p_info.add_argument("path")
    p_info.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the summary as JSON")
    _add_source_arg(p_info)
    p_info.add_argument("--stats", action="store_true",
                        help="also print the open's byte-source I/O counters")

    p_comp = sub.add_parser("compress", help="write a compressed plotfile")
    p_comp.add_argument("out", help="output plotfile path")
    src = p_comp.add_mutually_exclusive_group()
    src.add_argument("--preset", default="nyx_1",
                     help="synthetic run preset to compress (default nyx_1)")
    src.add_argument("--input", default=None,
                     help="recompress an existing (self-describing) plotfile")
    p_comp.add_argument("--codec", default="sz_lr",
                        help="codec registry name (default sz_lr)")
    p_comp.add_argument("--error-bound", type=float, default=1e-3)
    _add_backend_args(p_comp, backend_default)
    p_comp.add_argument("--method", default="amric",
                        help="writer method: amric (default), amrex_1d, nocomp")

    p_dec = sub.add_parser("decompress",
                           help="reconstruct a plotfile and store it raw")
    p_dec.add_argument("input")
    p_dec.add_argument("out")
    _add_backend_args(p_dec, backend_default)
    p_dec.add_argument("--template", default=None,
                       help="self-describing plotfile whose structure stands "
                            "in for a legacy (pre-header) input's")

    p_ver = sub.add_parser("verify", help="decode everything and check integrity")
    p_ver.add_argument("path")
    p_ver.add_argument("--against", default=None,
                       help="reference plotfile (e.g. the nocomp copy) to "
                            "check the error bound against")
    _add_backend_args(p_ver, backend_default)
    _add_source_arg(p_ver)
    p_ver.add_argument("--stats", action="store_true",
                       help="also print the decode's byte-source I/O counters")

    p_sinfo = sub.add_parser("series-info",
                             help="print series manifest + per-step table "
                                  "(no decoding)")
    p_sinfo.add_argument("directory")
    p_sinfo.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the summary as JSON")
    p_sinfo.add_argument("--step", type=int, default=None,
                         help="also print this step's per-dataset table")

    p_sver = sub.add_parser("series-verify",
                            help="decode every step of a series and check "
                                 "chains, cadence and manifest consistency")
    p_sver.add_argument("directory")
    _add_backend_args(p_sver, backend_default)

    p_srv = sub.add_parser("serve",
                           help="run the JSON-over-TCP query service")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=None,
                       help="TCP port (default 9753; 0 binds an ephemeral "
                            "port, printed on startup)")
    p_srv.add_argument("--cache-bytes", type=int, default=None,
                       help="shared chunk-cache budget in bytes "
                            "(default 128 MiB)")
    p_srv.add_argument("--backend", default=None, choices=BACKEND_CHOICES,
                       help="pooled backend for batch decodes "
                            "(default: decode inline)")
    p_srv.add_argument("--max-workers", type=int, default=None,
                       help="pool width for the serve backend")
    p_srv.add_argument("--watch-interval", type=float, default=None,
                       help="poll period (seconds) for live series watched "
                            "by subscribers (default 0.25)")
    p_srv.add_argument("--no-request-log", action="store_true",
                       help="suppress the structured JSON request log "
                            "(one line per answered request on stderr)")
    p_srv.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="also serve the HTTP/JSON gateway on this port "
                            "(0 binds an ephemeral port, printed on startup)")
    p_srv.add_argument("--http-only", action="store_true",
                       help="serve only the HTTP gateway (requires --http)")
    p_srv.add_argument("--auth-token", default=None, metavar="SPEC",
                       help="require this bearer token on both transports: "
                            "a literal value, env:NAME, or file:PATH")
    p_srv.add_argument("--max-request-bytes", type=int, default=None,
                       help="refuse requests larger than this "
                            "(default 16 MiB; structured oversized_request "
                            "error / HTTP 413)")
    p_srv.add_argument("--rate-limit", type=float, default=None,
                       help="per-client token-bucket rate limit in "
                            "requests/second (default: unlimited)")
    p_srv.add_argument("--rate-burst", type=float, default=None,
                       help="token-bucket depth (default: max(1, rate))")
    _add_source_arg(p_srv)

    p_stats = sub.add_parser("stats",
                             help="telemetry snapshot from a running serve "
                                  "instance")
    p_stats.add_argument("addr", nargs="?", default=None,
                         help="server address as HOST:PORT (default "
                              "127.0.0.1:9753; ':PORT' keeps the default "
                              "host)")
    p_stats.add_argument("--host", default=None,
                         help="server host (overrides addr)")
    p_stats.add_argument("--port", type=int, default=None,
                         help="server port (overrides addr)")
    p_stats.add_argument("--prom", action="store_true",
                         help="render the registry in the Prometheus text "
                              "exposition format")
    p_stats.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the raw snapshot as JSON")
    p_stats.add_argument("--auth-token", default=None, metavar="SPEC",
                         help="bearer token for a server running with "
                              "--auth-token (literal, env:NAME, or file:PATH)")

    p_q = sub.add_parser("query",
                         help="one request against a running serve instance")
    p_q.add_argument("op", help="describe | read-field | time-slice | stats "
                                "| ping | refresh | follow (validated in the "
                                "handler so `query --follow DIR` also parses)")
    p_q.add_argument("path", nargs="?", default=None,
                     help="plotfile or series directory (describe/read-field/"
                          "time-slice/refresh/follow)")
    p_q.add_argument("--host", default="127.0.0.1")
    p_q.add_argument("--port", type=int, default=None)
    p_q.add_argument("--field", default=None)
    p_q.add_argument("--level", type=int, default=0)
    p_q.add_argument("--box", default=None,
                     help="inclusive cell range per axis, e.g. 0:7,0:7,0:7")
    p_q.add_argument("--step", type=int, default=None,
                     help="series step for read-field")
    p_q.add_argument("--steps", default=None,
                     help="comma-separated step list for time-slice")
    p_q.add_argument("--no-refill", action="store_true",
                     help="do not restore covered coarse cells from finer data")
    p_q.add_argument("--max-level", type=int, default=None,
                     help="progressive-read cap: refill never recurses past "
                          "this level (read-field/time-slice)")
    p_q.add_argument("--follow", action="store_true",
                     help="subscribe to a live series and stream one JSON "
                          "line per committed step (same as the follow op)")
    p_q.add_argument("--from-step", type=int, default=0,
                     help="first step index to stream when following "
                          "(default 0: catch up from the start)")
    p_q.add_argument("--json", action="store_true", dest="as_json",
                     help="emit the full result (arrays included) as JSON")
    p_q.add_argument("--http", action="store_true",
                     help="talk to the HTTP gateway instead of the TCP "
                          "service (default port 9754)")
    p_q.add_argument("--auth-token", default=None, metavar="SPEC",
                     help="bearer token for a server running with "
                          "--auth-token (literal, env:NAME, or file:PATH)")
    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_info(args) -> int:
    import repro
    from repro.analysis.reporting import format_table, io_stats_rows, \
        plotfile_dataset_rows, summarize_plotfile

    with repro.open(args.path, source=args.source) as handle:
        if not handle.is_self_describing:
            print(f"error: {args.path} is a legacy plotfile (written before "
                  "format v1); its structure is not recorded in the file. "
                  "Reconstruct it with a structural template instead: pass "
                  "--template <self-describing plotfile with identical "
                  "structure> to `python -m repro decompress`, or "
                  "repro.open(path).read(template=hierarchy) from Python.",
                  file=sys.stderr)
            return 1
        summary = summarize_plotfile(handle)
        rows = plotfile_dataset_rows(handle)
        stats_rows = io_stats_rows(handle) if args.stats else None
    if args.as_json:
        if stats_rows is not None:
            summary["io_stats"] = {row["metric"]: row["value"]
                                   for row in stats_rows}
        print(json.dumps(summary, indent=2))
        return 0
    print(f"plotfile {summary['path']}")
    for key in ("self_describing", "format_version", "method", "codec",
                "error_bound", "time", "step", "unit_block_size",
                "remove_redundancy"):
        if key in summary and summary[key] is not None:
            print(f"  {key:18s} {summary[key]}")
    print(f"  {'fields':18s} {', '.join(summary['fields'])}")
    print(f"  {'levels':18s} {summary['levels']}"
          + (f" (boxes {summary['boxes_per_level']})"
             if "boxes_per_level" in summary else ""))
    print(f"  {'stored':18s} {summary['stored_bytes']} bytes "
          f"({summary['compression_ratio']:.1f}x over {summary['logical_bytes']})")
    print()
    print(format_table(rows))
    if stats_rows is not None:
        print()
        print(format_table(stats_rows, title="byte-source I/O"))
    return 0


def _cmd_compress(args) -> int:
    import repro

    # flags the baseline writers cannot honour are refused, not dropped
    if args.method != "amric":
        if args.codec != "sz_lr":
            raise ValueError(
                f"--codec only applies to --method amric, not {args.method!r}")
        if args.backend != "serial":
            raise ValueError(
                f"--backend only applies to --method amric, not {args.method!r}")
    backend = _make_cli_backend(args)
    try:
        if args.input is not None:
            with repro.open(args.input) as handle:
                hierarchy = handle.read(backend=backend)
            source = args.input
        else:
            from repro.apps.driver import build_run

            hierarchy = build_run(args.preset).hierarchy
            source = f"preset {args.preset}"
        if args.method == "amric":
            report = repro.write(hierarchy, args.out, backend=backend,
                                 compressor=args.codec,
                                 error_bound=args.error_bound)
        else:
            kwargs = {}
            if args.method in ("amrex", "amrex_1d"):
                kwargs["error_bound"] = args.error_bound
            elif args.error_bound != 1e-3:
                raise ValueError(
                    f"--error-bound does not apply to --method {args.method!r}")
            report = repro.write(hierarchy, args.out, method=args.method,
                                 **kwargs)
    finally:
        backend.close()
    print(f"compressed {source} -> {args.out}: method={report.method} "
          f"CR={report.compression_ratio:.1f}x "
          f"mean_psnr={report.mean_psnr:.1f}dB "
          f"datasets={report.ndatasets} backend={report.backend}")
    return 0


def _cmd_decompress(args) -> int:
    import repro

    template = None
    if args.template is not None:
        from repro.core.header import template_from_header

        with repro.open(args.template) as template_handle:
            if template_handle.header is None:
                raise ValueError(
                    f"--template {args.template} is itself a legacy plotfile; "
                    "the template must be self-describing")
            template = template_from_header(template_handle.header)
    backend = _make_cli_backend(args)
    try:
        with repro.open(args.input) as handle:
            hierarchy = handle.read(template=template, backend=backend)
    finally:
        backend.close()
    report = repro.write(hierarchy, args.out, method="nocomp")
    print(f"decompressed {args.input} -> {args.out}: "
          f"{report.raw_bytes} bytes over {report.ndatasets} datasets")
    return 0


def _cmd_verify(args) -> int:
    import repro

    backend = _make_cli_backend(args)
    try:
        return _run_verify(args, backend)
    finally:
        backend.close()


def _run_verify(args, backend) -> int:
    import repro

    stats_rows = None
    with repro.open(args.path, source=args.source) as handle:
        if not handle.is_self_describing:
            raise ValueError(
                f"{args.path} has no self-describing header; verify needs "
                "format v1 plotfiles")
        hierarchy = handle.read(backend=backend)
        chunks = handle.stats.chunks_decoded
        checks = [
            ("levels", hierarchy.nlevels == handle.nlevels),
            ("fields", tuple(hierarchy.component_names) == handle.fields),
            ("finite", all(np.isfinite(fab.data).all()
                           for lvl in hierarchy.levels for fab in lvl.multifab)),
        ]
        bound_check: Optional[str] = None
        if args.against:
            with repro.open(args.against) as ref_handle:
                reference = ref_handle.read(backend=backend)
            eb = handle.error_bound or 0.0
            eb_mode = (handle.header.error_bound_mode
                       if handle.header is not None else "rel")
            worst = 0.0
            for level in range(hierarchy.nlevels):
                for name in hierarchy.component_names:
                    ref = reference[level].multifab.to_global(
                        name, reference[level].domain)
                    rec = hierarchy[level].multifab.to_global(
                        name, hierarchy[level].domain)
                    mask = reference[level].boxarray.coverage_mask(
                        reference[level].domain)
                    # the writer resolves the relative bound against the whole
                    # level's range (covered cells included) — use the same
                    # range here or a correctly-bounded file can FAIL
                    vrange = max(float(ref[mask].max() - ref[mask].min()), 1e-30)
                    covered = reference.covered_cells(level)
                    if covered and level < hierarchy.nlevels - 1:
                        # refilled coarse cells are averaged, not bounded;
                        # restrict the bound check to the kept cells
                        from repro.amr.upsample import covered_mask

                        mask = mask & ~covered_mask(reference, level)
                    err = float(np.max(np.abs(ref[mask] - rec[mask])))
                    worst = max(worst, err if eb_mode == "abs" else err / vrange)
            ok = worst <= eb * (1 + 1e-6)
            checks.append(("error_bound", ok))
            kind = "absolute" if eb_mode == "abs" else "relative"
            bound_check = (f"worst {kind} error {worst:.3e} "
                           f"{'<=' if ok else '>'} bound {eb:.3e}")
        if args.stats:
            from repro.analysis.reporting import format_table, io_stats_rows

            stats_rows = format_table(io_stats_rows(handle),
                                      title="byte-source I/O")
    passed = all(ok for _, ok in checks)
    status = "PASS" if passed else "FAIL"
    detail = ", ".join(f"{name}={'ok' if ok else 'FAIL'}" for name, ok in checks)
    print(f"verify {args.path}: {status} ({detail}; {chunks} chunks decoded)"
          + (f"\n  {bound_check}" if bound_check else ""))
    if stats_rows is not None:
        print(stats_rows)
    return 0 if passed else 1


def _cmd_series_info(args) -> int:
    import repro
    from repro.analysis.reporting import format_table
    from repro.analysis.series_report import (
        series_dataset_rows,
        series_step_rows,
        series_summary,
    )

    with repro.open_series(args.directory) as series:
        summary = {**series.describe(), **series_summary(series)}
        step_rows = series_step_rows(series)
        dataset_rows = series_dataset_rows(series, args.step) \
            if args.step is not None else None
    if args.as_json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"series {summary['directory']}")
    for key in ("nsteps", "keyframes", "codec", "error_bound",
                "error_bound_mode", "keyframe_interval"):
        print(f"  {key:20s} {summary[key]}")
    print(f"  {'fields':20s} {', '.join(summary['fields'])}")
    print(f"  {'stored':20s} {summary['stored_bytes']} bytes "
          f"({summary['compression_ratio']:.1f}x over {summary['raw_bytes']})")
    print(f"  {'vs keyframe-only':20s} {summary['keyframe_only_bytes']} bytes "
          f"({summary['delta_savings_factor']:.2f}x saved "
          f"{summary['delta_saved_bytes']} bytes)")
    print()
    print(format_table(step_rows))
    if dataset_rows is not None:
        print()
        print(format_table(dataset_rows, title=f"step {args.step}"))
    return 0


def _cmd_series_verify(args) -> int:
    import repro

    backend = _make_cli_backend(args)
    try:
        return _run_series_verify(args, backend)
    finally:
        backend.close()


def _run_series_verify(args, backend) -> int:
    import repro

    with repro.open_series(args.directory) as series:
        interval = series.index.keyframe_interval
        cadence_ok = all(rec.kind == "key"
                         for rec in series.steps() if rec.index % interval == 0)
        bytes_ok = True
        finite_ok = True
        fields_ok = True
        for rec in series.steps():
            handle = series.open_step(rec.index)
            for dataset in rec.datasets:
                stored = handle.dataset_info(dataset.name).stored_nbytes
                if stored != dataset.stored_bytes:
                    bytes_ok = False
            hierarchy = series.read(step=rec.index, backend=backend)
            if tuple(hierarchy.component_names) != series.fields:
                fields_ok = False
            if not all(np.isfinite(fab.data).all()
                       for lvl in hierarchy.levels for fab in lvl.multifab):
                finite_ok = False
        chunks = series.stats.chunks_decoded
        checks = [("keyframe_cadence", cadence_ok), ("manifest_bytes", bytes_ok),
                  ("fields", fields_ok), ("finite", finite_ok)]
    passed = all(ok for _, ok in checks)
    status = "PASS" if passed else "FAIL"
    detail = ", ".join(f"{name}={'ok' if ok else 'FAIL'}" for name, ok in checks)
    print(f"series-verify {args.directory}: {status} ({detail}; "
          f"{len(series.steps())} steps, {chunks} chunks decoded)")
    return 0 if passed else 1


def _cmd_serve(args) -> int:
    from repro.service import QueryEngine, ReproServer
    from repro.service.cache import DEFAULT_CACHE_BYTES
    from repro.service.core import RequestHandler, resolve_auth_token
    from repro.service.server import DEFAULT_PORT

    if args.http_only and args.http is None:
        raise ValueError("--http-only needs --http PORT")
    engine = QueryEngine(cache_bytes=args.cache_bytes
                         if args.cache_bytes is not None else DEFAULT_CACHE_BYTES,
                         backend=args.backend, max_workers=args.max_workers,
                         source=args.source)
    # one shared core: op dispatch, auth, size/rate limits and telemetry are
    # identical no matter which transport a request arrives on.  The request
    # log is one structured JSON line per answered request (op, latency,
    # cache hit rate, client trace ID) — stderr, so piped results of a
    # foreground serve stay clean.
    handler = RequestHandler(
        engine,
        auth_token=resolve_auth_token(args.auth_token),
        max_request_bytes=args.max_request_bytes,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
        request_log=None if args.no_request_log else sys.stderr)
    watch_interval = args.watch_interval if args.watch_interval is not None \
        else 0.25
    http_server = None
    try:
        if args.http is not None:
            from repro.service.http import HttpServer

            http_server = HttpServer(handler=handler, host=args.host,
                                     port=args.http,
                                     watch_interval=watch_interval)
        if args.http_only:
            http_server.run(on_ready=lambda s: print(
                f"http gateway on {s.host}:{s.port} "
                f"(cache budget {engine.cache.max_bytes} bytes)", flush=True))
            return 0

        def on_ready(s) -> None:
            print(f"serving on {s.host}:{s.port} "
                  f"(cache budget {engine.cache.max_bytes} bytes)", flush=True)
            if http_server is not None:
                http_server.start()
                print(f"http gateway on {http_server.host}:{http_server.port}",
                      flush=True)

        server = ReproServer(
            handler=handler, host=args.host,
            port=args.port if args.port is not None else DEFAULT_PORT,
            max_workers=args.max_workers if args.max_workers is not None else 8,
            watch_interval=watch_interval)
        server.run(on_ready=on_ready)
    finally:
        if http_server is not None:
            http_server.stop()
        engine.close()
    return 0


def _parse_addr(addr: Optional[str], host: Optional[str],
                port: Optional[int]) -> tuple:
    """Resolve ``repro stats`` addressing: positional HOST:PORT plus flags."""
    from repro.service.server import DEFAULT_PORT

    resolved_host, resolved_port = "127.0.0.1", DEFAULT_PORT
    if addr:
        if ":" in addr:
            host_part, port_part = addr.rsplit(":", 1)
            if host_part:
                resolved_host = host_part
            if port_part:
                resolved_port = int(port_part)
        else:
            resolved_host = addr
    if host is not None:
        resolved_host = host
    if port is not None:
        resolved_port = port
    return resolved_host, resolved_port


def _cmd_stats(args) -> int:
    from repro.service import ReproClient
    from repro.service.core import resolve_auth_token

    host, port = _parse_addr(args.addr, args.host, args.port)
    with ReproClient(host=host, port=port,
                     auth_token=resolve_auth_token(args.auth_token)) as client:
        stats = client.stats()
    registry = stats.pop("registry", {}) if isinstance(stats, dict) else {}
    if args.prom:
        from repro.obs import render_prometheus

        sys.stdout.write(render_prometheus(registry))
        return 0
    if args.as_json:
        print(json.dumps({"engine": stats, "registry": registry}, indent=2))
        return 0
    from repro.analysis.reporting import format_table, registry_rows

    rows = [{"metric": k, "value": v} for k, v in stats.items()]
    print(format_table(rows, title=f"engine @ {host}:{port}", floatfmt=".4g"))
    print()
    print(format_table(registry_rows(registry), title="metrics registry",
                       floatfmt=".4g"))
    return 0


def _parse_box(spec: Optional[str]):
    if spec is None:
        return None
    from repro.amr.box import Box

    lo, hi = [], []
    for axis in spec.split(","):
        bounds = axis.split(":")
        if len(bounds) != 2:
            raise ValueError(
                f"bad --box {spec!r}; expected lo:hi per axis, e.g. 0:7,0:7,0:7")
        lo.append(int(bounds[0]))
        hi.append(int(bounds[1]))
    return Box(tuple(lo), tuple(hi))


def _print_array_result(label: str, arr: np.ndarray, as_json: bool) -> None:
    if as_json:
        print(json.dumps({"shape": list(arr.shape), "values": arr.tolist()}))
    else:
        print(f"{label}: shape={tuple(arr.shape)} min={arr.min():.6g} "
              f"max={arr.max():.6g} mean={arr.mean():.6g}")


def _cmd_follow(args, port: int, auth_token) -> int:
    from repro.service.client import follow_series

    print(f"following {args.path} from step {args.from_step} "
          f"({args.host}:{port}, field={args.field or '-'})", flush=True)
    stream = follow_series(args.path, args.field, host=args.host, port=port,
                           level=args.level, box=_parse_box(args.box),
                           from_step=args.from_step,
                           refill=not args.no_refill,
                           max_level=args.max_level,
                           auth_token=auth_token)
    for event, arr in stream:
        name = event.get("event")
        if name == "step":
            row = {"event": "step", "step_index": event.get("step_index")}
            summary = event.get("summary")
            if isinstance(summary, dict):
                for key in ("step", "time", "kind", "CR", "psnr_db"):
                    if key in summary:
                        row[key] = summary[key]
            if arr is not None:
                row.update(shape=list(arr.shape), min=float(arr.min()),
                           max=float(arr.max()), mean=float(arr.mean()))
            print(json.dumps(row), flush=True)
        elif name == "finalized":
            print(json.dumps({"event": "finalized",
                              "nsteps": event.get("nsteps"),
                              "high_water": event.get("high_water")}),
                  flush=True)
    return 0


_QUERY_OPS = ("describe", "read-field", "time-slice", "stats", "ping",
              "refresh", "follow")


def _cmd_query(args) -> int:
    from repro.service import ReproClient
    from repro.service.core import resolve_auth_token
    from repro.service.server import DEFAULT_PORT

    # `query --follow DIR` parses the directory into the op slot; normalise
    # it to the spelled-out `query follow DIR` form
    if args.follow and args.op not in _QUERY_OPS:
        args.op, args.path = "follow", args.op
    if args.op not in _QUERY_OPS:
        raise ValueError(
            f"unknown query op {args.op!r}; expected one of "
            f"{', '.join(_QUERY_OPS)}")
    needs_path = args.op in ("describe", "read-field", "time-slice",
                             "refresh", "follow")
    if needs_path and args.path is None:
        raise ValueError(f"query {args.op} needs a path argument")
    if args.op in ("read-field", "time-slice") and args.field is None:
        raise ValueError(f"query {args.op} needs --field")
    auth_token = resolve_auth_token(args.auth_token)
    if args.http:
        from repro.service.http import DEFAULT_HTTP_PORT, HttpClient

        if args.op == "follow" or args.follow:
            raise ValueError(
                "query follow streams over the TCP service; use it without "
                "--http (the gateway's stream is GET /v1/subscribe)")
        port = args.port if args.port is not None else DEFAULT_HTTP_PORT
        make_client = lambda: HttpClient(host=args.host, port=port,  # noqa: E731
                                         auth_token=auth_token)
    else:
        port = args.port if args.port is not None else DEFAULT_PORT
        make_client = lambda: ReproClient(host=args.host, port=port,  # noqa: E731
                                          auth_token=auth_token)
    if args.op == "follow" or args.follow:
        return _cmd_follow(args, port, auth_token)
    with make_client() as client:
        if args.op == "ping":
            print("pong" if client.ping() else "no pong")
        elif args.op == "describe":
            print(json.dumps(client.describe(args.path), indent=2))
        elif args.op == "read-field":
            arr = client.read_field(args.path, args.field, level=args.level,
                                    box=_parse_box(args.box), step=args.step,
                                    refill=not args.no_refill,
                                    max_level=args.max_level)
            _print_array_result(f"{args.field} L{args.level}", arr, args.as_json)
        elif args.op == "time-slice":
            steps = [int(s) for s in args.steps.split(",")] \
                if args.steps is not None else None
            times, values = client.time_slice(args.path, args.field,
                                              box=_parse_box(args.box),
                                              level=args.level, steps=steps,
                                              refill=not args.no_refill,
                                              max_level=args.max_level)
            if args.as_json:
                print(json.dumps({"times": times.tolist(),
                                  "shape": list(values.shape),
                                  "values": values.tolist()}))
            else:
                print(f"{args.field} over {values.shape[0]} steps "
                      f"t=[{times.min():.6g}, {times.max():.6g}]: "
                      f"shape={tuple(values.shape)} min={values.min():.6g} "
                      f"max={values.max():.6g}")
        elif args.op == "refresh":
            print(json.dumps(client.refresh(args.path)))
        else:  # stats
            from repro.analysis.reporting import format_table

            stats = client.stats()
            if args.as_json:
                print(json.dumps(stats, indent=2))
            else:
                # the flat engine keys; `repro stats` renders the registry
                stats.pop("registry", None)
                rows = [{"metric": k, "value": v} for k, v in stats.items()]
                print(format_table(rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    handlers = {"info": _cmd_info, "compress": _cmd_compress,
                "decompress": _cmd_decompress, "verify": _cmd_verify,
                "series-info": _cmd_series_info,
                "series-verify": _cmd_series_verify,
                "serve": _cmd_serve, "query": _cmd_query,
                "stats": _cmd_stats}
    from repro.service.client import ServiceError

    try:
        args = build_parser().parse_args(argv)
        return handlers[args.command](args)
    # OSError covers missing files plus the query transport (connection
    # refused/reset, timeouts); ServiceError is a server-side error reply
    except (ValueError, KeyError, IndexError, OSError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

"""The series writer: staged per-step writes with a rolling temporal reference.

Each :meth:`SeriesWriter.append` reuses the staged writer's plan and pack
stages (:mod:`repro.core.stages`) so a series step's chunk layout is exactly
a plotfile's, then swaps the spatial encode stage for temporal encode jobs:

* every dataset is always encoded as a **key** candidate (absolute quantised
  codes on the series' fixed grid);
* a dataset whose layout fingerprint matches the previous step's — same
  boxes, same distribution, same unit blocks, i.e. no regrid touched it —
  is *also* encoded as a **delta** candidate against the previous step's
  codes, and the smaller of the two candidates is committed ("when
  beneficial", never worse than a keyframe);
* every ``keyframe_interval``-th step skips the delta candidates entirely,
  so the series always contains self-contained restart points.

Jobs are plain picklable dataclasses submitted through
:meth:`~repro.parallel.mpi_sim.SimComm.run_jobs` to any execution backend
(serial / thread / process), mirroring the plotfile writer — every backend
commits byte-identical series.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.amr.hierarchy import AmrHierarchy
from repro.compress.errorbound import ErrorBound
from repro.compress.temporal import MODE_DELTA, MODE_KEY, TemporalDeltaCodec, TemporalDeltaFilter
from repro.core.config import AMRICConfig
from repro.core.header import build_header, structure_fingerprint
from repro.core.pipeline import LevelFieldRecord, WriteReport
from repro.core.stages import DatasetPlan, dataset_record, pack_dataset, plan_write
from repro.h5lite.file import H5LiteFile
from repro.parallel.backend import ExecutionBackend, WorkloadTally, make_backend
from repro.parallel.mpi_sim import SimComm
from repro.series.index import (
    INDEX_FILENAME,
    SERIES_FORMAT_VERSION,
    FieldGrid,
    SeriesDatasetRecord,
    SeriesIndex,
    SeriesStepRecord,
)
from repro.stream.journal import JOURNAL_FILENAME, SeriesJournal, replay_journal

__all__ = [
    "SeriesWriter",
    "write_series",
    "TemporalEncodeJob",
    "TemporalEncodeResult",
    "temporal_encode_job",
    "dataset_layout_fingerprint",
]


def dataset_layout_fingerprint(dplan: DatasetPlan) -> str:
    """Digest of one dataset's chunked element stream layout.

    Delta encoding subtracts the reference stream element-by-element, so it
    is only valid when both steps packed the dataset identically: same chunk
    size, same participating ranks, same unit blocks in the same order.
    Because redundancy removal carves a level's blocks around the *next*
    level's boxes, a fine-level regrid changes the coarse level's fingerprint
    too — exactly the cases that must fall back to a keyframe.
    """
    doc = {
        "chunk_elements": int(dplan.chunk_elements),
        "ranks": [
            {
                "rank": int(spec.rank),
                "actual": int(spec.actual_elements),
                "blocks": [[int(b.box_index), list(b.box.lo), list(b.box.hi)]
                           for b in spec.blocks],
            }
            for spec in dplan.rank_specs
        ],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# the temporal encode stage (runs on the execution backends)
# ----------------------------------------------------------------------
@dataclass
class TemporalEncodeJob:
    """One dataset's temporal encode work (picklable, backend-portable)."""

    #: bulk fields the shm backend ships as shared-memory descriptors
    _shm_fields: ClassVar[Tuple[str, ...]] = ("data", "ref_codes")

    key: str                                  #: dataset name
    data: np.ndarray                          #: packed buffer (one chunk per rank)
    chunk_elements: int
    actual_sizes: List[int]                   #: valid elements per chunk
    block_shapes: List[List[Tuple[int, ...]]]  #: per chunk, its blocks' shapes
    eb_abs: float                             #: the series' fixed grid for this field
    offset: float
    #: previous step's absolute codes per chunk; None forces a keyframe
    ref_codes: Optional[List[np.ndarray]] = None
    lossless_level: int = 6


@dataclass
class TemporalEncodeResult:
    """What one temporal encode produced (travels back across the backend)."""

    _shm_fields: ClassVar[Tuple[str, ...]] = ("payloads", "codes",
                                              "reconstructions")

    key: str
    mode: str                                 #: the committed stream kind
    payloads: List[bytes]
    codes: List[np.ndarray]                   #: absolute codes (the next step's reference)
    key_bytes: int
    delta_bytes: Optional[int]
    reconstructions: List[List[np.ndarray]]
    filter_calls: int

    @property
    def compressed_bytes(self) -> int:
        return sum(len(p) for p in self.payloads)


def temporal_encode_job(job: TemporalEncodeJob) -> TemporalEncodeResult:
    """Encode one dataset's chunks, choosing key or delta by committed size.

    A module-level pure function over picklable inputs — the temporal mirror
    of :func:`repro.core.stages.encode_job` — so serial, thread and process
    backends produce identical bytes.  Both candidates reconstruct to the
    same grid values, so the choice never affects decoded data.

    :class:`TemporalDeltaCodec` is stateless (pure methods over explicit
    arguments), so inside a shm pool worker one instance per
    ``(eb_abs, offset, lossless_level)`` recipe is reused across jobs via
    the per-process codec cache; elsewhere
    :func:`~repro.parallel.shm.worker_codec_cache` returns ``None`` and a
    fresh instance is built exactly as before.
    """
    from repro.parallel.shm import worker_codec_cache

    cache = worker_codec_cache()
    cache_key = ("temporal_codec", job.eb_abs, job.offset, job.lossless_level)
    codec = cache.get(cache_key) if cache is not None else None
    if codec is None:
        codec = TemporalDeltaCodec(ErrorBound.absolute(job.eb_abs),
                                   offset=job.offset,
                                   lossless_level=job.lossless_level)
        if cache is not None:
            cache[cache_key] = codec
    ce = job.chunk_elements
    key_payloads: List[bytes] = []
    delta_payloads: Optional[List[bytes]] = [] if job.ref_codes is not None else None
    codes_out: List[np.ndarray] = []
    reconstructions: List[List[np.ndarray]] = []
    for i, actual in enumerate(job.actual_sizes):
        chunk = job.data[i * ce:i * ce + int(actual)]
        payload, codes, recon = codec.encode_key(chunk, eb=job.eb_abs)
        key_payloads.append(payload)
        codes_out.append(codes)
        if delta_payloads is not None:
            dpayload, _, _ = codec.encode_delta(chunk, job.ref_codes[i],
                                                eb=job.eb_abs)
            delta_payloads.append(dpayload)
        blocks: List[np.ndarray] = []
        offset = 0
        for shape in job.block_shapes[i]:
            size = int(np.prod(shape))
            blocks.append(recon[offset:offset + size].reshape(shape))
            offset += size
        reconstructions.append(blocks)
    key_bytes = sum(len(p) for p in key_payloads)
    delta_bytes = sum(len(p) for p in delta_payloads) \
        if delta_payloads is not None else None
    if delta_bytes is not None and delta_bytes < key_bytes:
        mode, payloads = MODE_DELTA, delta_payloads
    else:
        mode, payloads = MODE_KEY, key_payloads
    return TemporalEncodeResult(
        key=job.key, mode=mode, payloads=payloads, codes=codes_out,
        key_bytes=key_bytes, delta_bytes=delta_bytes,
        reconstructions=reconstructions, filter_calls=len(job.actual_sizes))


# ----------------------------------------------------------------------
# the series writer
# ----------------------------------------------------------------------
class SeriesWriter:
    """Appends one plotfile per simulation dump into a series directory.

    Usage::

        with SeriesWriter("run_dir", keyframe_interval=8,
                          error_bound=1e-3) as series:
            for hierarchy in simulation.run(nsteps):
                report = series.append(hierarchy)

    The directory accumulates ``plt<step>.h5z`` files plus the ``series.h5z``
    manifest (rewritten atomically after every append, so an interrupted run
    leaves a readable prefix).  Each step file is itself a self-describing
    format-v1 plotfile; keyframe steps open with plain :func:`repro.open`,
    delta steps need :func:`repro.open_series` to resolve their references.

    **Append mode** (``append=True``) turns the directory into a *live*
    series.  Each step is committed through the manifest journal
    (:mod:`repro.stream.journal`): step file fsync'd first, then one fsync'd
    journal record — a crash can only lose the step being written, never a
    committed one.  Every ``compact_interval`` committed records the journal
    is folded into ``series.h5z`` (snapshot + atomic journal rewrite).
    Readers follow the run with :meth:`~repro.series.reader.SeriesHandle.refresh`;
    :meth:`finalize` (called by :meth:`close`) compacts one last time and
    drops the journal, leaving a directory byte-compatible with non-append
    series.  Reopening an existing live (crashed) or finalized directory with
    ``append=True`` resumes it: committed steps are recovered, a torn journal
    tail is truncated, and the first resumed step is a keyframe (the rolling
    delta reference does not survive a restart).
    """

    method_name = "series"

    def __init__(self, directory: str, config: Optional[AMRICConfig] = None,
                 keyframe_interval: int = 8,
                 backend: "ExecutionBackend | str | None" = None,
                 comm: Optional[SimComm] = None, append: bool = False,
                 compact_interval: Optional[int] = None, **overrides):
        config = config or AMRICConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.keyframe_interval = int(keyframe_interval)
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        self.append_mode = bool(append)
        if compact_interval is not None and not self.append_mode:
            raise ValueError("compact_interval only applies to append=True")
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.index: Optional[SeriesIndex] = None
        self.journal: Optional[SeriesJournal] = None
        self._finalized = False
        self._aborted = False
        #: dataset name -> (layout fingerprint, absolute codes per chunk)
        self._ref: Dict[str, Tuple[str, List[np.ndarray]]] = {}
        has_manifest = os.path.exists(os.path.join(self.directory, INDEX_FILENAME))
        has_journal = os.path.exists(os.path.join(self.directory, JOURNAL_FILENAME))
        if self.append_mode:
            if has_manifest or has_journal:
                self._recover()
        else:
            if has_manifest:
                raise ValueError(
                    f"{self.directory!r} already holds a series manifest; "
                    "write each series into a fresh directory, or resume it "
                    "with append=True")
            if has_journal:
                raise ValueError(
                    f"{self.directory!r} holds a live series journal; "
                    "resume it with append=True")
        if compact_interval is None:
            compact_interval = self.keyframe_interval
        self.compact_interval = int(compact_interval)
        if self.compact_interval < 1:
            raise ValueError("compact_interval must be >= 1")
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(backend if backend is not None else config.backend,
                                    config.backend_workers)
        self.comm = comm
        self.reports: List[WriteReport] = []

    def _recover(self) -> None:
        """Resume an append-mode series: replay the journal, truncate torn tail.

        The recovered manifest is authoritative for the series-wide knobs —
        the grids were frozen at the original step 0 and delta chains depend
        on them — so constructor arguments that disagree are overridden.
        """
        if os.path.exists(os.path.join(self.directory, JOURNAL_FILENAME)):
            journal, view = SeriesJournal.open_existing(self.directory)
            if os.path.exists(os.path.join(self.directory, INDEX_FILENAME)):
                index = SeriesIndex.load(self.directory)
            else:
                config = dict(view.config)
                config["steps"] = []
                index = SeriesIndex.from_json(config)
            replay_journal(index, view, path=journal.path)
        else:
            # a finalized series reopened for more steps: fresh generation
            index = SeriesIndex.load(self.directory)
            journal = SeriesJournal(self.directory)
            journal.create(index.to_json(), base=index.nsteps)
        self.index = index
        self.journal = journal
        self.keyframe_interval = index.keyframe_interval
        self.config = self.config.with_overrides(
            error_bound=index.error_bound,
            error_bound_mode=index.error_bound_mode,
            unit_block_size=index.unit_block_size,
            remove_redundancy=index.remove_redundancy)

    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Fold the journal into the manifest (snapshot, then fresh generation)."""
        self.index.save(self.directory)
        self.journal.rewrite(self.index.to_json(), base=self.index.nsteps)

    def finalize(self) -> None:
        """Compact everything and drop the journal (idempotent).

        After this the directory is indistinguishable from one written
        without append mode — any pre-stream reader opens it.
        """
        if not self.append_mode:
            raise ValueError("finalize() only applies to append=True writers")
        if self._finalized:
            return
        if self.index is not None:
            self.index.save(self.directory)
        if self.journal is not None:
            self.journal.remove()
        self._finalized = True

    def abort(self) -> None:
        """Stop without finalizing: the journal stays and the series stays live.

        For tests and controlled shutdowns that want the directory left
        exactly as a crash would — resumable with ``append=True`` and
        readable through :func:`repro.open_series`.
        """
        self._aborted = True
        if self.journal is not None:
            self.journal.close()
        if self._owns_backend:
            self.backend.close()

    def close(self) -> None:
        """Finalize (append mode) and release the writer-owned backend pool."""
        if self.append_mode and not self._aborted:
            self.finalize()
        if self.journal is not None:
            self.journal.close()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "SeriesWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # on an exception, leave the journal in place: the committed prefix
        # stays live-readable and the run is resumable with append=True
        if exc_type is not None and self.append_mode:
            self.abort()
        else:
            self.close()

    # ------------------------------------------------------------------
    @property
    def nsteps(self) -> int:
        return 0 if self.index is None else self.index.nsteps

    def _field_grids(self, hierarchy: AmrHierarchy) -> Dict[str, FieldGrid]:
        """Fix every field's quantisation grid from the first step's data.

        The grid must not move between steps (delta codes would stop lining
        up), so the relative bound is resolved once, against the first dump's
        value range — the same convention the paper's writers use per file,
        frozen for the series.
        """
        eb = self.config.error_bound_obj
        grids: Dict[str, FieldGrid] = {}
        for name in hierarchy.component_names:
            vmin = min(lvl.multifab.min(name) for lvl in hierarchy.levels)
            grids[name] = FieldGrid(
                eb_abs=eb.resolve(value_range=hierarchy.value_range(name)),
                offset=float(vmin))
        return grids

    def _start_index(self, hierarchy: AmrHierarchy) -> SeriesIndex:
        cfg = self.config
        return SeriesIndex(
            version=SERIES_FORMAT_VERSION,
            codec=TemporalDeltaCodec.name,
            error_bound=cfg.error_bound,
            error_bound_mode=cfg.error_bound_mode,
            keyframe_interval=self.keyframe_interval,
            unit_block_size=cfg.unit_block_size,
            remove_redundancy=cfg.remove_redundancy,
            components=tuple(hierarchy.component_names),
            field_grids=self._field_grids(hierarchy))

    # ------------------------------------------------------------------
    def append(self, hierarchy: AmrHierarchy,
               filename: Optional[str] = None) -> WriteReport:
        """Write one step of the series; returns the step's write report."""
        cfg = self.config
        start = time.perf_counter()
        if self.append_mode and self._finalized:
            raise ValueError(
                "this series has been finalized; reopen it with "
                "SeriesWriter(append=True) to add more steps")
        if self.index is None:
            self.index = self._start_index(hierarchy)
            if self.append_mode:
                self.journal = SeriesJournal(self.directory)
                self.journal.create(self.index.to_json(), base=0)
        elif tuple(hierarchy.component_names) != self.index.components:
            raise ValueError(
                f"hierarchy components {hierarchy.component_names} do not match "
                f"the series components {self.index.components}")
        index = self.index
        step_index = index.nsteps
        force_key = step_index % self.keyframe_interval == 0
        filename = filename or f"plt{hierarchy.step:05d}.h5z"
        path = os.path.join(self.directory, filename)
        if os.path.exists(path):
            # an append-mode restart may find the file a crashed commit wrote
            # but never journaled — an orphan no committed step references
            if self.append_mode and all(s.path != filename for s in index.steps):
                os.unlink(path)
            else:
                raise ValueError(
                    f"series step file {path!r} already exists; every appended "
                    "hierarchy needs a distinct step counter")

        # ---- plan + pack: the staged writer's layout, unchanged ----------
        nranks = max(lvl.multifab.distribution.nranks for lvl in hierarchy.levels)
        if self.comm is not None and self.comm.size != nranks:
            raise ValueError(
                f"communicator has {self.comm.size} ranks but the hierarchy "
                f"is distributed over {nranks}")
        comm = self.comm if self.comm is not None else SimComm(nranks)
        plan = plan_write(hierarchy, cfg, comm)
        header = build_header(
            hierarchy, method=self.method_name, codec=TemporalDeltaCodec.name,
            error_bound=cfg.error_bound, error_bound_mode=cfg.error_bound_mode,
            unit_block_size=cfg.unit_block_size,
            remove_redundancy=cfg.remove_redundancy,
            codec_options={"modify_filter": True,
                           "series": {"step_index": step_index,
                                      "keyframe_interval": self.keyframe_interval}})
        fingerprint = structure_fingerprint(header)

        # ---- encode: temporal jobs through the backend -------------------
        dplans: List[DatasetPlan] = []
        packed = []
        jobs: List[TemporalEncodeJob] = []
        layouts: Dict[str, str] = {}
        for level_plan in plan.levels:
            level = hierarchy[level_plan.level]
            for dplan in level_plan.datasets:
                pack = pack_dataset(level, dplan)
                layout = dataset_layout_fingerprint(dplan)
                grid = index.field_grids[dplan.field]
                ref_codes: Optional[List[np.ndarray]] = None
                if not force_key:
                    ref = self._ref.get(dplan.name)
                    if ref is not None and ref[0] == layout:
                        ref_codes = ref[1]
                dplans.append(dplan)
                packed.append(pack)
                layouts[dplan.name] = layout
                jobs.append(TemporalEncodeJob(
                    key=dplan.name, data=pack.data,
                    chunk_elements=dplan.chunk_elements,
                    actual_sizes=[spec.actual_elements for spec in dplan.rank_specs],
                    block_shapes=[[tuple(b.box.shape) for b in spec.blocks]
                                  for spec in dplan.rank_specs],
                    eb_abs=grid.eb_abs, offset=grid.offset,
                    ref_codes=ref_codes))
        results = comm.run_jobs(self.backend, temporal_encode_job, jobs)

        # ---- commit: container file + manifest ---------------------------
        records: List[LevelFieldRecord] = []
        dataset_records: List[SeriesDatasetRecord] = []
        tally = WorkloadTally(nranks)
        next_ref: Dict[str, Tuple[str, List[np.ndarray]]] = {}
        with H5LiteFile(path, "w") as h5file:
            h5file.attrs["method"] = self.method_name
            h5file.attrs["compressor"] = TemporalDeltaCodec.name
            h5file.attrs["error_bound"] = cfg.error_bound
            h5file.attrs["time"] = hierarchy.time
            h5file.attrs["step"] = hierarchy.step
            h5file.attrs["nlevels"] = hierarchy.nlevels
            h5file.attrs["ref_ratios"] = list(hierarchy.ref_ratios)
            h5file.attrs["components"] = list(hierarchy.component_names)
            h5file.attrs["series_step_index"] = step_index
            h5file.header = header.to_json()
            for dplan, pack, result in zip(dplans, packed, results):
                ref_index = step_index - 1 if result.mode == MODE_DELTA else None
                h5file.create_dataset_from_chunks(
                    dplan.name, result.payloads,
                    shape=(dplan.total_elements,), dtype="float64",
                    chunk_elements=dplan.chunk_elements,
                    filter_id=TemporalDeltaFilter.filter_id,
                    actual_elements_per_chunk=[spec.actual_elements
                                               for spec in dplan.rank_specs],
                    attrs={"level": dplan.level, "field": dplan.field,
                           "value_range": dplan.value_range,
                           "series_mode": result.mode,
                           "series_ref": ref_index})
                comm.record_collective_write()
                record = dataset_record(dplan, pack.originals, result)
                records.append(record)
                dataset_records.append(SeriesDatasetRecord(
                    name=dplan.name, mode=result.mode, ref=ref_index,
                    stored_bytes=result.compressed_bytes,
                    raw_bytes=record.raw_bytes,
                    key_bytes=result.key_bytes, delta_bytes=result.delta_bytes,
                    psnr=record.psnr, layout=layouts[dplan.name]))
                tally.add_dataset(
                    ranks=dplan.ranks,
                    per_rank_elements=dplan.per_rank_elements,
                    chunk_elements=dplan.chunk_elements,
                    compressed_bytes=result.compressed_bytes)
                next_ref[dplan.name] = (layouts[dplan.name], result.codes)
        # the rolling reference is always exactly the previous dump — stale
        # datasets (e.g. a level that vanished this step) drop out with it
        self._ref = next_ref

        kind = MODE_KEY if all(d.mode == MODE_KEY for d in dataset_records) \
            else MODE_DELTA
        record_step = SeriesStepRecord(
            index=step_index, step=int(hierarchy.step), time=float(hierarchy.time),
            path=filename, kind=kind, fingerprint=fingerprint,
            datasets=dataset_records)
        index.steps.append(record_step)
        if self.append_mode:
            # durable commit order: data file first, then the journal record
            # naming it — a crash between the two leaves only an orphan file
            fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            self.journal.append_step(record_step.to_json())
            if index.nsteps - self.journal.base >= self.compact_interval:
                self._compact()
        else:
            index.save(self.directory)

        report = WriteReport(
            method=f"{self.method_name}({TemporalDeltaCodec.name})",
            path=path, records=records, rank_workloads=tally.workloads(),
            removed_cells=plan.removed_cells, total_cells=plan.total_cells,
            ndatasets=len(records),
            elapsed_seconds=time.perf_counter() - start,
            error_bound=cfg.error_bound,
            backend=self.backend.name,
            collectives={"barriers": comm.counters.barriers,
                         "reductions": comm.counters.reductions,
                         "gathers": comm.counters.gathers,
                         "collective_writes": comm.counters.collective_writes})
        self.reports.append(report)
        return report


def write_series(hierarchies: Iterable[AmrHierarchy], directory: str, *,
                 config: Optional[AMRICConfig] = None,
                 keyframe_interval: int = 8,
                 backend: "ExecutionBackend | str | None" = None,
                 append: bool = False,
                 compact_interval: Optional[int] = None,
                 **overrides) -> List[WriteReport]:
    """Write a whole series in one call (exported as :func:`repro.write_series`).

    ``hierarchies`` is any iterable of snapshots — a list, or a generator like
    :meth:`~repro.apps.base.SyntheticAMRSimulation.run` so dumps stream
    through without holding every step in memory.  Returns the per-step
    write reports.  With ``append=True`` every step is journal-committed as
    it lands (live readers can follow the run) and the series is finalized
    on normal exit — an exception leaves the committed prefix resumable.
    """
    with SeriesWriter(directory, config=config,
                      keyframe_interval=keyframe_interval, backend=backend,
                      append=append, compact_interval=compact_interval,
                      **overrides) as writer:
        return [writer.append(h) for h in hierarchies]

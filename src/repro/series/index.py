"""The series manifest: a versioned, validated JSON index in a container.

``series.h5z`` is an :class:`~repro.h5lite.file.H5LiteFile` holding no
datasets — only the superblock's first-class header section, exactly like the
plotfile header of :mod:`repro.core.header` — so the manifest travels in the
same container format as the data it describes.  The JSON records, per step:
path, simulation time/step, the hierarchy structure fingerprint, and per
``level_<l>/<field>`` dataset the stream mode (key or delta), the reference
step of a delta stream, both candidate sizes (what the step *would* have cost
as a keyframe) and the quality record.

Validation mirrors the plotfile header's rules: unknown *extra* keys are
ignored (additive evolution within a major version), a newer major version
raises :class:`ValueError`, and every structural field is checked on parse so
a corrupt manifest fails loudly instead of mis-resolving a delta chain.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.h5lite.file import H5LiteFile

__all__ = [
    "SERIES_FORMAT_NAME",
    "SERIES_FORMAT_VERSION",
    "INDEX_FILENAME",
    "FieldGrid",
    "SeriesDatasetRecord",
    "SeriesStepRecord",
    "SeriesIndex",
]

SERIES_FORMAT_NAME = "amric-series"
SERIES_FORMAT_VERSION = 1

#: manifest file name inside a series directory
INDEX_FILENAME = "series.h5z"

_MODES = ("key", "delta")


class _IndexError(ValueError):
    """Raised for any malformed manifest (a ValueError so callers need one except)."""


def _require(obj: dict, key: str, kind, context: str):
    if key not in obj:
        raise _IndexError(f"malformed series index: {context} is missing {key!r}")
    value = obj[key]
    if kind is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _IndexError(
                f"malformed series index: {context}[{key!r}] must be a number, "
                f"got {type(value).__name__}")
        return float(value)
    if kind is int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise _IndexError(
                f"malformed series index: {context}[{key!r}] must be an int, "
                f"got {type(value).__name__}")
        return int(value)
    if not isinstance(value, kind):
        raise _IndexError(
            f"malformed series index: {context}[{key!r}] must be "
            f"{getattr(kind, '__name__', kind)}, got {type(value).__name__}")
    return value


@dataclass(frozen=True)
class FieldGrid:
    """One field's fixed quantisation grid, shared by every step of the series."""

    eb_abs: float                 #: absolute grid half-spacing (|x - x̂| <= eb_abs)
    offset: float                 #: grid origin (the field's minimum at step 0)

    def to_json(self) -> dict:
        return {"eb_abs": self.eb_abs, "offset": self.offset}

    @staticmethod
    def from_json(obj, context: str) -> "FieldGrid":
        if not isinstance(obj, dict):
            raise _IndexError(f"malformed series index: {context} must be an object")
        eb = _require(obj, "eb_abs", float, context)
        if eb <= 0:
            raise _IndexError(f"malformed series index: {context}.eb_abs must be > 0")
        return FieldGrid(eb_abs=eb, offset=_require(obj, "offset", float, context))


@dataclass
class SeriesDatasetRecord:
    """How one ``level_<l>/<field>`` dataset was stored at one step."""

    name: str
    mode: str                     #: "key" (self-contained) or "delta"
    ref: Optional[int]            #: step index the delta references (None for key)
    stored_bytes: int
    raw_bytes: int
    key_bytes: int                #: what the keyframe encoding cost / would have cost
    delta_bytes: Optional[int]    #: what the delta encoding cost (None when not tried)
    psnr: float
    layout: str                   #: layout fingerprint of this dataset's chunk stream

    @property
    def delta_saved_bytes(self) -> int:
        """Bytes the chosen encoding saved over the keyframe candidate."""
        return self.key_bytes - self.stored_bytes

    def to_json(self) -> dict:
        return {
            "name": self.name, "mode": self.mode, "ref": self.ref,
            "stored_bytes": self.stored_bytes, "raw_bytes": self.raw_bytes,
            "key_bytes": self.key_bytes, "delta_bytes": self.delta_bytes,
            "psnr": self.psnr, "layout": self.layout,
        }

    @staticmethod
    def from_json(obj, context: str) -> "SeriesDatasetRecord":
        if not isinstance(obj, dict):
            raise _IndexError(f"malformed series index: {context} must be an object")
        mode = _require(obj, "mode", str, context)
        if mode not in _MODES:
            raise _IndexError(
                f"malformed series index: {context} has unknown mode {mode!r}; "
                f"expected one of {_MODES}")
        ref = obj.get("ref")
        if mode == "delta":
            if not isinstance(ref, int) or isinstance(ref, bool) or ref < 0:
                raise _IndexError(
                    f"malformed series index: {context} is a delta stream but has "
                    f"no valid reference step (got {ref!r})")
        else:
            ref = None
        delta_bytes = obj.get("delta_bytes")
        if delta_bytes is not None:
            delta_bytes = _require(obj, "delta_bytes", int, context)
        return SeriesDatasetRecord(
            name=_require(obj, "name", str, context), mode=mode, ref=ref,
            stored_bytes=_require(obj, "stored_bytes", int, context),
            raw_bytes=_require(obj, "raw_bytes", int, context),
            key_bytes=_require(obj, "key_bytes", int, context),
            delta_bytes=delta_bytes,
            psnr=_require(obj, "psnr", float, context),
            layout=_require(obj, "layout", str, context))


@dataclass
class SeriesStepRecord:
    """One step of the series: where it lives and how it was encoded."""

    index: int                    #: position in the series (0-based, dense)
    step: int                     #: the simulation's step counter
    time: float
    path: str                     #: plotfile path relative to the series directory
    kind: str                     #: "key" when every dataset is self-contained
    fingerprint: str              #: structure fingerprint of the hierarchy
    datasets: List[SeriesDatasetRecord] = field(default_factory=list)

    @property
    def stored_bytes(self) -> int:
        return sum(d.stored_bytes for d in self.datasets)

    @property
    def raw_bytes(self) -> int:
        return sum(d.raw_bytes for d in self.datasets)

    @property
    def key_bytes(self) -> int:
        return sum(d.key_bytes for d in self.datasets)

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.stored_bytes, 1)

    @property
    def delta_saved_bytes(self) -> int:
        return sum(d.delta_saved_bytes for d in self.datasets)

    def dataset(self, name: str) -> Optional[SeriesDatasetRecord]:
        for d in self.datasets:
            if d.name == name:
                return d
        return None

    def to_json(self) -> dict:
        return {
            "index": self.index, "step": self.step, "time": self.time,
            "path": self.path, "kind": self.kind,
            "fingerprint": self.fingerprint,
            "datasets": [d.to_json() for d in self.datasets],
        }

    @staticmethod
    def from_json(obj, position: int) -> "SeriesStepRecord":
        ctx = f"steps[{position}]"
        if not isinstance(obj, dict):
            raise _IndexError(f"malformed series index: {ctx} must be an object")
        index = _require(obj, "index", int, ctx)
        if index != position:
            raise _IndexError(
                f"malformed series index: {ctx} records index {index} — the "
                "step list must be dense and ordered")
        kind = _require(obj, "kind", str, ctx)
        if kind not in _MODES:
            raise _IndexError(
                f"malformed series index: {ctx} has unknown kind {kind!r}")
        datasets_json = _require(obj, "datasets", (list, tuple), ctx)
        datasets = [SeriesDatasetRecord.from_json(d, f"{ctx}.datasets[{i}]")
                    for i, d in enumerate(datasets_json)]
        for d in datasets:
            if d.ref is not None and d.ref >= index:
                raise _IndexError(
                    f"malformed series index: {ctx} dataset {d.name!r} references "
                    f"step {d.ref}, which is not earlier than {index}")
        return SeriesStepRecord(
            index=index, step=_require(obj, "step", int, ctx),
            time=_require(obj, "time", float, ctx),
            path=_require(obj, "path", str, ctx), kind=kind,
            fingerprint=_require(obj, "fingerprint", str, ctx),
            datasets=datasets)


@dataclass
class SeriesIndex:
    """The whole manifest: series-wide configuration plus the step list."""

    version: int
    codec: str
    error_bound: float
    error_bound_mode: str
    keyframe_interval: int
    unit_block_size: int
    remove_redundancy: bool
    components: Tuple[str, ...]
    field_grids: Dict[str, FieldGrid] = field(default_factory=dict)
    steps: List[SeriesStepRecord] = field(default_factory=list)

    @property
    def nsteps(self) -> int:
        return len(self.steps)

    @property
    def stored_bytes(self) -> int:
        return sum(s.stored_bytes for s in self.steps)

    @property
    def raw_bytes(self) -> int:
        return sum(s.raw_bytes for s in self.steps)

    @property
    def key_bytes(self) -> int:
        """Total bytes a keyframe-only encoding of the same series would need."""
        return sum(s.key_bytes for s in self.steps)

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.stored_bytes, 1)

    @property
    def delta_saved_bytes(self) -> int:
        return sum(s.delta_saved_bytes for s in self.steps)

    def times(self) -> List[float]:
        return [s.time for s in self.steps]

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "format": SERIES_FORMAT_NAME,
            "version": self.version,
            "codec": self.codec,
            "error_bound": self.error_bound,
            "error_bound_mode": self.error_bound_mode,
            "keyframe_interval": self.keyframe_interval,
            "unit_block_size": self.unit_block_size,
            "remove_redundancy": self.remove_redundancy,
            "components": list(self.components),
            "field_grids": {name: grid.to_json()
                            for name, grid in self.field_grids.items()},
            "steps": [s.to_json() for s in self.steps],
        }

    @staticmethod
    def from_json(obj) -> "SeriesIndex":
        if not isinstance(obj, dict):
            raise _IndexError(
                f"malformed series index: expected an object, got {type(obj).__name__}")
        fmt = obj.get("format")
        if fmt != SERIES_FORMAT_NAME:
            raise _IndexError(
                f"malformed series index: format is {fmt!r}, expected "
                f"{SERIES_FORMAT_NAME!r}")
        version = _require(obj, "version", int, "index")
        if version < 1 or version > SERIES_FORMAT_VERSION:
            raise _IndexError(
                f"series index version {version} is not supported by this reader "
                f"(supports 1..{SERIES_FORMAT_VERSION}); upgrade repro to read it")
        components = _require(obj, "components", (list, tuple), "index")
        if not components or not all(isinstance(c, str) for c in components):
            raise _IndexError(
                "malformed series index: components must be a non-empty list of names")
        grids_json = _require(obj, "field_grids", dict, "index")
        field_grids = {str(name): FieldGrid.from_json(g, f"field_grids[{name!r}]")
                       for name, g in grids_json.items()}
        for name in components:
            if name not in field_grids:
                raise _IndexError(
                    f"malformed series index: component {name!r} has no "
                    "quantisation grid")
        steps_json = _require(obj, "steps", (list, tuple), "index")
        steps = [SeriesStepRecord.from_json(s, i) for i, s in enumerate(steps_json)]
        keyframe_interval = _require(obj, "keyframe_interval", int, "index")
        if keyframe_interval < 1:
            raise _IndexError(
                "malformed series index: keyframe_interval must be >= 1")
        return SeriesIndex(
            version=version,
            codec=_require(obj, "codec", str, "index"),
            error_bound=_require(obj, "error_bound", float, "index"),
            error_bound_mode=_require(obj, "error_bound_mode", str, "index"),
            keyframe_interval=keyframe_interval,
            unit_block_size=_require(obj, "unit_block_size", int, "index"),
            remove_redundancy=bool(_require(obj, "remove_redundancy", bool, "index")),
            components=tuple(components),
            field_grids=field_grids,
            steps=steps)

    # ------------------------------------------------------------------
    # container I/O
    # ------------------------------------------------------------------
    def save(self, directory: str) -> str:
        """Write the manifest container into ``directory``.

        The commit is crash-atomic: the container is written to a temp file,
        fsync'd, renamed over the manifest, and the directory entry fsync'd —
        a crash at any point leaves either the old manifest or the new one,
        never a torn ``series.h5z``.
        """
        path = os.path.join(directory, INDEX_FILENAME)
        tmp = path + ".tmp"
        with H5LiteFile(tmp, "w") as f:
            f.header = self.to_json()
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        try:
            dfd = os.open(directory, os.O_RDONLY)
        except OSError:
            return path
        try:
            os.fsync(dfd)
        except OSError:
            pass
        finally:
            os.close(dfd)
        return path

    @staticmethod
    def load(directory: str) -> "SeriesIndex":
        """Parse and validate the manifest of one series directory."""
        path = os.path.join(directory, INDEX_FILENAME)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"{directory!r} is not a plotfile series: no {INDEX_FILENAME} manifest")
        with H5LiteFile(path, "r") as f:
            header = f.header
        if header is None:
            raise _IndexError(
                f"{path} carries no series manifest in its header section")
        return SeriesIndex.from_json(header)

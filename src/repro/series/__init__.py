"""The plotfile-series subsystem: delta compression across timesteps.

A *series* is a directory of per-step plotfiles plus a versioned manifest
(``series.h5z``) tying them together:

* :class:`~repro.series.writer.SeriesWriter` wraps the staged writer's
  plan/pack stages, keeps a rolling reference of the previous dump per
  (level, field) dataset and — when it actually saves bytes — stores the
  quantised delta against the prior step through the registered
  ``temporal_delta`` codec (:mod:`repro.compress.temporal`).  Every Nth dump
  is a self-contained keyframe, and a regrid (detected via the structure
  fingerprint of :mod:`repro.core.header`) forces one per affected dataset.
* :class:`~repro.series.index.SeriesIndex` is the manifest: per-step paths,
  simulation times, hierarchy fingerprints, per-dataset stream modes and
  stats, validated like the plotfile header.
* :class:`~repro.series.reader.SeriesHandle` (returned by
  :func:`repro.open_series`) reads lazily: ``read_field(..., step=...)``
  resolves delta chains chunk-by-chunk through the PR-3 chunk cache, and
  ``time_slice`` extracts a box's evolution without decoding any chunk
  outside the requested box's chains.
"""

from repro.series.index import (
    INDEX_FILENAME,
    SeriesDatasetRecord,
    SeriesIndex,
    SeriesStepRecord,
)
from repro.series.reader import SeriesHandle, SeriesStepHandle, open_series
from repro.series.writer import SeriesWriter, write_series

__all__ = [
    "INDEX_FILENAME",
    "SeriesDatasetRecord",
    "SeriesIndex",
    "SeriesStepRecord",
    "SeriesHandle",
    "SeriesStepHandle",
    "SeriesWriter",
    "open_series",
    "write_series",
]

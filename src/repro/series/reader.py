"""Lazy, time-indexed reads over a plotfile series.

:func:`open_series` parses the manifest and returns a :class:`SeriesHandle`;
nothing is decoded until a field is asked for.  Per step the handle hands out
a :class:`SeriesStepHandle` — a :class:`~repro.core.reader.PlotfileHandle`
whose chunk decode stage resolves temporal references: a key chunk decodes
directly, a delta chunk first resolves the *same chunk* of its reference
step (recursively, back to the nearest keyframe) and adds the stored code
differences.  Resolution is chunk-granular and memoised in the PR-3 style
chunk caches, so

* reading a box at step *t* decodes only the chunks intersecting the box —
  at step *t* and along those chunks' reference chains — never a chunk
  outside the request;
* :meth:`SeriesHandle.time_slice` walks a box through every step while each
  chunk's chain is decoded exactly once (shared code cache across steps).

All decode work is counted in one shared :class:`~repro.core.reader.ReadStats`
(`handle.stats`), which is what the chain-locality tests assert against.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import AmrHierarchy
from repro.compress.temporal import MODE_DELTA, TemporalDeltaCodec
from repro.core.reader import DatasetReadPlan, PlotfileHandle, ReadPlan, ReadStats
from repro.series.index import SeriesIndex, SeriesStepRecord
from repro.stream.journal import (
    JOURNAL_FILENAME,
    load_live_index,
    replay_journal,
    tail_journal,
)

__all__ = ["SeriesHandle", "SeriesStepHandle", "open_series"]


def open_series(directory: str, cache=None, source=None) -> "SeriesHandle":
    """Open a series directory for lazy reading (exported as :func:`repro.open_series`).

    A directory still being written by an append-mode
    :class:`~repro.series.writer.SeriesWriter` opens too (``handle.live`` is
    true): the handle sees every journal-committed step, and
    :meth:`SeriesHandle.refresh` picks up new ones as they land.
    """
    return SeriesHandle(directory, cache=cache, source=source)


class _CodeStreamCache:
    """Resolved absolute code streams, LRU-bounded when a budget is given.

    Values are ``(codes array, eb, offset)`` tuples keyed by ``(step index,
    dataset, chunk)``.  Without a budget this is the PR-4 behaviour (memoise
    for the handle's lifetime); with one — a series opened onto a shared
    :class:`~repro.service.cache.ChunkCache`, i.e. a long-lived server —
    least-recently-used streams are evicted past the byte budget.  Eviction
    is always safe: a missing stream makes :meth:`SeriesStepHandle._resolve_codes`
    walk further back (at worst to the keyframe payloads) and re-derive it.
    """

    def __init__(self, max_bytes: Optional[int] = None):
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._entries: "OrderedDict[Tuple[int, str, int], Tuple[np.ndarray, float, float]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def __setitem__(self, key, value) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= int(old[0].nbytes)
            self._entries[key] = value
            self._bytes += int(value[0].nbytes)
            if self.max_bytes is not None:
                while self._bytes > self.max_bytes and len(self._entries) > 1:
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= int(evicted[0].nbytes)


class SeriesStepHandle(PlotfileHandle):
    """One step of a series: a plotfile handle that can follow delta chains.

    Everything metadata- and geometry-related is inherited; only the chunk
    decode stage (:meth:`_decode_chunks`) is replaced by temporal chain
    resolution through the owning :class:`SeriesHandle`.
    """

    def __init__(self, series: "SeriesHandle", step_index: int, path: str):
        super().__init__(path, cache=series.cache, source=series._source_spec)
        self._series = series
        self._step_index = step_index
        # all step handles of a series report into one shared stats object;
        # the I/O charged during open (the superblock loads) moves with it
        series.stats.bytes_read += self.stats.bytes_read
        series.stats.requests += self.stats.requests
        series.stats.coalesced_requests += self.stats.coalesced_requests
        self.stats = series.stats

    # ------------------------------------------------------------------
    def _record(self) -> SeriesStepRecord:
        return self._series.index.steps[self._step_index]

    def _resolve_codes(self, dsname: str, chunk_index: int,
                       payload: Optional[bytes] = None
                       ) -> Tuple[np.ndarray, float, float]:
        """Absolute grid codes of one chunk: (codes, eb, offset).

        Walks the reference chain *iteratively* back to the nearest keyframe
        or cached stream (an arbitrary ``keyframe_interval`` must not hit the
        interpreter's recursion limit), then folds the collected deltas
        forward.  Every stream along the chain is decoded at most once per
        series handle (memoised in the shared code cache) and charged to
        :attr:`stats`.  ``payload`` short-circuits this step's own chunk read
        (:meth:`_decode_chunks` prefetches a whole decode group as one
        coalesced batch); chain steps still read individually — which chain
        a chunk needs is only known while walking it.
        """
        series = self._series
        cached = series._codes.get((self._step_index, dsname, chunk_index))
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        # walk back, newest first, until a key stream or a cached resolution
        pending: List[Tuple[int, np.ndarray, Dict[str, object]]] = []
        step = self._step_index
        while True:
            cached = series._codes.get((step, dsname, chunk_index))
            if cached is not None:
                self.stats.cache_hits += 1
                entry = cached
                codes = cached[0]
                break
            handle = series.open_step(step)
            if payload is not None and step == self._step_index:
                raw, payload = payload, None
            else:
                raw = handle._file.read_chunk_payload(dsname, chunk_index)
                handle._sync_io()
            mode, codes, meta = TemporalDeltaCodec.unpack_codes(raw)
            self.stats.chunks_decoded += 1
            if mode != MODE_DELTA:
                entry = (codes, float(meta["eb"]), float(meta["offset"]))
                series._codes[(step, dsname, chunk_index)] = entry
                break
            record = series.index.steps[step].dataset(dsname)
            if record is None or record.ref is None:
                raise ValueError(
                    f"step {step} stores {dsname!r} as a delta stream but "
                    "the series manifest records no reference step")
            pending.append((step, codes, meta))
            step = record.ref
        # fold the deltas forward onto the resolved base, caching each step;
        # the answer is returned directly — the code cache may be byte-bounded
        # and must be allowed to evict what was just inserted
        for step, deltas, meta in reversed(pending):
            if deltas.size != codes.size:
                raise ValueError(
                    f"delta chunk {chunk_index} of {dsname!r} at step {step} "
                    f"has {deltas.size} codes but its reference has "
                    f"{codes.size}; the series is corrupt")
            codes = codes + deltas
            entry = (codes, float(meta["eb"]), float(meta["offset"]))
            series._codes[(step, dsname, chunk_index)] = entry
        return entry

    def _decode_chunks(self, plan: ReadPlan, dplan: DatasetReadPlan,
                       indices: Sequence[int],
                       backend=None) -> Dict[int, np.ndarray]:
        # ``backend`` is accepted for signature compatibility with the base
        # handle (the query engine passes its pool) but deliberately unused:
        # delta-chain resolution walks the shared per-series code cache
        # step by step, which is inherently sequential
        out: Dict[int, np.ndarray] = {}
        misses: List[int] = []
        for index in indices:
            cached = self._cache.get((dplan.name, index))
            if cached is not None:
                out[index] = cached
                self.stats.cache_hits += 1
            else:
                misses.append(index)
        # prefetch this step's payloads for the whole decode group as one
        # coalesced batch (chunks whose code stream is already resolved in
        # the series cache need no payload at all)
        prefetched: Dict[int, bytes] = {}
        need = [i for i in misses
                if self._series._codes.get(
                    (self._step_index, dplan.name, i)) is None]
        if need:
            payloads = self._file.read_chunk_payloads(dplan.name, need)
            self._sync_io()
            prefetched = dict(zip(need, payloads))
        for index in misses:
            codes, eb, offset = self._resolve_codes(
                dplan.name, index, payload=prefetched.get(index))
            chunk = np.zeros(dplan.chunk_elements, dtype=np.float64)
            chunk[:codes.size] = TemporalDeltaCodec.grid_values(codes, eb, offset)
            self._cache[(dplan.name, index)] = chunk
            out[index] = chunk
        return out

    # ------------------------------------------------------------------
    def read(self, template: Optional[AmrHierarchy] = None,
             backend=None, comm=None) -> AmrHierarchy:
        """Full staged read; delta chains are pre-resolved into the chunk cache.

        Chain resolution must run through the series handle (the shared code
        cache is what keeps chains chunk-granular), so every chunk is
        materialised into the PR-3 chunk cache in-process first; the staged
        decode/place/refill pipeline then runs entirely on cache hits, over
        the cached scan plan with a fresh output hierarchy.
        """
        if template is not None:
            raise ValueError(
                "series steps are always self-describing; the template "
                "override would bypass delta-chain resolution")
        from dataclasses import replace

        from repro.core.reader import _empty_like, execute_read
        from repro.parallel.backend import ExecutionBackend, make_backend

        plan = self._scan()
        # collect the resolved chunks into a local map rather than trusting
        # the chunk cache to retain them: a shared byte-budgeted cache may
        # evict between materialisation and placement
        resolved_chunks: Dict[Tuple[str, int], np.ndarray] = {}
        for dplan in plan.datasets:
            decoded = self._decode_chunks(plan, dplan, range(dplan.nchunks))
            for index, chunk in decoded.items():
                resolved_chunks[(dplan.name, index)] = chunk
        owns = not isinstance(backend, ExecutionBackend)
        resolved = make_backend(backend if backend is not None
                                else self.config.backend,
                                self.config.backend_workers)
        try:
            fresh = replace(plan, structure=_empty_like(plan.structure))
            return execute_read(self._file, fresh, resolved, comm=comm,
                                stats=self.stats, cache=resolved_chunks)
        finally:
            if owns:
                resolved.close()


class SeriesHandle:
    """An open plotfile series: inspect cheaply, decode lazily, slice time.

    * :meth:`steps`, :attr:`fields`, :attr:`times` — manifest only;
    * :meth:`read_field` — one field over one region at one step, decoding
      only the intersecting chunks and their reference chains;
    * :meth:`time_slice` — a region's evolution across steps as one array;
    * :meth:`read` — a whole hierarchy at one step.

    Step handles, decoded chunk values and resolved code streams are all
    cached on the series handle, shared across steps (a keyframe chunk
    resolved for step 3's chain is a cache hit for step 4's).  By default —
    like the single-file handle's chunk cache — the caches are unbounded for
    the handle's lifetime; open a fresh handle to drop them.  With ``cache``
    (a shared :class:`~repro.service.cache.ChunkCache`) both the decoded
    chunk values and the resolved code streams are byte-bounded to its
    budget, so long-lived consumers (the query service) stay bounded too.
    """

    def __init__(self, directory: str, cache=None, source=None):
        from repro.h5lite.source import ByteSource

        if isinstance(source, ByteSource):
            raise ValueError(
                "a series opens one file per step; pass a source spec "
                "string or a factory callable, not a single ByteSource")
        self.directory = str(directory)
        self.index, view = load_live_index(self.directory)
        #: the series is still being appended to (a journal is present);
        #: :meth:`refresh` keeps the handle current until it finalizes
        self._live = view is not None
        self._journal_offset = 0 if view is None else view.end_offset
        self._journal_crc = 0 if view is None else view.genesis_crc
        self._refresh_lock = threading.Lock()
        #: the recipe every step handle opens its file through
        self._source_spec = source
        self.stats = ReadStats()
        #: refresh accounting (mirrored into the engine's metrics registry):
        #: polls issued, steps picked up live, and full manifest reloads
        #: (compaction/finalize generation switches)
        self.refreshes = 0
        self.steps_appended = 0
        self.index_reloads = 0
        #: optional shared :class:`~repro.service.cache.ChunkCache`; every
        #: step handle stores its decoded chunk values there (keyed by the
        #: step's own path) instead of a private per-step dict
        self.cache = cache
        self._handles: Dict[int, SeriesStepHandle] = {}
        #: (step index, dataset, chunk) -> (absolute codes, eb, offset);
        #: byte-bounded to the shared cache's budget when one is given, so a
        #: long-lived server cannot grow it without limit
        self._codes = _CodeStreamCache(
            cache.max_bytes if cache is not None
            and hasattr(cache, "max_bytes") else None)
        # guards the step-handle pool: concurrent readers (the query service
        # worker pool) must not race open_step into leaked duplicate handles
        self._handles_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._handles_lock:
            if not self._closed:
                for handle in self._handles.values():
                    handle.close()
                self._handles.clear()
                self._closed = True

    def __enter__(self) -> "SeriesHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self.index.nsteps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SeriesHandle({self.directory!r}, nsteps={self.index.nsteps}, "
                f"codec={self.index.codec!r})")

    # ------------------------------------------------------------------
    # manifest-level metadata (nothing decoded)
    # ------------------------------------------------------------------
    @property
    def nsteps(self) -> int:
        return self.index.nsteps

    @property
    def fields(self) -> Tuple[str, ...]:
        return tuple(self.index.components)

    @property
    def codec(self) -> str:
        return self.index.codec

    @property
    def error_bound(self) -> float:
        return self.index.error_bound

    @property
    def times(self) -> List[float]:
        return self.index.times()

    def steps(self) -> List[SeriesStepRecord]:
        """The manifest's per-step records (paths, kinds, stats)."""
        return list(self.index.steps)

    @property
    def live(self) -> bool:
        """Whether the series is still being appended to (journal present)."""
        return self._live

    @property
    def high_water(self) -> int:
        """Index of the newest committed step (-1 for an empty live series)."""
        return self.index.nsteps - 1

    def refresh(self) -> int:
        """Pick up steps committed since the handle last looked; returns how many.

        Committed steps are immutable, so a refresh only ever *appends* to
        the in-memory index — open step handles, decoded chunk values and
        resolved code streams all stay valid and warm.  The steady-state cost
        when nothing changed is one ``stat`` plus a 24-byte journal head
        probe; new steps cost exactly their own journal records.  When the
        writer compacted (journal rewritten) or finalized (journal gone) the
        handle falls back to one manifest reload — still merged append-only
        into the same index object.  Once the series finalizes, refresh
        settles to a free no-op.
        """
        if not self._live:
            return 0
        with self._refresh_lock:
            if not self._live:
                return 0
            self.refreshes += 1
            path = os.path.join(self.directory, JOURNAL_FILENAME)
            tail = tail_journal(path, self._journal_offset, self._journal_crc)
            if tail.status == "ok":
                appended = replay_journal(self.index, tail, path=path)
                self._journal_offset = tail.end_offset
                self.steps_appended += appended
                return appended
            # compaction or finalize switched generations: full reload,
            # merged by appending the unseen suffix onto the live index
            self.index_reloads += 1
            before = self.index.nsteps
            if tail.status == "gone":
                fresh, view = SeriesIndex.load(self.directory), None
            else:
                fresh, view = load_live_index(self.directory)
            if fresh.nsteps < before:
                raise ValueError(
                    f"series {self.directory!r} lost steps ({before} -> "
                    f"{fresh.nsteps}); committed steps are immutable — the "
                    "directory was rewritten by something other than the "
                    "append-mode writer")
            self.index.steps.extend(fresh.steps[before:])
            if view is None:
                self._live = False
                self._journal_offset = 0
                self._journal_crc = 0
            else:
                self._journal_offset = view.end_offset
                self._journal_crc = view.genesis_crc
            self.steps_appended += self.index.nsteps - before
            return self.index.nsteps - before

    def describe(self) -> Dict[str, object]:
        """A flat summary (what ``python -m repro series-info`` prints)."""
        index = self.index
        return {
            "directory": self.directory,
            "nsteps": index.nsteps,
            "live": self._live,
            "high_water": self.high_water,
            "codec": index.codec,
            "error_bound": index.error_bound,
            "error_bound_mode": index.error_bound_mode,
            "keyframe_interval": index.keyframe_interval,
            "fields": list(index.components),
            "stored_bytes": index.stored_bytes,
            "raw_bytes": index.raw_bytes,
            "compression_ratio": index.compression_ratio,
            "keyframe_only_bytes": index.key_bytes,
            "delta_saved_bytes": index.delta_saved_bytes,
            "keyframes": sum(1 for s in index.steps if s.kind == "key"),
        }

    # ------------------------------------------------------------------
    def _step_index(self, step: int) -> int:
        nsteps = self.index.nsteps
        if not -nsteps <= step < nsteps:
            raise IndexError(
                f"step {step} out of range for a series of {nsteps} steps")
        return step % nsteps if nsteps else 0

    def open_step(self, step: int = -1) -> SeriesStepHandle:
        """The (cached) plotfile handle of one step; negative indices count back."""
        index = self._step_index(step)
        with self._handles_lock:
            if self._closed:
                raise ValueError("series handle is closed")
            handle = self._handles.get(index)
            if handle is None:
                path = os.path.join(self.directory, self.index.steps[index].path)
                handle = SeriesStepHandle(self, index, path)
                self._handles[index] = handle
            return handle

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read_field(self, name: str, level: int = 0, box: Optional[Box] = None,
                   step: int = -1, refill: bool = True,
                   fill_value: float = 0.0,
                   max_level: Optional[int] = None) -> np.ndarray:
        """One field over one region at one step (see PlotfileHandle.read_field)."""
        return self.open_step(step).read_field(name, level=level, box=box,
                                               refill=refill,
                                               fill_value=fill_value,
                                               max_level=max_level)

    def read(self, step: int = -1, backend=None) -> AmrHierarchy:
        """Fully reconstruct one step's hierarchy."""
        return self.open_step(step).read(backend=backend)

    def time_slice(self, name: str, box: Optional[Box] = None, level: int = 0,
                   steps: Optional[Sequence[int]] = None, refill: bool = True,
                   fill_value: float = 0.0,
                   max_level: Optional[int] = None
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """A region's evolution: (times, values of shape ``(nsteps, *box.shape)``).

        Only the chunks whose unit blocks intersect ``box`` are decoded — at
        each requested step and along those chunks' delta chains — so
        extracting a small probe region from a long series stays far cheaper
        than decoding the plotfiles in full.
        """
        indices = list(range(self.index.nsteps)) if steps is None \
            else [self._step_index(s) for s in steps]
        times = np.asarray([self.index.steps[i].time for i in indices],
                           dtype=np.float64)
        values = [self.read_field(name, level=level, box=box, step=i,
                                  refill=refill, fill_value=fill_value,
                                  max_level=max_level)
                  for i in indices]
        return times, np.stack(values) if values else np.zeros((0,))

"""Compression filters for chunked datasets (the H5Z layer).

Two lossy filters are provided:

* :class:`SZChunkFilter` — the classic behaviour AMReX's compression relies
  on: every chunk buffer handed to the filter is compressed in full,
  *including any padding* needed to fill the last (or an oversized) chunk.
  The filter has no idea how much of the chunk is real data.

* :class:`AMRICChunkFilter` — the paper's §3.3 modification: the writer passes
  the **actual number of valid elements** for the chunk, the filter compresses
  only those and records the count so decompression can re-pad.  This is what
  lets AMRIC use one big chunk per rank without paying for the padding.

Both keep per-call statistics (`FilterStats`) so the I/O cost model can count
compressor launches and padded bytes — the two quantities that drive the
paper's Figures 17/18.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.compress.base import Compressor
from repro.compress.lossless import zlib_compress, zlib_decompress

__all__ = [
    "FilterStats",
    "Filter",
    "NoCompressionFilter",
    "SZChunkFilter",
    "AMRICChunkFilter",
    "FilterRegistry",
    "default_registry",
]


@dataclass
class FilterStats:
    """Cumulative statistics across filter invocations."""

    calls: int = 0
    input_elements: int = 0
    padded_elements: int = 0
    output_bytes: int = 0

    def reset(self) -> None:
        self.calls = 0
        self.input_elements = 0
        self.padded_elements = 0
        self.output_bytes = 0


class Filter:
    """Base chunk filter: bytes-in / bytes-out, one call per chunk."""

    filter_id = "identity"

    def __init__(self) -> None:
        self.stats = FilterStats()

    # -- interface -----------------------------------------------------
    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        """Compress one chunk (a 1D float array of the dataset's chunk size)."""
        raise NotImplementedError

    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        """Invert :meth:`encode`, returning a 1D array of ``chunk_elements``."""
        raise NotImplementedError

    def _account(self, chunk: np.ndarray, actual_elements: Optional[int], out: bytes) -> None:
        self.stats.calls += 1
        self.stats.input_elements += int(chunk.size)
        if actual_elements is not None:
            self.stats.padded_elements += int(chunk.size) - int(actual_elements)
        self.stats.output_bytes += len(out)


class NoCompressionFilter(Filter):
    """Pass-through (used by the no-compression writer); still counts calls."""

    filter_id = "none"

    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        out = np.asarray(chunk, dtype=np.float64).tobytes()
        self._account(chunk, actual_elements, out)
        return out

    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        out = np.frombuffer(payload, dtype=np.float64)
        if out.size != chunk_elements:
            raise ValueError("corrupt chunk: element count mismatch")
        return out.copy()


class SZChunkFilter(Filter):
    """Classic compression filter: compresses the chunk buffer as handed over.

    ``actual_elements`` is ignored — padding (if any) is compressed along with
    the data, exactly like a filter that has no side channel for the real
    size.  This is the AMReX-original behaviour.
    """

    filter_id = "sz_classic"

    def __init__(self, compressor: Compressor):
        super().__init__()
        self.compressor = compressor

    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        chunk = np.asarray(chunk, dtype=np.float64).reshape(-1)
        buffer = self.compressor.compress(chunk)
        out = buffer.payload
        self._account(chunk, actual_elements if actual_elements is not None else chunk.size, out)
        return out

    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        out = np.asarray(self.compressor.decompress(payload), dtype=np.float64).reshape(-1)
        if out.size != chunk_elements:
            raise ValueError(
                f"decompressed chunk has {out.size} elements, expected {chunk_elements}")
        return out


class AMRICChunkFilter(Filter):
    """AMRIC's modified filter: compress only the valid prefix of the chunk.

    The writer passes ``actual_elements`` (the rank's real data size).  The
    filter compresses only that prefix and stores the count in a tiny header so
    the decoder can restore the chunk to its nominal size (the tail is padding
    whose values are irrelevant and restored as zeros).
    """

    filter_id = "sz_amric"

    def __init__(self, compressor: Compressor):
        super().__init__()
        self.compressor = compressor

    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        chunk = np.asarray(chunk, dtype=np.float64).reshape(-1)
        if actual_elements is None:
            actual_elements = chunk.size
        actual_elements = int(actual_elements)
        if not 0 < actual_elements <= chunk.size:
            raise ValueError(
                f"actual_elements {actual_elements} out of range for chunk of {chunk.size}")
        buffer = self.compressor.compress(chunk[:actual_elements])
        out = struct.pack("<QQ", actual_elements, chunk.size) + buffer.payload
        self._account(chunk, actual_elements, out)
        return out

    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        actual_elements, nominal = struct.unpack_from("<QQ", payload, 0)
        data = np.asarray(self.compressor.decompress(payload[16:]), dtype=np.float64).reshape(-1)
        if data.size != actual_elements:
            raise ValueError("corrupt AMRIC chunk: actual-element mismatch")
        out = np.zeros(chunk_elements, dtype=np.float64)
        out[:actual_elements] = data
        return out


class LosslessFilter(Filter):
    """A zlib filter (the kind of lossless filter HDF5 ships by default)."""

    filter_id = "zlib"

    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        out = zlib_compress(np.asarray(chunk, dtype=np.float64).tobytes())
        self._account(chunk, actual_elements, out)
        return out

    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        out = np.frombuffer(zlib_decompress(payload), dtype=np.float64)
        if out.size != chunk_elements:
            raise ValueError("corrupt zlib chunk")
        return out.copy()


class FilterRegistry:
    """Maps filter ids to constructors so files can name their filters."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Filter]] = {}

    def register(self, filter_id: str, factory: Callable[..., Filter]) -> None:
        if filter_id in self._factories:
            raise ValueError(f"filter {filter_id!r} already registered")
        self._factories[filter_id] = factory

    def create(self, filter_id: str, **kwargs) -> Filter:
        if filter_id not in self._factories:
            raise KeyError(f"unknown filter {filter_id!r}; registered: {sorted(self._factories)}")
        return self._factories[filter_id](**kwargs)

    def known(self):
        return sorted(self._factories)


def default_registry() -> FilterRegistry:
    """Registry with the built-in filters."""
    registry = FilterRegistry()
    registry.register("none", NoCompressionFilter)
    registry.register("zlib", LosslessFilter)
    registry.register("sz_classic", SZChunkFilter)
    registry.register("sz_amric", AMRICChunkFilter)
    return registry

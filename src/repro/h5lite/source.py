"""Pluggable byte sources under :class:`~repro.h5lite.file.H5LiteFile`.

Every read in the stack used to bottom out in a blocking ``seek``+``read``
against one local POSIX file handle under one lock.  That is the right call
for a warm local disk and exactly the wrong one for a high-latency medium
(NFS, HTTP/S3 range requests), where each round-trip costs tens of
milliseconds and the staged reader would serialize behind N per-chunk seeks.

This module abstracts "where the bytes live" behind :class:`ByteSource` —
``read_at(offset, size)``, a vectorized ``read_many(ranges)`` and ``size()``
— with four implementations:

:class:`LocalFileSource`
    The previous behaviour: seek+read on a local file handle (one lock), with
    exactly-adjacent ranges in a ``read_many`` batch merged into one syscall.
:class:`MmapSource`
    Zero-copy ``memoryview`` slices of a memory-mapped file for warm local
    reads.  Views handed out survive :meth:`close` (closing defers until the
    last view dies).
:class:`MemorySource`
    Bytes held in memory (tests, in-memory round-trips, pre-fetched files).
:class:`RangeSource`
    The remote-style adapter: wraps any base source with per-request
    latency/bandwidth accounting (optionally *simulated* by sleeping, which is
    how the remote benchmark measures time-to-first-array), **request
    coalescing** (near-adjacent ranges within a gap threshold merge into one
    ranged read), a byte-budgeted **block cache** (fixed-size aligned blocks,
    LRU, counted with the same eviction-stats idiom as
    :mod:`repro.service.cache`) and sequential **readahead**.

Every source counts its traffic in a :class:`SourceStats`: ranges requested
by callers (pre-coalescing), reads actually issued to the backing medium
(post-coalescing), bytes fetched, block-cache hits/misses/evictions and
simulated wait time.  :class:`~repro.core.reader.ReadStats` surfaces these
per handle; the query engine sums them per engine.

Sources are picked by spec string (``repro.open(path, source="mmap")``,
``repro info --source latency:50ms``) through :func:`make_source`.
"""

from __future__ import annotations

import io
import mmap
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ByteSource",
    "SourceStats",
    "LocalFileSource",
    "MmapSource",
    "MemorySource",
    "RangeSource",
    "make_source",
    "coalesce_ranges",
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_BLOCK_CACHE_BYTES",
    "DEFAULT_GAP_BYTES",
]

#: aligned block size of the :class:`RangeSource` cache
DEFAULT_BLOCK_BYTES = 64 * 1024
#: byte budget of the :class:`RangeSource` block cache
DEFAULT_BLOCK_CACHE_BYTES = 32 * 1024 * 1024
#: ranges closer than this merge into one ranged read
DEFAULT_GAP_BYTES = 64 * 1024

#: (offset, size) byte range
Range = Tuple[int, int]


@dataclass
class SourceStats:
    """Traffic counters for one source's lifetime (the I/O mirror of
    :class:`~repro.service.cache.CacheStats`)."""

    requests: int = 0             #: ranges callers asked for (pre-coalescing)
    coalesced_requests: int = 0   #: reads issued to the medium (post-coalescing)
    bytes_read: int = 0           #: bytes fetched from the medium
    cache_hits: int = 0           #: block-cache hits (RangeSource only)
    cache_misses: int = 0         #: block-cache misses (RangeSource only)
    evictions: int = 0            #: blocks evicted past the budget
    evicted_bytes: int = 0
    readahead_blocks: int = 0     #: blocks fetched speculatively
    wait_seconds: float = 0.0     #: simulated latency/bandwidth time accrued

    @property
    def cache_requests(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / max(self.cache_requests, 1)

    @property
    def coalescing_factor(self) -> float:
        """Ranges requested per read issued (>= 1 once coalescing helps)."""
        return self.requests / max(self.coalesced_requests, 1)

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "coalesced_requests": self.coalesced_requests,
            "bytes_read": self.bytes_read,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "readahead_blocks": self.readahead_blocks,
            "wait_seconds": self.wait_seconds,
            "hit_rate": self.hit_rate,
            "coalescing_factor": self.coalescing_factor,
        }

    def totals(self) -> Tuple[int, int, int]:
        """``(bytes_read, requests, coalesced_requests)`` — the traffic triple
        consumers watermark against (see
        :meth:`repro.core.reader.PlotfileHandle._sync_io`).  A handle opening
        onto an *already-shared* source snapshots this before its first read
        so it never absorbs traffic another handle caused."""
        return (self.bytes_read, self.requests, self.coalesced_requests)

    def samples(self, labels: Optional[Dict[str, str]] = None):
        """This source's traffic as registry collector samples.

        The ``(name, kind, labels, value)`` rows a
        :class:`repro.obs.metrics.MetricsRegistry` collector yields — how the
        query engine exposes per-source I/O without touching the read path.
        """
        tags = dict(labels or {})
        rows = [("repro_io_requests_total", "counter", self.requests),
                ("repro_io_reads_total", "counter", self.coalesced_requests),
                ("repro_io_bytes_read_total", "counter", self.bytes_read),
                ("repro_io_block_cache_hits_total", "counter", self.cache_hits),
                ("repro_io_block_cache_misses_total", "counter",
                 self.cache_misses),
                ("repro_io_block_cache_evictions_total", "counter",
                 self.evictions),
                ("repro_io_readahead_blocks_total", "counter",
                 self.readahead_blocks),
                ("repro_io_wait_seconds_total", "counter", self.wait_seconds)]
        return [(name, kind, tags, float(value)) for name, kind, value in rows]


def _check_range(offset: int, size: int, total: int, name: str) -> None:
    if offset < 0 or size < 0:
        raise ValueError(
            f"{name}: invalid range (offset={offset}, size={size}); "
            "offset and size must be >= 0")
    if offset + size > total:
        raise ValueError(
            f"{name}: range [{offset}, {offset + size}) reads past EOF "
            f"(source is {total} bytes); the file is truncated or the "
            "range is wrong")


def coalesce_ranges(ranges: Sequence[Range], gap: int
                    ) -> List[Tuple[int, int, List[int]]]:
    """Merge byte ranges whose gaps are at most ``gap`` bytes.

    Returns ``(start, end, member_indices)`` groups in offset order, where
    ``member_indices`` point into the input sequence.  Zero-size ranges are
    never grouped (they read nothing).  Overlapping ranges merge regardless
    of ``gap``.
    """
    order = sorted((i for i in range(len(ranges)) if ranges[i][1] > 0),
                   key=lambda i: ranges[i][0])
    groups: List[Tuple[int, int, List[int]]] = []
    for i in order:
        offset, size = ranges[i]
        if groups and offset - groups[-1][1] <= gap:
            start, end, members = groups.pop()
            members.append(i)
            groups.append((start, max(end, offset + size), members))
        else:
            groups.append((offset, offset + size, [i]))
    return groups


class ByteSource:
    """Where an :class:`~repro.h5lite.file.H5LiteFile`'s bytes live.

    The contract every implementation honours:

    * :meth:`read_at` returns exactly ``size`` bytes (``bytes`` or a
      zero-copy ``memoryview``); a range past :meth:`size` raises
      :class:`ValueError` (never a short read), a zero-size range returns an
      empty buffer without touching the medium;
    * :meth:`read_many` answers a batch of ranges in input order — the seam
      where coalescing implementations turn N chunk reads into few ranged
      reads;
    * all traffic is counted in :attr:`stats`.
    """

    def __init__(self) -> None:
        self.stats = SourceStats()

    # -- required ------------------------------------------------------
    def size(self) -> int:
        raise NotImplementedError

    def read_at(self, offset: int, size: int):
        raise NotImplementedError

    # -- provided ------------------------------------------------------
    def read_many(self, ranges: Sequence[Range]) -> List[object]:
        """Batch form of :meth:`read_at` (override to coalesce)."""
        return [self.read_at(offset, size) for offset, size in ranges]

    def close(self) -> None:
        pass

    def __enter__(self) -> "ByteSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalFileSource(ByteSource):
    """Seek+read against a local file (the previous ``H5LiteFile`` behaviour).

    One lock serializes the seek+read pair so concurrent readers (the query
    service decodes on a worker pool) cannot interleave them.  A
    :meth:`read_many` batch merges *exactly adjacent* ranges (chunks are
    written back-to-back, so a dataset's chunk batch usually collapses into
    one syscall).
    """

    def __init__(self, path: str):
        super().__init__()
        self.path = str(path)
        self._fh = open(self.path, "rb")
        self._size = os.fstat(self._fh.fileno()).st_size
        self._lock = threading.Lock()
        self._closed = False

    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, size: int) -> bytes:
        _check_range(offset, size, self._size, self.path)
        self.stats.requests += 1
        if size == 0:
            return b""
        with self._lock:
            self._fh.seek(offset)
            data = self._fh.read(size)
        self.stats.coalesced_requests += 1
        self.stats.bytes_read += len(data)
        if len(data) != size:
            raise ValueError(
                f"{self.path}: short read at offset {offset} "
                f"({len(data)} of {size} bytes); the file was truncated "
                "after open")
        return data

    def read_many(self, ranges: Sequence[Range]) -> List[object]:
        for offset, size in ranges:
            _check_range(offset, size, self._size, self.path)
        self.stats.requests += len(ranges)
        out: List[object] = [b""] * len(ranges)
        for start, end, members in coalesce_ranges(ranges, gap=0):
            with self._lock:
                self._fh.seek(start)
                data = self._fh.read(end - start)
            self.stats.coalesced_requests += 1
            self.stats.bytes_read += len(data)
            if len(data) != end - start:
                raise ValueError(
                    f"{self.path}: short read at offset {start} "
                    f"({len(data)} of {end - start} bytes); the file was "
                    "truncated after open")
            for i in members:
                offset, size = ranges[i]
                out[i] = data[offset - start:offset - start + size]
        return out

    def close(self) -> None:
        if not self._closed:
            self._fh.close()
            self._closed = True


class MmapSource(ByteSource):
    """Zero-copy ``memoryview`` slices of a memory-mapped local file.

    The fast path for warm local reads: no syscall per chunk, no staging
    copy — consumers parse compressed payloads straight out of the page
    cache.  Views handed out stay valid after :meth:`close`: closing the
    mapping while buffers are exported is deferred (the mapping lives until
    the last view is garbage-collected), so a decoded handle can outlive its
    file object.  An empty file cannot be mapped and raises at open.
    """

    def __init__(self, path: str):
        super().__init__()
        self.path = str(path)
        with open(self.path, "rb") as fh:
            self._size = os.fstat(fh.fileno()).st_size
            if self._size == 0:
                raise ValueError(f"{self.path} is empty; nothing to map")
            self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._view = memoryview(self._mm)
        self._closed = False

    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, size: int) -> memoryview:
        if self._closed:
            raise ValueError(f"{self.path}: source is closed")
        _check_range(offset, size, self._size, self.path)
        self.stats.requests += 1
        if size == 0:
            return memoryview(b"")
        self.stats.coalesced_requests += 1
        self.stats.bytes_read += size
        return self._view[offset:offset + size]

    def read_many(self, ranges: Sequence[Range]) -> List[object]:
        return [self.read_at(offset, size) for offset, size in ranges]

    def close(self) -> None:
        """Stop handing out views; the mapping itself lives while views do.

        ``mmap.close`` refuses (``BufferError``) while memoryviews are
        exported.  Instead of propagating that — which would make every
        consumer's teardown order-sensitive — the mapping is simply released
        to the garbage collector: exported views keep it alive, and the OS
        unmaps once the last one dies.
        """
        if self._closed:
            return
        self._closed = True
        self._view.release()
        try:
            self._mm.close()
        except BufferError:
            # views are still exported; drop our reference and let them
            # keep the mapping alive until they are collected
            pass
        self._mm = None  # type: ignore[assignment]


class MemorySource(ByteSource):
    """A source over bytes already in memory (zero-copy views)."""

    def __init__(self, data: Union[bytes, bytearray, memoryview],
                 name: str = "<memory>"):
        super().__init__()
        self.path = name
        self._data = memoryview(data).cast("B") if not isinstance(data, bytes) \
            else memoryview(data)
        self._size = self._data.nbytes

    @classmethod
    def from_file(cls, path: str) -> "MemorySource":
        """Slurp a whole file into memory (every later read is free)."""
        with open(path, "rb") as fh:
            return cls(fh.read(), name=str(path))

    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, size: int) -> memoryview:
        _check_range(offset, size, self._size, self.path)
        self.stats.requests += 1
        if size == 0:
            return memoryview(b"")
        self.stats.coalesced_requests += 1
        self.stats.bytes_read += size
        return self._data[offset:offset + size]


class RangeSource(ByteSource):
    """A remote-style adapter: coalescing + block cache + readahead + latency.

    Wraps any base source and models a ranged-read protocol (HTTP/S3 style):
    every read issued to the base costs ``latency`` seconds plus
    ``nbytes / bandwidth``, accrued in ``stats.wait_seconds`` and — with
    ``simulate=True`` — actually slept, so wall-clock benchmarks see the
    round-trips.  Three mechanisms keep the round-trip count down:

    * **coalescing** — a :meth:`read_many` batch's missing block runs merge
      when the gap between them is at most ``gap`` bytes (re-fetching a small
      cached gap is cheaper than a second round-trip);
    * **block cache** — fetched bytes land in fixed-size aligned blocks under
      a byte-budgeted LRU, so overlapping and repeated ranges are served
      locally;
    * **readahead** — when a batch starts right where the previous one ended
      (the sequential pattern of a staged full read), the final fetch is
      extended by ``readahead`` extra blocks.

    Thread-safe; assembly never depends on a block surviving the LRU between
    fetch and use (a batch pins its blocks locally), so an arbitrarily small
    budget stays correct — it only costs refetches.
    """

    def __init__(self, base: ByteSource, *,
                 latency: float = 0.0,
                 bandwidth: Optional[float] = None,
                 gap: int = DEFAULT_GAP_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 cache_bytes: int = DEFAULT_BLOCK_CACHE_BYTES,
                 readahead: int = 0,
                 simulate: bool = False):
        super().__init__()
        if block_bytes < 1:
            raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
        if cache_bytes < block_bytes:
            raise ValueError(
                f"cache_bytes ({cache_bytes}) must hold at least one block "
                f"({block_bytes})")
        if gap < 0 or readahead < 0:
            raise ValueError("gap and readahead must be >= 0")
        if latency < 0 or (bandwidth is not None and bandwidth <= 0):
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.base = base
        self.path = getattr(base, "path", "<wrapped>")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth) if bandwidth else None
        self.gap = int(gap)
        self.block_bytes = int(block_bytes)
        self.cache_bytes = int(cache_bytes)
        self.readahead = int(readahead)
        self.simulate = bool(simulate)
        self._size = base.size()
        self._nblocks = -(-self._size // self.block_bytes) if self._size else 0
        self._blocks: "OrderedDict[int, bytes]" = OrderedDict()
        self._cached_bytes = 0
        self._next_block = -1          #: sequential-readahead watermark
        self._lock = threading.RLock()

    def size(self) -> int:
        return self._size

    # -- block bookkeeping (callers hold the lock) ----------------------
    def _block_span(self, offset: int, size: int) -> range:
        return range(offset // self.block_bytes,
                     (offset + size - 1) // self.block_bytes + 1)

    def _insert_block(self, block: int, data: bytes) -> None:
        old = self._blocks.pop(block, None)
        if old is not None:
            self._cached_bytes -= len(old)
        self._blocks[block] = data
        self._cached_bytes += len(data)
        while self._cached_bytes > self.cache_bytes and len(self._blocks) > 1:
            _, evicted = self._blocks.popitem(last=False)
            self._cached_bytes -= len(evicted)
            self.stats.evictions += 1
            self.stats.evicted_bytes += len(evicted)

    def _fetch_run(self, first: int, last: int,
                   local: Dict[int, bytes]) -> None:
        """One ranged read covering blocks ``first..last`` (inclusive)."""
        start = first * self.block_bytes
        end = min((last + 1) * self.block_bytes, self._size)
        data = self.base.read_at(start, end - start)
        nbytes = end - start
        self.stats.coalesced_requests += 1
        self.stats.bytes_read += nbytes
        wait = self.latency
        if self.bandwidth is not None:
            wait += nbytes / self.bandwidth
        if wait > 0:
            self.stats.wait_seconds += wait
            if self.simulate:
                time.sleep(wait)
        for block in range(first, last + 1):
            lo = block * self.block_bytes - start
            piece = bytes(data[lo:lo + min(self.block_bytes, end - start - lo)])
            local[block] = piece
            self._insert_block(block, piece)

    # -- reads -----------------------------------------------------------
    def read_at(self, offset: int, size: int) -> bytes:
        return self.read_many([(offset, size)])[0]

    def read_many(self, ranges: Sequence[Range]) -> List[object]:
        for offset, size in ranges:
            _check_range(offset, size, self._size, self.path)
        with self._lock:
            self.stats.requests += len(ranges)
            needed = sorted({block for offset, size in ranges if size > 0
                             for block in self._block_span(offset, size)})
            # pin every needed block locally: cache hits are copied out now so
            # eviction mid-batch (a budget smaller than the batch span) can
            # never invalidate assembly
            local: Dict[int, bytes] = {}
            missing: List[int] = []
            for block in needed:
                cached = self._blocks.get(block)
                if cached is not None:
                    self._blocks.move_to_end(block)
                    self.stats.cache_hits += 1
                    local[block] = cached
                else:
                    self.stats.cache_misses += 1
                    missing.append(block)
            if missing:
                # merge missing-block runs whose byte gap is within threshold
                runs: List[List[int]] = [[missing[0], missing[0]]]
                for block in missing[1:]:
                    if (block - runs[-1][1] - 1) * self.block_bytes <= self.gap:
                        runs[-1][1] = block
                    else:
                        runs.append([block, block])
                # sequential readahead: a batch that starts where the last
                # one ended extends its final fetch past the request
                if self.readahead and needed[0] == self._next_block:
                    first, last = runs[-1]
                    extended = min(last + self.readahead, self._nblocks - 1)
                    self.stats.readahead_blocks += extended - last
                    runs[-1][1] = extended
                for first, last in runs:
                    self._fetch_run(first, last, local)
            if needed:
                self._next_block = needed[-1] + 1
            # assemble each range from the pinned blocks
            out: List[object] = []
            for offset, size in ranges:
                if size == 0:
                    out.append(b"")
                    continue
                span = self._block_span(offset, size)
                if len(span) == 1:
                    lo = offset - span[0] * self.block_bytes
                    out.append(local[span[0]][lo:lo + size])
                    continue
                pieces: List[bytes] = []
                for block in span:
                    base = block * self.block_bytes
                    lo = max(offset, base) - base
                    hi = min(offset + size, base + self.block_bytes) - base
                    pieces.append(local[block][lo:hi])
                out.append(b"".join(pieces))
            return out

    # -- cache management -----------------------------------------------
    @property
    def cached_bytes(self) -> int:
        return self._cached_bytes

    def clear_cache(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._cached_bytes = 0

    def close(self) -> None:
        self.clear_cache()
        self.base.close()


# ----------------------------------------------------------------------
# spec parsing: "mmap", "memory", "latency:50ms,block:4k,readahead:2", ...
# ----------------------------------------------------------------------
#: anything :func:`make_source` accepts: None (local), a source instance, a
#: spec string, or a callable ``path -> ByteSource``
SourceSpec = Union[None, str, ByteSource, Callable[[str], ByteSource]]

_BASES = ("local", "mmap", "memory")
_MODIFIERS = ("latency", "bandwidth", "gap", "block", "cache", "readahead",
              "range")


def _parse_duration(value: str, token: str) -> float:
    """Seconds from '50ms', '2s', '100us' or a bare number (seconds)."""
    units = {"us": 1e-6, "ms": 1e-3, "s": 1.0}
    for suffix, scale in sorted(units.items(), key=lambda kv: -len(kv[0])):
        if value.endswith(suffix):
            return float(value[:-len(suffix)]) * scale
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"bad duration {value!r} in source spec token {token!r}; "
            "expected e.g. 50ms, 0.1s") from None


def _parse_bytes(value: str, token: str) -> float:
    """Bytes from '64k', '8m', '1g' (base 1024) or a bare number."""
    units = {"k": 1024.0, "m": 1024.0 ** 2, "g": 1024.0 ** 3}
    lowered = value.lower().rstrip("ib")          # accept 64kib / 64kb / 64k
    if lowered and lowered[-1] in units:
        return float(lowered[:-1]) * units[lowered[-1]]
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"bad byte count {value!r} in source spec token {token!r}; "
            "expected e.g. 64k, 8m") from None


def parse_source_spec(spec: str) -> Dict[str, object]:
    """Parse a source spec string into ``{"base": ..., **range options}``.

    Grammar: comma-separated tokens.  A bare base name (``local``, ``mmap``,
    ``memory``) picks the byte source; any modifier token (``latency:50ms``,
    ``bandwidth:100m`` [bytes/s], ``gap:128k``, ``block:4k``, ``cache:8m``,
    ``readahead:2``, or bare ``range``) wraps the base in a
    :class:`RangeSource`.
    """
    out: Dict[str, object] = {"base": "local"}
    wrapped = False
    for raw in str(spec).split(","):
        token = raw.strip()
        if not token:
            continue
        name, _, value = token.partition(":")
        name = name.strip().lower()
        value = value.strip()
        if name in _BASES and not value:
            out["base"] = name
        elif name == "range" and not value:
            wrapped = True
        elif name == "latency":
            out["latency"] = _parse_duration(value, token)
            wrapped = True
        elif name == "bandwidth":
            out["bandwidth"] = _parse_bytes(value, token)
            wrapped = True
        elif name in ("gap", "block", "cache"):
            key = {"gap": "gap", "block": "block_bytes", "cache": "cache_bytes"}
            out[key[name]] = int(_parse_bytes(value, token))
            wrapped = True
        elif name == "readahead":
            try:
                out["readahead"] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad readahead {value!r} in source spec token "
                    f"{token!r}; expected a block count") from None
            wrapped = True
        else:
            raise ValueError(
                f"unknown source spec token {token!r}; expected one of "
                f"{', '.join(_BASES)} or "
                f"{', '.join(m + ':<value>' for m in _MODIFIERS[:-1])} "
                "or 'range'")
    out["range"] = wrapped
    return out


def make_source(path: str, spec: SourceSpec = None) -> ByteSource:
    """Build the byte source an :class:`H5LiteFile` opens ``path`` through.

    ``spec`` may be None (a plain :class:`LocalFileSource`), an already-built
    :class:`ByteSource` (used as-is; the caller manages sharing), a callable
    ``path -> ByteSource`` (how a series opens every step through the same
    recipe), or a spec string — see :func:`parse_source_spec`.
    """
    if spec is None:
        return LocalFileSource(path)
    if isinstance(spec, ByteSource):
        return spec
    if callable(spec):
        source = spec(path)
        if not isinstance(source, ByteSource):
            raise TypeError(
                f"source factory returned {type(source).__name__}, "
                "not a ByteSource")
        return source
    options = parse_source_spec(spec)
    base_name = options.pop("base")
    wrapped = options.pop("range")
    if base_name == "mmap":
        base: ByteSource = MmapSource(path)
    elif base_name == "memory":
        base = MemorySource.from_file(path)
    else:
        base = LocalFileSource(path)
    if not wrapped:
        return base
    return RangeSource(
        base,
        latency=float(options.get("latency", 0.0)),
        bandwidth=options.get("bandwidth"),
        gap=int(options.get("gap", DEFAULT_GAP_BYTES)),
        block_bytes=int(options.get("block_bytes", DEFAULT_BLOCK_BYTES)),
        cache_bytes=int(options.get("cache_bytes", DEFAULT_BLOCK_CACHE_BYTES)),
        readahead=int(options.get("readahead", 0)),
        # a spec that asks for latency/bandwidth wants to *feel* it
        simulate=bool(float(options.get("latency", 0.0)) > 0
                      or options.get("bandwidth")))

"""A minimal HDF5-like chunked container with a compression-filter pipeline.

The real AMRIC uses HDF5's chunked datasets and user-defined filters
(H5Z-SZ-style).  The properties the paper's contribution actually depends on
are reproduced here exactly:

* a dataset is split into **equal-size chunks** and the compression filter is
  invoked **once per chunk** (the source of AMReX's small-chunk start-up
  penalty);
* the chunk size must be the same across the whole dataset, so in a parallel
  write it must accommodate the largest per-rank contribution — either by
  padding (size overhead) or by telling the filter the *actual* number of
  valid elements (AMRIC's filter modification);
* filters see opaque chunk buffers and return compressed bytes; the file
  records per-chunk compressed sizes so chunks can be located and read back.

The on-disk layout (a JSON superblock plus raw chunk payloads) is intentionally
simple — this is not an HDF5 re-implementation, it is the minimal container
that preserves HDF5's chunk/filter cost structure and round-trips data.
"""

from repro.h5lite.file import H5LiteFile, DatasetInfo
from repro.h5lite.source import (
    ByteSource,
    SourceStats,
    LocalFileSource,
    MmapSource,
    MemorySource,
    RangeSource,
    make_source,
)
from repro.h5lite.filters import (
    Filter,
    FilterRegistry,
    NoCompressionFilter,
    SZChunkFilter,
    AMRICChunkFilter,
    default_registry,
)
from repro.h5lite.chunking import amrex_chunk_elements, amric_chunk_elements

__all__ = [
    "H5LiteFile",
    "DatasetInfo",
    "ByteSource",
    "SourceStats",
    "LocalFileSource",
    "MmapSource",
    "MemorySource",
    "RangeSource",
    "make_source",
    "Filter",
    "FilterRegistry",
    "NoCompressionFilter",
    "SZChunkFilter",
    "AMRICChunkFilter",
    "default_registry",
    "amrex_chunk_elements",
    "amric_chunk_elements",
]

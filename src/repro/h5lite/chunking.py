"""Chunk-size selection strategies.

Two policies from the paper:

* :func:`amrex_chunk_elements` — AMReX's original choice: a small fixed chunk
  (1024 elements) because the box-major, field-interleaved layout forbids
  anything larger than the smallest box (§3.3 Challenge 1).
* :func:`amric_chunk_elements` — AMRIC's choice: one chunk per rank, sized to
  the **largest** per-rank contribution (§3.3 Solution 2).  Combined with the
  actual-size-aware filter this maximises the chunk size without a padding
  penalty.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["AMREX_DEFAULT_CHUNK", "amrex_chunk_elements", "amric_chunk_elements"]

#: The HDF5 chunk size (in elements) AMReX's original compression uses.
AMREX_DEFAULT_CHUNK = 1024


def amrex_chunk_elements(smallest_box_elements: int | None = None,
                         default: int = AMREX_DEFAULT_CHUNK) -> int:
    """AMReX's original (small) chunk size.

    The chunk may not exceed the smallest box's per-field size, otherwise data
    from different fields would be compressed together; AMReX settles on a
    small fixed value.
    """
    if smallest_box_elements is None:
        return default
    return max(2, min(default, int(smallest_box_elements)))


def amric_chunk_elements(per_rank_elements: Sequence[int]) -> int:
    """AMRIC's chunk size: the largest per-rank element count.

    Every rank writes exactly one chunk of this (global) size; ranks with less
    data tell the filter their actual size instead of padding.
    """
    sizes = [int(s) for s in per_rank_elements if s > 0]
    if not sizes:
        raise ValueError("no rank holds any data")
    return max(sizes)

"""The H5Lite container file: groups, attributes and chunked datasets.

On disk a file is::

    [4-byte magic][8-byte superblock offset][chunk payload 0][chunk payload 1]...
    ...[JSON superblock]

The superblock records every dataset's dtype, logical shape, chunk size,
filter id and the (offset, nbytes, actual_elements) of each chunk.  Datasets
are written append-only; the superblock is rewritten on close.  This mirrors
how HDF5's chunked storage behaves for the purposes of the paper: one filter
call per chunk, uniform chunk size per dataset, per-chunk byte ranges on disk.

Besides free-form ``attrs``, the superblock carries an optional first-class
**header section** (:attr:`H5LiteFile.header`): an arbitrary JSON object a
writer can attach to make the file self-describing (the AMRIC plotfile header
of :mod:`repro.core.header` lives there).  Files written before the header
section existed load with ``header = None`` — the explicit signal for
template-based fallback reads.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.h5lite.filters import Filter, NoCompressionFilter
from repro.h5lite.source import ByteSource, SourceSpec, make_source

__all__ = ["H5LiteFile", "DatasetInfo", "ChunkRecord"]

_MAGIC = b"H5LT"


@dataclass
class ChunkRecord:
    """Location of one stored chunk."""

    offset: int
    nbytes: int
    actual_elements: int


@dataclass
class DatasetInfo:
    """Metadata for one dataset."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    chunk_elements: int
    filter_id: str
    chunks: List[ChunkRecord] = field(default_factory=list)
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def nelements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def stored_nbytes(self) -> int:
        return sum(c.nbytes for c in self.chunks)

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "chunk_elements": self.chunk_elements,
            "filter_id": self.filter_id,
            "chunks": [[c.offset, c.nbytes, c.actual_elements] for c in self.chunks],
            "attrs": self.attrs,
        }

    @staticmethod
    def from_json(obj: dict) -> "DatasetInfo":
        return DatasetInfo(
            name=obj["name"],
            shape=tuple(obj["shape"]),
            dtype=obj["dtype"],
            chunk_elements=int(obj["chunk_elements"]),
            filter_id=obj["filter_id"],
            chunks=[ChunkRecord(*c) for c in obj["chunks"]],
            attrs=dict(obj.get("attrs", {})),
        )


class H5LiteFile:
    """A single-file chunked container with a filter pipeline.

    Usage::

        with H5LiteFile(path, "w") as f:
            f.attrs["time"] = 0.5
            f.create_dataset("level_0/data", data=array, chunk_elements=4096,
                             filter=my_filter)
        with H5LiteFile(path, "r") as f:
            back = f.read_dataset("level_0/data", filter=my_filter)
    """

    def __init__(self, path: str, mode: str = "r", *,
                 source: SourceSpec = None):
        if mode not in ("r", "w"):
            raise ValueError("mode must be 'r' or 'w'")
        self.path = str(path)
        self.mode = mode
        self.attrs: Dict[str, object] = {}
        #: optional self-description written into the superblock (JSON object);
        #: None for files written before the header section existed
        self.header: Optional[Dict[str, object]] = None
        self.datasets: Dict[str, DatasetInfo] = {}
        self._closed = False
        #: the byte source reads go through (read mode only)
        self.source: Optional[ByteSource] = None
        if mode == "w":
            if source is not None:
                raise ValueError("source= applies to read mode only")
            self._fh = open(self.path, "wb")
            # placeholder header: magic + superblock offset (patched on close)
            self._fh.write(_MAGIC + struct.pack("<Q", 0))
            self._data_offset = self._fh.tell()
        else:
            self._fh = None
            self.source = make_source(self.path, source)
            self._load_superblock()

    # ------------------------------------------------------------------
    # context manager / lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "H5LiteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        if self.mode == "w":
            superblock_offset = self._fh.tell()
            superblock = json.dumps({
                "attrs": self.attrs,
                "header": self.header,
                "datasets": [d.to_json() for d in self.datasets.values()],
            }).encode("utf-8")
            self._fh.write(superblock)
            self._fh.seek(len(_MAGIC))
            self._fh.write(struct.pack("<Q", superblock_offset))
            self._fh.close()
        else:
            self.source.close()
        self._closed = True

    def _load_superblock(self) -> None:
        """Two bounded ranged reads: the 12-byte preamble, then the superblock.

        The superblock sits at the end of the file, so its size is known from
        the recorded offset and the source's total size — no ``read()``-to-EOF,
        which on a remote source would be an unbounded transfer.
        """
        total = self.source.size()
        header_len = len(_MAGIC) + 8
        if total < header_len:
            raise ValueError(f"{self.path} is truncated: no superblock offset")
        preamble = self.source.read_at(0, header_len)
        if preamble[:4] != _MAGIC:
            raise ValueError(f"{self.path} is not an H5Lite file")
        (superblock_offset,) = struct.unpack_from("<Q", preamble, 4)
        if superblock_offset >= total:
            raise ValueError(
                f"{self.path} has a corrupt or truncated superblock: offset "
                f"{superblock_offset} points past EOF (file is {total} bytes)")
        if superblock_offset < header_len:
            raise ValueError(
                f"{self.path} has a corrupt or truncated superblock: offset "
                f"{superblock_offset} points into the file preamble")
        raw = self.source.read_at(superblock_offset, total - superblock_offset)
        try:
            superblock = json.loads(bytes(raw).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{self.path} has a corrupt or truncated superblock: {exc}") from exc
        try:
            self.attrs = superblock["attrs"]
            self.header = superblock.get("header")
            self.datasets = {d["name"]: DatasetInfo.from_json(d)
                             for d in superblock["datasets"]}
        except (KeyError, TypeError, IndexError) as exc:
            raise ValueError(
                f"{self.path} has a malformed superblock: {exc!r}") from exc

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def create_dataset(self, name: str, data: np.ndarray,
                       chunk_elements: Optional[int] = None,
                       filter: Optional[Filter] = None,
                       actual_elements_per_chunk: Optional[Sequence[int]] = None,
                       attrs: Optional[Dict[str, object]] = None) -> DatasetInfo:
        """Write a dataset, chunked and filtered.

        Parameters
        ----------
        data:
            The array to store; it is flattened for chunking (HDF5 semantics
            with 1D chunking over the flat element stream).
        chunk_elements:
            Elements per chunk; defaults to the whole array in one chunk.
        filter:
            The compression filter; defaults to no compression.
        actual_elements_per_chunk:
            For AMRIC-style writes: the number of *valid* elements in each
            chunk (the rest is padding).  Length must equal the chunk count.
        """
        if self.mode != "w":
            raise ValueError("file is open read-only")
        if name in self.datasets:
            raise ValueError(f"dataset {name!r} already exists")
        data = np.asarray(data)
        flat = data.reshape(-1)
        if flat.size == 0:
            raise ValueError("cannot store an empty dataset")
        if chunk_elements is None:
            chunk_elements = flat.size
        chunk_elements = int(chunk_elements)
        if chunk_elements < 1:
            raise ValueError("chunk_elements must be >= 1")
        filter = filter or NoCompressionFilter()
        nchunks = (flat.size + chunk_elements - 1) // chunk_elements
        if actual_elements_per_chunk is not None and len(actual_elements_per_chunk) != nchunks:
            raise ValueError("actual_elements_per_chunk must have one entry per chunk")

        info = DatasetInfo(name=name, shape=tuple(int(s) for s in data.shape),
                           dtype=str(data.dtype), chunk_elements=chunk_elements,
                           filter_id=filter.filter_id, attrs=dict(attrs or {}))
        for i in range(nchunks):
            start = i * chunk_elements
            piece = flat[start:start + chunk_elements]
            if piece.size == chunk_elements and piece.dtype == np.float64:
                chunk = piece                     # full chunk: no staging copy
            else:
                chunk = np.zeros(chunk_elements, dtype=np.float64)
                chunk[:piece.size] = piece
            actual = piece.size
            if actual_elements_per_chunk is not None:
                actual = int(actual_elements_per_chunk[i])
            payload = filter.encode(chunk, actual_elements=actual)
            offset = self._fh.tell()
            self._fh.write(payload)
            info.chunks.append(ChunkRecord(offset=offset, nbytes=len(payload),
                                           actual_elements=actual))
        self.datasets[name] = info
        return info

    def create_dataset_from_chunks(self, name: str, payloads: Sequence[bytes], *,
                                   shape: Tuple[int, ...], dtype: str,
                                   chunk_elements: int, filter_id: str,
                                   actual_elements_per_chunk: Sequence[int],
                                   attrs: Optional[Dict[str, object]] = None) -> DatasetInfo:
        """Write a dataset whose chunks were already encoded elsewhere.

        This is the commit half of the staged write pipeline: the filter ran
        earlier (possibly on another worker — see
        :mod:`repro.parallel.backend`), and this method only appends the
        pre-encoded chunk payloads and records their byte ranges.  Byte
        layout is identical to :meth:`create_dataset` encoding the same
        chunks inline.
        """
        if self.mode != "w":
            raise ValueError("file is open read-only")
        if name in self.datasets:
            raise ValueError(f"dataset {name!r} already exists")
        if not payloads:
            raise ValueError("cannot store a dataset with no chunks")
        if len(actual_elements_per_chunk) != len(payloads):
            raise ValueError("actual_elements_per_chunk must have one entry per chunk")
        chunk_elements = int(chunk_elements)
        if chunk_elements < 1:
            raise ValueError("chunk_elements must be >= 1")
        info = DatasetInfo(name=name, shape=tuple(int(s) for s in shape),
                           dtype=str(dtype), chunk_elements=chunk_elements,
                           filter_id=filter_id, attrs=dict(attrs or {}))
        for payload, actual in zip(payloads, actual_elements_per_chunk):
            offset = self._fh.tell()
            self._fh.write(payload)
            info.chunks.append(ChunkRecord(offset=offset, nbytes=len(payload),
                                           actual_elements=int(actual)))
        self.datasets[name] = info
        return info

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read_chunk_payload(self, name: str, index: int) -> bytes:
        """Raw stored bytes of one chunk (no decoding).

        This is what lets consumers decode *selectively*: the staged reader
        (:mod:`repro.core.reader`) pulls only the payloads whose chunks
        intersect a request and ships them to decode workers as plain bytes.
        """
        return self.read_chunk_payloads(name, [index])[0]

    def read_chunk_payloads(self, name: str, indices: Sequence[int]) -> List[bytes]:
        """Raw stored bytes of several chunks, as one batch.

        The batch goes to the byte source as a single :meth:`ByteSource.read_many`
        call, so sources that coalesce (adjacent chunks of one dataset are
        contiguous on disk) turn N chunk reads into one ranged read — the
        difference between N round-trips and one on a high-latency source.
        Payloads come back in ``indices`` order.
        """
        if self.mode != "r":
            raise ValueError("file is open write-only")
        if name not in self.datasets:
            raise KeyError(f"no dataset named {name!r}; have {sorted(self.datasets)}")
        info = self.datasets[name]
        ranges = []
        for index in indices:
            if not 0 <= index < len(info.chunks):
                raise IndexError(
                    f"chunk {index} out of range for dataset {name!r} "
                    f"({len(info.chunks)} chunks)")
            chunk = info.chunks[index]
            ranges.append((chunk.offset, chunk.nbytes))
        try:
            payloads = self.source.read_many(ranges)
        except ValueError as exc:
            # a chunk range past EOF means the data section was cut off;
            # keep the established truncation diagnostics
            raise ValueError(
                f"{self.path} is truncated: a chunk of {name!r} reads past "
                f"EOF ({exc})") from exc
        return list(payloads)

    def read_dataset(self, name: str, filter: Optional[Filter] = None) -> np.ndarray:
        """Read a dataset back, applying ``filter`` to decode each chunk."""
        if name not in self.datasets:
            raise KeyError(f"no dataset named {name!r}; have {sorted(self.datasets)}")
        info = self.datasets[name]
        filter = filter or NoCompressionFilter()
        if filter.filter_id != info.filter_id:
            raise ValueError(
                f"dataset was written with filter {info.filter_id!r}, not {filter.filter_id!r}")
        out = np.empty(info.nelements, dtype=np.float64)
        payloads = self.read_chunk_payloads(name, range(len(info.chunks)))
        pos = 0
        for payload in payloads:
            decoded = filter.decode(payload, info.chunk_elements)
            take = min(info.nelements - pos, info.chunk_elements)
            out[pos:pos + take] = decoded[:take]
            pos += take
        return out.reshape(info.shape).astype(np.dtype(info.dtype))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.datasets

    def dataset_names(self) -> List[str]:
        return sorted(self.datasets)

    def total_stored_bytes(self) -> int:
        return sum(d.stored_nbytes for d in self.datasets.values())

    def file_nbytes(self) -> int:
        """Actual size of the container on disk (only valid after close)."""
        return os.path.getsize(self.path)

"""The staged write pipeline: plan → pack → encode → commit.

``AMRICWriter.write_plotfile`` used to be one serial loop doing everything —
preprocessing, buffer fills, filter calls, file writes and per-rank
bookkeeping — which left the rank parallelism of the in situ design
unexpressed.  This module decomposes the write into four explicit stages,
each a pure function over a small dataclass:

``plan`` (:func:`plan_write`)
    Preprocess every level (§3.1) and lay out one chunk per rank per field
    with the global chunk size from the collective max (§3.3); produces a
    :class:`WritePlan` of :class:`DatasetPlan` entries.
``pack`` (:func:`pack_dataset`)
    Fill one dataset's write buffer (field-major, per-rank chunk slices) from
    the AMR level; produces a :class:`PackedDataset`.
``encode`` (:func:`encode_job`)
    Run the AMRIC filter over one dataset's chunk sequence.  This is the
    independent work item the writer submits to an execution backend
    (:mod:`repro.parallel.backend`): datasets encode in parallel, while the
    chunks *within* a dataset stay ordered so the shared-Huffman-table reuse
    across a level's ranks (unit SLE) produces byte-identical payloads on
    every backend.
``commit`` (:func:`commit_dataset` / :func:`dataset_record`)
    Append the encoded chunks to the H5Lite file and distil the quality /
    size record the :class:`~repro.core.pipeline.WriteReport` aggregates.

Everything that crosses a backend boundary (:class:`EncodeJob`,
:class:`EncodeResult`) is a plain picklable dataclass, so process pools work
as well as threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.core.config import AMRICConfig
from repro.core.filter_mod import AMRICLevelFilter, ChunkPlan, plan_level_chunks
from repro.core.header import header_from_config
from repro.core.preprocess import UnitBlock, extract_block_data, preprocess_level
from repro.h5lite.file import DatasetInfo, H5LiteFile

__all__ = [
    "RankChunkSpec",
    "DatasetPlan",
    "LevelPlan",
    "WritePlan",
    "plan_write",
    "PackedDataset",
    "pack_dataset",
    "FilterSpec",
    "EncodeJob",
    "EncodeResult",
    "make_encode_job",
    "encode_job",
    "commit_header",
    "commit_dataset",
    "dataset_record",
]


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
@dataclass
class RankChunkSpec:
    """One rank's chunk of one dataset: which blocks fill it and how full it is."""

    rank: int
    blocks: List[UnitBlock]
    valid_elements: int               #: elements the rank actually owns
    actual_elements: int              #: what the filter is told (== chunk size when naive)
    plan: ChunkPlan


@dataclass
class DatasetPlan:
    """The write layout of one ``level_<l>/<field>`` dataset."""

    level: int
    field: str
    name: str
    value_range: float
    chunk_elements: int
    rank_specs: List[RankChunkSpec]
    nblocks: int                      #: unit blocks on the level (for the record)

    @property
    def ranks(self) -> List[int]:
        return [spec.rank for spec in self.rank_specs]

    @property
    def per_rank_elements(self) -> List[int]:
        return [spec.valid_elements for spec in self.rank_specs]

    @property
    def total_elements(self) -> int:
        return len(self.rank_specs) * self.chunk_elements


@dataclass
class LevelPlan:
    """Preprocessing outcome + dataset layouts for one AMR level."""

    level: int
    removed_cells: int
    total_cells: int
    datasets: List[DatasetPlan] = field(default_factory=list)


@dataclass
class WritePlan:
    """Everything the pack/encode/commit stages need, decided up front."""

    levels: List[LevelPlan]
    nranks: int

    @property
    def datasets(self) -> List[DatasetPlan]:
        return [d for lvl in self.levels for d in lvl.datasets]

    @property
    def removed_cells(self) -> int:
        return sum(lvl.removed_cells for lvl in self.levels)

    @property
    def total_cells(self) -> int:
        return sum(lvl.total_cells for lvl in self.levels)


def plan_write(hierarchy: AmrHierarchy, config: AMRICConfig,
               comm=None) -> WritePlan:
    """Stage 1: preprocess every level and lay out every dataset's chunks.

    ``comm`` (a :class:`~repro.parallel.mpi_sim.SimComm`) is charged one
    allreduce per level/field for the global chunk size — the collective the
    real writer performs so all ranks agree on the shared dataset's chunking.
    """
    nranks = max(lvl.multifab.distribution.nranks for lvl in hierarchy.levels)
    levels: List[LevelPlan] = []
    for level_index, level in enumerate(hierarchy.levels):
        pre = preprocess_level(hierarchy, level_index, config.unit_block_size,
                               remove_redundancy=config.remove_redundancy)
        level_plan = LevelPlan(level=level_index, removed_cells=pre.removed_cells,
                               total_cells=pre.total_cells)
        levels.append(level_plan)
        if not pre.unit_blocks:
            continue
        ranks_with_data = sorted({b.rank for b in pre.unit_blocks})
        per_rank_blocks = {r: pre.blocks_on_rank(r) for r in ranks_with_data}
        per_rank_elements = [sum(b.size for b in per_rank_blocks[r])
                             for r in ranks_with_data]

        for name in hierarchy.component_names:
            value_range = max(level.multifab.value_range(name), 0.0)
            # the global chunk size is the collective max of the per-rank
            # contributions (one allreduce per shared dataset)
            if comm is not None:
                sizes = [0] * comm.size
                for rank, nelem in zip(ranks_with_data, per_rank_elements):
                    sizes[rank] = nelem
                comm.allreduce(sizes, op=max)
            layout = plan_level_chunks(per_rank_elements,
                                       modify_filter=config.modify_filter)
            chunk_elements = layout.chunk_elements

            specs: List[RankChunkSpec] = []
            for rank in ranks_with_data:
                blocks = per_rank_blocks[rank]
                valid = sum(b.size for b in blocks)
                plan_positions = [tuple(b.box.lo) for b in blocks]
                plan_shapes = [tuple(b.box.shape) for b in blocks]
                if not config.modify_filter:
                    # naive large chunk: the padding tail is real work,
                    # represented as one extra pseudo block
                    actual = chunk_elements
                    pad = chunk_elements - valid
                    if pad > 0:
                        plan_shapes = plan_shapes + [(1, 1, pad)]
                        plan_positions = None
                else:
                    actual = valid
                specs.append(RankChunkSpec(
                    rank=rank, blocks=blocks, valid_elements=valid,
                    actual_elements=actual,
                    plan=ChunkPlan(field=name, block_shapes=plan_shapes,
                                   value_range=value_range,
                                   block_positions=plan_positions)))
            level_plan.datasets.append(DatasetPlan(
                level=level_index, field=name,
                name=f"level_{level_index}/{name}",
                value_range=value_range, chunk_elements=chunk_elements,
                rank_specs=specs, nblocks=len(pre.unit_blocks)))
    return WritePlan(levels=levels, nranks=nranks)


# ----------------------------------------------------------------------
# pack
# ----------------------------------------------------------------------
@dataclass
class PackedDataset:
    """One dataset's filled write buffer plus the originals for quality checks."""

    plan: DatasetPlan
    data: np.ndarray                       #: the whole dataset, chunk per rank
    originals: List[List[np.ndarray]]      #: per rank, per block (for PSNR)


def pack_dataset(level: AmrLevel, dplan: DatasetPlan) -> PackedDataset:
    """Stage 2: copy each rank's blocks into its chunk slice of one buffer."""
    chunk_elements = dplan.chunk_elements
    data = np.empty(len(dplan.rank_specs) * chunk_elements, dtype=np.float64)
    originals: List[List[np.ndarray]] = []
    for i, spec in enumerate(dplan.rank_specs):
        blocks_data = extract_block_data(level, dplan.field, spec.blocks)
        originals.append(blocks_data)
        buf = data[i * chunk_elements:(i + 1) * chunk_elements]
        offset = 0
        for d in blocks_data:
            buf[offset:offset + d.size].reshape(d.shape)[...] = d
            offset += d.size
        buf[offset:] = 0.0                  # padding tail
    return PackedDataset(plan=dplan, data=data, originals=originals)


# ----------------------------------------------------------------------
# encode
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FilterSpec:
    """The :class:`AMRICLevelFilter` construction recipe (picklable)."""

    compressor: str = "sz_lr"
    error_bound: float = 1e-3
    use_sle: bool = True
    adaptive_block_size: bool = True
    sz_block_size: int = 6
    interp_arrangement: str = "cluster"
    interp_anchor_stride: int = 16
    unit_block_size: int = 16

    @staticmethod
    def from_config(config: AMRICConfig) -> "FilterSpec":
        return FilterSpec(
            compressor=config.compressor, error_bound=config.error_bound,
            use_sle=config.use_sle, adaptive_block_size=config.adaptive_block_size,
            sz_block_size=config.sz_block_size,
            interp_arrangement=config.interp_arrangement,
            interp_anchor_stride=config.interp_anchor_stride,
            unit_block_size=config.unit_block_size)

    def make_filter(self) -> AMRICLevelFilter:
        return AMRICLevelFilter(
            compressor=self.compressor, error_bound=self.error_bound,
            use_sle=self.use_sle, adaptive_block_size=self.adaptive_block_size,
            sz_block_size=self.sz_block_size,
            interp_arrangement=self.interp_arrangement,
            interp_anchor_stride=self.interp_anchor_stride,
            unit_block_size=self.unit_block_size)


@dataclass
class EncodeJob:
    """One dataset's encode work: its chunk sequence, in write order.

    The job is the unit of backend parallelism.  Chunks within a job are
    encoded sequentially because unit SLE carries one shared Huffman table
    across a level's ranks — splitting them would change the bytes.
    """

    #: bulk fields the shm backend ships as shared-memory descriptors
    #: instead of pickling (see :mod:`repro.parallel.shm`)
    _shm_fields: ClassVar[Tuple[str, ...]] = ("data",)

    key: str                               #: dataset name (stable identifier)
    data: np.ndarray                       #: the packed dataset buffer
    chunk_elements: int
    actual_sizes: List[int]
    plans: List[ChunkPlan]
    filter_spec: FilterSpec


@dataclass
class EncodeResult:
    """What one encode job produced (travels back across the backend)."""

    _shm_fields: ClassVar[Tuple[str, ...]] = ("payloads", "reconstructions")

    key: str
    payloads: List[bytes]
    reconstructions: List[List[np.ndarray]]
    filter_calls: int

    @property
    def compressed_bytes(self) -> int:
        return sum(len(p) for p in self.payloads)


def make_encode_job(packed: PackedDataset, filter_spec: FilterSpec) -> EncodeJob:
    return EncodeJob(
        key=packed.plan.name, data=packed.data,
        chunk_elements=packed.plan.chunk_elements,
        actual_sizes=[spec.actual_elements for spec in packed.plan.rank_specs],
        plans=[spec.plan for spec in packed.plan.rank_specs],
        filter_spec=filter_spec)


def encode_job(job: EncodeJob) -> EncodeResult:
    """Stage 3: run the AMRIC filter over one dataset's chunks.

    A module-level pure function over picklable inputs, so every execution
    backend (inline, thread pool, process pool) runs the identical code and
    produces identical bytes.
    """
    level_filter = job.filter_spec.make_filter()
    for plan in job.plans:
        level_filter.queue_plan(plan)
    ce = job.chunk_elements
    payloads = [
        level_filter.encode(job.data[i * ce:(i + 1) * ce],
                            actual_elements=job.actual_sizes[i])
        for i in range(len(job.actual_sizes))
    ]
    return EncodeResult(key=job.key, payloads=payloads,
                        reconstructions=level_filter.last_reconstructions,
                        filter_calls=level_filter.stats.calls)


# ----------------------------------------------------------------------
# commit
# ----------------------------------------------------------------------
def commit_header(h5file: Optional[H5LiteFile], hierarchy: AmrHierarchy,
                  config: AMRICConfig, method: str = "amric") -> None:
    """Stage 4 preamble: make the plotfile self-describing.

    Serialises the hierarchy structure (boxes, ratios, distribution, fields)
    plus the codec name/options into the container's versioned header section
    so :func:`repro.open` can reconstruct the read plan from the file alone
    (:mod:`repro.core.header`).  A no-op for in-memory writes.
    """
    if h5file is None:
        return
    h5file.header = header_from_config(hierarchy, config, method=method).to_json()


def commit_dataset(h5file: Optional[H5LiteFile], dplan: DatasetPlan,
                   result: EncodeResult) -> Optional[DatasetInfo]:
    """Stage 4a: append one dataset's encoded chunks to the container file."""
    if h5file is None:
        return None
    return h5file.create_dataset_from_chunks(
        dplan.name, result.payloads,
        shape=(dplan.total_elements,), dtype="float64",
        chunk_elements=dplan.chunk_elements,
        filter_id=AMRICLevelFilter.filter_id,
        actual_elements_per_chunk=[spec.actual_elements for spec in dplan.rank_specs],
        attrs={"level": dplan.level, "field": dplan.field,
               "value_range": dplan.value_range})


def dataset_record(dplan: DatasetPlan, originals: Sequence[Sequence[np.ndarray]],
                   result: EncodeResult):
    """Stage 4b: distil one dataset's quality/size record from the encode output."""
    from repro.core.pipeline import LevelFieldRecord

    sq_err = 0.0
    max_err = 0.0
    n_elems = 0
    gmin, gmax = np.inf, -np.inf
    for data, recons in zip(originals, result.reconstructions):
        for orig, rec in zip(data, recons):
            diff = orig - rec
            sq_err += float(np.sum(diff * diff))
            max_err = max(max_err, float(np.max(np.abs(diff))))
            n_elems += orig.size
            gmin = min(gmin, float(orig.min()))
            gmax = max(gmax, float(orig.max()))
    mse = sq_err / max(n_elems, 1)
    vrange = (gmax - gmin) if gmax > gmin else 1.0
    field_psnr = float("inf") if mse == 0 else \
        20.0 * np.log10(vrange) - 10.0 * np.log10(mse)
    return LevelFieldRecord(
        level=dplan.level, field=dplan.field, raw_bytes=n_elems * 8,
        compressed_bytes=result.compressed_bytes, psnr=field_psnr,
        max_error=max_err, filter_calls=result.filter_calls,
        nblocks=dplan.nblocks, sq_error=sq_err, n_elements=n_elems,
        value_min=gmin, value_max=gmax)

"""AMRIC configuration: which compressor, which optimisations are switched on.

Every optimisation the paper introduces has an independent toggle so the
benchmarks can run the ablations DESIGN.md lists (SLE on/off, adaptive block
size on/off, layout change on/off, filter modification on/off, redundancy
removal on/off) and so the AMReX-original behaviour can be expressed in the
same vocabulary.

The compressor is any name in the codec registry
(:mod:`repro.compress.registry`) — the config never touches codec classes —
and ``backend`` picks the execution backend the writer submits its encode
jobs to (:mod:`repro.parallel.backend`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.compress.errorbound import ErrorBound
from repro.compress.registry import create_codec, is_registered, available_codecs

__all__ = ["AMRICConfig"]

_BACKENDS = ("serial", "thread", "process", "shm")


@dataclass(frozen=True)
class AMRICConfig:
    """Configuration of the AMRIC in situ pipeline."""

    #: which SZ algorithm to use ("sz_lr" or "sz_interp")
    compressor: str = "sz_lr"
    #: error bound (value-range relative by default, like the paper)
    error_bound: float = 1e-3
    error_bound_mode: str = "rel"

    #: §3.1 — remove coarse data covered by the next finer level
    remove_redundancy: bool = True
    #: §3.1 — unit block edge length used for uniform truncation
    unit_block_size: int = 16
    #: §3.1 — reorganisation for SZ_Interp: "cluster" (cube) or "linear"
    interp_arrangement: str = "cluster"

    #: §3.2 Solution 1 — unit Shared Lossless Encoding (one Huffman table)
    use_sle: bool = True
    #: §3.2 Solution 2 — adaptive SZ block size (Equation 1)
    adaptive_block_size: bool = True
    #: base SZ_L/R block size when the adaptive rule is off / chooses the default
    sz_block_size: int = 6

    #: §3.3 Solution 1 — group same-field data together (field-major layout)
    change_layout: bool = True
    #: §3.3 Solution 2 — pass per-rank actual sizes to the filter
    modify_filter: bool = True

    #: SZ_Interp anchor stride
    interp_anchor_stride: int = 16

    #: execution backend for the per-rank encode jobs ("serial", "thread",
    #: "process") and the pool size (None = the executor's default)
    backend: str = "serial"
    backend_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if not is_registered(self.compressor):
            raise ValueError(
                f"compressor must be a registered codec {available_codecs()}, "
                f"got {self.compressor!r}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        if self.unit_block_size < 2:
            raise ValueError("unit_block_size must be >= 2")
        if self.sz_block_size < 2:
            raise ValueError("sz_block_size must be >= 2")
        if self.interp_arrangement not in ("cluster", "linear"):
            raise ValueError("interp_arrangement must be 'cluster' or 'linear'")
        # validate the error bound eagerly so bad configs fail fast
        ErrorBound(self.error_bound, self.error_bound_mode)

    # ------------------------------------------------------------------
    @property
    def error_bound_obj(self) -> ErrorBound:
        return ErrorBound(self.error_bound, self.error_bound_mode)

    def with_overrides(self, **kwargs) -> "AMRICConfig":
        """A copy with some fields replaced (used heavily by the ablations)."""
        return replace(self, **kwargs)

    def make_codec(self, name: Optional[str] = None, **options):
        """Build any registered codec honouring this configuration's bound."""
        return create_codec(name or self.compressor, self.error_bound_obj, **options)

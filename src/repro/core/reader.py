"""The staged read pipeline: scan → decode → place → refill.

The read side mirrors the writer's staged decomposition
(:mod:`repro.core.stages`) instead of the old serial monolith:

``scan`` (:func:`scan_plotfile`)
    Rebuild the structural read plan — which unit blocks live at which
    element offsets of which ``level_<l>/<field>`` dataset — either from the
    plotfile's self-describing header (:mod:`repro.core.header`) or, for
    pre-header files, from a caller-supplied template hierarchy (the explicit
    legacy fallback).  Produces a :class:`ReadPlan` of
    :class:`DatasetReadPlan` entries.
``decode`` (:func:`decode_job`)
    Decode one dataset's chunk payloads.  A :class:`DecodeJob` is a plain
    picklable dataclass (raw bytes + filter recipe), so per-dataset decode
    jobs run through any :class:`~repro.parallel.backend.ExecutionBackend`
    (serial, thread, process) with bit-identical results.
``place`` (:func:`place_dataset`)
    Scatter the decoded elements back into the hierarchy's fabs by the
    planned block offsets.
``refill`` (:func:`~repro.amr.upsample.fill_covered_from_finer`)
    Restore the redundant coarse cells dropped before compression by
    conservatively averaging the reconstructed finer level down — the shared
    stencil in :mod:`repro.amr.upsample`, not a private copy.

On top of the staged full read, :class:`PlotfileHandle` (returned by
:func:`repro.open`) offers lazy random access: ``read_field(name, level=...,
box=...)`` decodes only the chunks whose unit blocks intersect the request,
with a per-chunk cache and decode-call statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.amr.multifab import MultiFab
from repro.amr.upsample import average_down, fill_covered_from_finer
from repro.compress.errorbound import ErrorBound
from repro.compress.registry import create_codec
from repro.core.config import AMRICConfig
from repro.core.filter_mod import AMRICLevelFilter
from repro.core.header import (
    CHUNK_ALIGNMENT_BOX_MAJOR,
    CHUNK_ALIGNMENT_RANK,
    PlotfileHeader,
    template_from_header,
)
from repro.core.preprocess import UnitBlock, preprocess_level
from repro.h5lite.file import H5LiteFile
from repro.h5lite.source import ByteSource
from repro.h5lite.filters import (
    AMRICChunkFilter,
    Filter,
    LosslessFilter,
    NoCompressionFilter,
    SZChunkFilter,
)
from repro.parallel.backend import ExecutionBackend, make_backend
from repro.parallel.mpi_sim import SimComm

__all__ = [
    "AMRICReader",
    "PlotfileHandle",
    "ReadStats",
    "BlockSlot",
    "DatasetReadPlan",
    "ReadPlan",
    "scan_plotfile",
    "parse_plotfile_header",
    "DecodeJob",
    "DecodeResult",
    "make_decode_job",
    "decode_job",
    "place_dataset",
    "execute_read",
]


# ----------------------------------------------------------------------
# scan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockSlot:
    """One unit block's home: its box/fab and its element offset in the dataset.

    The offset addresses the dataset's *chunked element stream*, in which
    chunk ``j`` occupies ``[j * chunk_elements, (j + 1) * chunk_elements)``
    (rank-aligned datasets pad each chunk's tail; stream-aligned datasets
    pack blocks back-to-back and a block may span a chunk boundary).
    """

    block: UnitBlock
    offset: int

    @property
    def size(self) -> int:
        return self.block.size


@dataclass
class DatasetReadPlan:
    """The decode/placement layout of one ``level_<l>/<field>`` dataset."""

    level: int
    field: str
    name: str
    chunk_elements: int
    nchunks: int
    filter_id: str
    slots: List[BlockSlot]

    def chunks_for(self, slots: Sequence[BlockSlot]) -> List[int]:
        """Which chunk indices the given slots touch (sorted, deduplicated)."""
        ce = self.chunk_elements
        needed = set()
        for slot in slots:
            first = slot.offset // ce
            last = (slot.offset + slot.size - 1) // ce
            needed.update(range(first, last + 1))
        return sorted(needed)

    @property
    def all_chunks(self) -> List[int]:
        return list(range(self.nchunks))


@dataclass
class ReadPlan:
    """Everything the decode/place/refill stages need, decided up front."""

    structure: AmrHierarchy                   #: zero-filled output hierarchy
    datasets: List[DatasetReadPlan]
    remove_redundancy: bool
    header: Optional[PlotfileHeader] = None
    #: codec recipe for filters that need a compressor instance (sz_classic)
    codec: str = "sz_lr"
    error_bound: float = 1e-3
    error_bound_mode: str = "rel"

    @property
    def nranks(self) -> int:
        return max(lvl.multifab.distribution.nranks for lvl in self.structure.levels)

    def dataset(self, level: int, fieldname: str) -> Optional[DatasetReadPlan]:
        for d in self.datasets:
            if d.level == level and d.field == fieldname:
                return d
        return None


def parse_plotfile_header(f: H5LiteFile) -> Optional[PlotfileHeader]:
    """The file's validated self-description, or None for pre-header files."""
    if f.header is None:
        return None
    return PlotfileHeader.from_json(f.header)


def _empty_like(template: AmrHierarchy) -> AmrHierarchy:
    """A zero-filled hierarchy sharing the template's structure (not its data)."""
    levels: List[AmrLevel] = []
    for lvl in template.levels:
        ba = BoxArray(list(lvl.boxarray.boxes))
        dm = DistributionMapping(list(lvl.multifab.distribution.rank_of_box),
                                 lvl.multifab.distribution.nranks)
        mf = MultiFab(ba, template.component_names, dm)
        levels.append(AmrLevel(lvl.level, lvl.domain, ba, mf))
    return AmrHierarchy(levels, template.ref_ratios,
                        time=template.time, step=template.step)


def scan_plotfile(f: H5LiteFile, template: Optional[AmrHierarchy] = None,
                  config: Optional[AMRICConfig] = None) -> ReadPlan:
    """Stage 1: rebuild the structural read plan for one plotfile.

    With ``template`` given, the plan is built from the template's structure
    and the reader ``config`` (the explicit legacy path for pre-header
    plotfiles, also usable to override a header).  Otherwise the plotfile
    must be self-describing; a missing header raises :class:`ValueError`
    telling the caller to supply a template.
    """
    header: Optional[PlotfileHeader] = None
    if template is not None:
        cfg = config or AMRICConfig()
        structure = _empty_like(template)
        unit_block_size = cfg.unit_block_size
        remove_redundancy = cfg.remove_redundancy
        rank_aligned = True
        strict_actual = cfg.modify_filter
        codec, error_bound, eb_mode = cfg.compressor, cfg.error_bound, cfg.error_bound_mode
    else:
        header = parse_plotfile_header(f)
        if header is None:
            raise ValueError(
                f"{f.path} has no self-describing header (written before the "
                "plotfile format v1); pass the original hierarchy as the "
                "structural template to read it")
        if header.chunk_alignment == CHUNK_ALIGNMENT_BOX_MAJOR:
            raise ValueError(
                f"{f.path} stores box-major interleaved level data "
                f"(method {header.method!r}); the staged reader only "
                "reconstructs field-major plotfiles — use `repro info` for "
                "its metadata")
        structure = template_from_header(header)
        unit_block_size = header.unit_block_size
        remove_redundancy = header.remove_redundancy
        rank_aligned = header.chunk_alignment == CHUNK_ALIGNMENT_RANK
        strict_actual = bool(header.codec_options.get("modify_filter", True))
        codec, error_bound, eb_mode = (header.codec, header.error_bound,
                                       header.error_bound_mode)

    datasets: List[DatasetReadPlan] = []
    for level_index in range(structure.nlevels):
        pre = preprocess_level(structure, level_index, unit_block_size,
                               remove_redundancy=remove_redundancy)
        if not pre.unit_blocks:
            continue
        ranks = sorted({b.rank for b in pre.unit_blocks})
        per_rank = {r: pre.blocks_on_rank(r) for r in ranks}
        for name in structure.component_names:
            dsname = f"level_{level_index}/{name}"
            if dsname not in f:
                continue
            info = f.datasets[dsname]
            slots: List[BlockSlot] = []
            if rank_aligned:
                if info.nchunks != len(ranks):
                    raise ValueError(
                        f"{f.path}: dataset {dsname!r} stores {info.nchunks} "
                        f"chunks but the structure implies {len(ranks)} "
                        "participating ranks — header/template does not match "
                        "this file")
                ce = info.chunk_elements
                for i, rank in enumerate(ranks):
                    offset = i * ce
                    for block in per_rank[rank]:
                        slots.append(BlockSlot(block=block, offset=offset))
                        offset += block.size
                    if offset > (i + 1) * ce:
                        raise ValueError(
                            f"{f.path}: rank {rank}'s blocks overflow its "
                            f"chunk of {ce} elements in {dsname!r} — "
                            "header/template does not match this file")
                    valid = offset - i * ce
                    stored = info.chunks[i].actual_elements
                    # with the modified filter each chunk records the rank's
                    # real element count; a disagreement means the structure
                    # does not describe this file (naive mode records the
                    # padded chunk size instead, which carries no signal)
                    if strict_actual and stored != ce and stored != valid:
                        raise ValueError(
                            f"{f.path}: chunk {i} of {dsname!r} stores "
                            f"{stored} valid elements but the structure "
                            f"implies {valid} — header/template does not "
                            "match this file")
            else:
                offset = 0
                for rank in ranks:
                    for block in per_rank[rank]:
                        slots.append(BlockSlot(block=block, offset=offset))
                        offset += block.size
                if offset != info.nelements:
                    raise ValueError(
                        f"{f.path}: dataset {dsname!r} stores {info.nelements} "
                        f"elements but the structure implies {offset} — "
                        "header/template does not match this file")
            datasets.append(DatasetReadPlan(
                level=level_index, field=name, name=dsname,
                chunk_elements=info.chunk_elements, nchunks=info.nchunks,
                filter_id=info.filter_id, slots=slots))
    return ReadPlan(structure=structure, datasets=datasets,
                    remove_redundancy=remove_redundancy, header=header,
                    codec=codec, error_bound=error_bound,
                    error_bound_mode=eb_mode)


# ----------------------------------------------------------------------
# decode
# ----------------------------------------------------------------------
@dataclass
class DecodeJob:
    """One dataset's decode work: raw chunk payloads + the filter recipe.

    Everything is picklable (bytes, ints, strings), so the job crosses
    process-pool boundaries; decoding is deterministic, so every backend
    produces identical arrays.
    """

    #: bulk fields the shm backend ships as shared-memory descriptors
    _shm_fields: ClassVar[Tuple[str, ...]] = ("payloads",)

    key: str                               #: dataset name (stable identifier)
    payloads: List[bytes]
    chunk_indices: List[int]
    chunk_elements: int
    filter_id: str
    codec: str = "sz_lr"
    error_bound: float = 1e-3
    error_bound_mode: str = "rel"

    def __getstate__(self) -> dict:
        # zero-copy sources (mmap/memory) hand out memoryview payloads, which
        # do not pickle; materialise them at the process-pool boundary (the
        # shm backend ships them as descriptors and never gets here)
        state = dict(self.__dict__)
        if any(isinstance(p, memoryview) for p in state["payloads"]):
            state["payloads"] = [bytes(p) for p in state["payloads"]]
        return state


@dataclass
class DecodeResult:
    """What one decode job produced (travels back across the backend)."""

    _shm_fields: ClassVar[Tuple[str, ...]] = ("chunks",)

    key: str
    chunk_indices: List[int]
    chunks: List[np.ndarray]

    @property
    def decode_calls(self) -> int:
        return len(self.chunks)


def _decode_filter(filter_id: str, codec: str, error_bound: float,
                   error_bound_mode: str) -> Filter:
    """Filter instance for one stored ``filter_id`` (decode direction only)."""
    if filter_id == AMRICLevelFilter.filter_id:
        # AMRIC payloads are fully self-describing; the constructor arguments
        # only matter for encode
        return AMRICLevelFilter()
    if filter_id == NoCompressionFilter.filter_id:
        return NoCompressionFilter()
    if filter_id == LosslessFilter.filter_id:
        return LosslessFilter()
    if filter_id in (SZChunkFilter.filter_id, AMRICChunkFilter.filter_id):
        compressor = create_codec(codec, ErrorBound(error_bound, error_bound_mode))
        cls = SZChunkFilter if filter_id == SZChunkFilter.filter_id else AMRICChunkFilter
        return cls(compressor)
    if filter_id == "temporal_delta":
        # series keyframe chunks are self-contained (payload carries its own
        # grid); delta chunks raise from decode with a pointer at open_series
        from repro.compress.temporal import TemporalDeltaFilter

        return TemporalDeltaFilter()
    raise ValueError(f"cannot decode chunks written with unknown filter {filter_id!r}")


def make_decode_job(f: H5LiteFile, dplan: DatasetReadPlan,
                    chunk_indices: Optional[Sequence[int]] = None,
                    plan: Optional[ReadPlan] = None) -> DecodeJob:
    """Pull the (selected) raw chunk payloads of one dataset into a job."""
    indices = list(chunk_indices) if chunk_indices is not None else dplan.all_chunks
    # one batched (coalescing) source read instead of N seek+read round-trips
    payloads = f.read_chunk_payloads(dplan.name, indices)
    codec = plan.codec if plan is not None else "sz_lr"
    eb = plan.error_bound if plan is not None else 1e-3
    mode = plan.error_bound_mode if plan is not None else "rel"
    return DecodeJob(key=dplan.name, payloads=payloads, chunk_indices=indices,
                     chunk_elements=dplan.chunk_elements,
                     filter_id=dplan.filter_id, codec=codec,
                     error_bound=eb, error_bound_mode=mode)


def decode_job(job: DecodeJob) -> DecodeResult:
    """Stage 2: decode one dataset's chunks.

    A module-level pure function over picklable inputs — the read-side mirror
    of :func:`repro.core.stages.encode_job` — so serial, thread and process
    backends run identical code on identical bytes.  Decode filters are
    stateless per call, so inside a shm pool worker the instance is reused
    across jobs via the per-process codec cache (a no-op elsewhere:
    :func:`~repro.parallel.shm.worker_codec_cache` returns ``None`` outside
    a worker, keeping the serial/thread paths exactly as before).
    """
    from repro.parallel.shm import worker_codec_cache

    cache = worker_codec_cache()
    cache_key = ("decode_filter", job.filter_id, job.codec,
                 job.error_bound, job.error_bound_mode)
    filt = cache.get(cache_key) if cache is not None else None
    if filt is None:
        filt = _decode_filter(job.filter_id, job.codec, job.error_bound,
                              job.error_bound_mode)
        if cache is not None:
            cache[cache_key] = filt
    chunks = [np.asarray(filt.decode(payload, job.chunk_elements),
                         dtype=np.float64).reshape(-1)
              for payload in job.payloads]
    return DecodeResult(key=job.key, chunk_indices=list(job.chunk_indices),
                        chunks=chunks)


def _split_indices(indices: Sequence[int],
                   backend: Optional[ExecutionBackend]) -> List[List[int]]:
    """Partition chunk indices into contiguous per-worker batches.

    One batch (no split) without a pooled backend or when the batch is too
    small to amortise a dispatch; otherwise roughly one batch per worker.
    """
    width = backend.parallel_width() if backend is not None else 1
    if width <= 1 or len(indices) < 2:
        return [list(indices)]
    nparts = min(width, len(indices))
    per = -(-len(indices) // nparts)        # ceil division
    return [list(indices[i:i + per]) for i in range(0, len(indices), per)]


# ----------------------------------------------------------------------
# place
# ----------------------------------------------------------------------
def _gather_slot(slot: BlockSlot, chunks: Dict[int, np.ndarray],
                 chunk_elements: int) -> np.ndarray:
    """Extract one block's elements from the decoded chunks (may span chunks)."""
    start, stop = slot.offset, slot.offset + slot.size
    first = start // chunk_elements
    last = (stop - 1) // chunk_elements
    if first == last:
        local = start - first * chunk_elements
        return chunks[first][local:local + slot.size]
    pieces: List[np.ndarray] = []
    for index in range(first, last + 1):
        base = index * chunk_elements
        local_lo = max(start, base) - base
        local_hi = min(stop, base + chunk_elements) - base
        pieces.append(chunks[index][local_lo:local_hi])
    return np.concatenate(pieces)


def place_dataset(structure: AmrHierarchy, dplan: DatasetReadPlan,
                  chunks: Dict[int, np.ndarray]) -> None:
    """Stage 3: scatter one dataset's decoded elements into the hierarchy."""
    level = structure[dplan.level]
    comp = level.multifab.component_index(dplan.field)
    for slot in dplan.slots:
        data = _gather_slot(slot, chunks, dplan.chunk_elements)
        fab = level.multifab[slot.block.box_index]
        fab.component(comp)[slot.block.box.slices(origin=fab.box.lo)] = \
            data.reshape(slot.block.box.shape)


# ----------------------------------------------------------------------
# the full staged read
# ----------------------------------------------------------------------
@dataclass
class ReadStats:
    """Decode + I/O accounting for one handle / reader.

    The decode counters drive the lazy-read tests; the I/O counters mirror
    the handle's :class:`~repro.h5lite.source.SourceStats` (wire bytes,
    ranges requested pre-coalescing, reads issued post-coalescing), so cache
    hit-rate and transfer cost are observable per handle and per engine.
    """

    chunks_decoded: int = 0
    cache_hits: int = 0
    datasets_decoded: int = 0
    bytes_read: int = 0             #: bytes fetched from the byte source
    requests: int = 0               #: ranges requested (pre-coalescing)
    coalesced_requests: int = 0     #: reads issued to the medium

    def reset(self) -> None:
        self.chunks_decoded = 0
        self.cache_hits = 0
        self.datasets_decoded = 0
        self.bytes_read = 0
        self.requests = 0
        self.coalesced_requests = 0


def execute_read(f: H5LiteFile, plan: ReadPlan, backend: ExecutionBackend,
                 comm: Optional[SimComm] = None,
                 stats: Optional[ReadStats] = None,
                 cache=None) -> AmrHierarchy:
    """Run decode → place → refill for a scanned plan; returns the hierarchy.

    Per-dataset decode jobs are submitted through ``comm``
    (:meth:`~repro.parallel.mpi_sim.SimComm.run_jobs`) to the execution
    backend — one barrier for the batch, mirroring the writer's encode stage —
    and the results are placed in plan order, which is what makes every
    backend produce an element-wise identical hierarchy.  ``cache`` (anything
    with dict-style ``get``/item assignment over ``(dataset, chunk index)``
    keys — a handle's private dict or a shared-cache view) lets
    already-decoded chunks skip their decode job.
    """
    if comm is not None and plan.structure.levels and comm.size != plan.nranks:
        raise ValueError(
            f"communicator has {comm.size} ranks but the plotfile is "
            f"distributed over {plan.nranks}")
    comm = comm if comm is not None else SimComm(plan.nranks)
    jobs: List[DecodeJob] = []
    hits: List[Dict[int, np.ndarray]] = []
    for dplan in plan.datasets:
        hit: Dict[int, np.ndarray] = {}
        if cache:
            for index in range(dplan.nchunks):
                chunk = cache.get((dplan.name, index))
                if chunk is not None:
                    hit[index] = chunk
        hits.append(hit)
        missing = [i for i in range(dplan.nchunks) if i not in hit]
        jobs.append(make_decode_job(f, dplan, missing, plan=plan))
    results = comm.run_jobs(backend, decode_job, jobs)
    for dplan, hit, result in zip(plan.datasets, hits, results):
        chunks = dict(hit)
        chunks.update(zip(result.chunk_indices, result.chunks))
        place_dataset(plan.structure, dplan, chunks)
        if stats is not None:
            stats.chunks_decoded += result.decode_calls
            stats.cache_hits += len(hit)
            stats.datasets_decoded += 1
    if plan.remove_redundancy:
        fill_covered_from_finer(plan.structure)
    return plan.structure


# ----------------------------------------------------------------------
# the lazy handle behind repro.open
# ----------------------------------------------------------------------
class PlotfileHandle:
    """An open plotfile: inspect cheaply, decode lazily, read fully.

    The handle parses the self-describing header (when present) but decodes
    nothing until asked:

    * :attr:`fields`, :attr:`levels`, :attr:`codec`, :meth:`describe` —
      metadata only, no chunk is touched;
    * :meth:`read_field` — decodes exactly the chunks whose unit blocks
      intersect the requested box (cached per chunk; see :attr:`stats`);
    * :meth:`read` — the full staged scan/decode/place/refill pipeline,
      optionally over a pooled execution backend.

    Pre-header plotfiles still open; they report ``is_self_describing ==
    False`` and require a template for :meth:`read` (the legacy fallback).
    """

    def __init__(self, path: str, config: Optional[AMRICConfig] = None,
                 backend: "ExecutionBackend | str | None" = None,
                 cache=None, source=None):
        # a caller may hand several handles one *shared* ByteSource instance;
        # watermarking from the source's pre-open totals (not from zero) keeps
        # each handle billing only the traffic it caused itself — two handles
        # on one source must never both absorb the same bytes
        pre_open = source.stats.totals() if isinstance(source, ByteSource) \
            else (0, 0, 0)
        self._file = H5LiteFile(path, "r", source=source)
        try:
            self.header = parse_plotfile_header(self._file)
        except ValueError:
            self._file.close()
            raise
        self.config = config or AMRICConfig()
        self._backend_spec = backend
        self._plan: Optional[ReadPlan] = None
        # ``cache`` opts the handle into a shared, byte-budgeted chunk cache
        # (repro.service.cache.ChunkCache, keyed by path); the default stays a
        # private unbounded dict in this handle's (dataset, chunk) key space
        if cache is not None and hasattr(cache, "bound_view"):
            self._cache = cache.bound_view(self._file.path)
        else:
            self._cache = cache if cache is not None else {}
        self.stats = ReadStats()
        self._io_seen = pre_open
        self._sync_io()                     # charges the superblock loads
        self._closed = False

    def _sync_io(self) -> None:
        """Fold the source's traffic since the last sync into :attr:`stats`.

        Delta-based so :attr:`stats` can be swapped for a shared accumulator
        (a series hands every step handle its own stats object) without
        double-counting what an earlier object already absorbed.  The
        watermark starts at the source's *pre-open* totals, so a handle
        joining an already-trafficked shared source bills only its own reads
        (see the shared-source regression tests).
        """
        src = self._file.source.stats
        now = src.totals()
        self.stats.bytes_read += now[0] - self._io_seen[0]
        self.stats.requests += now[1] - self._io_seen[1]
        self.stats.coalesced_requests += now[2] - self._io_seen[2]
        self._io_seen = now

    @property
    def source_stats(self):
        """The underlying :class:`~repro.h5lite.source.SourceStats`."""
        return self._file.source.stats

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "PlotfileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        describing = "self-describing" if self.is_self_describing else "legacy"
        return f"PlotfileHandle({self.path!r}, {describing})"

    # -- metadata (no decoding) ----------------------------------------
    @property
    def path(self) -> str:
        return self._file.path

    @property
    def attrs(self) -> Dict[str, object]:
        return self._file.attrs

    @property
    def is_self_describing(self) -> bool:
        return self.header is not None

    @property
    def fields(self) -> Tuple[str, ...]:
        """Component names stored in the plotfile."""
        if self.header is not None:
            return tuple(self.header.components)
        components = self.attrs.get("components")
        if components:
            return tuple(components)
        names = {n.split("/", 1)[1] for n in self._file.dataset_names() if "/" in n}
        return tuple(sorted(names))

    @property
    def levels(self) -> Tuple[int, ...]:
        """Level indices present in the plotfile (coarse → fine)."""
        if self.header is not None:
            return tuple(lvl.level for lvl in self.header.levels)
        nlevels = self.attrs.get("nlevels")
        if nlevels:
            return tuple(range(int(nlevels)))
        indices = {int(n.split("/", 1)[0].removeprefix("level_"))
                   for n in self._file.dataset_names() if n.startswith("level_")}
        return tuple(sorted(indices))

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    @property
    def codec(self) -> Optional[str]:
        if self.header is not None:
            return self.header.codec
        value = self.attrs.get("compressor")
        return str(value) if value is not None else None

    @property
    def error_bound(self) -> Optional[float]:
        if self.header is not None:
            return self.header.error_bound
        value = self.attrs.get("error_bound")
        return float(value) if value is not None else None

    def dataset_names(self) -> List[str]:
        return self._file.dataset_names()

    def dataset_info(self, name: str):
        """The stored :class:`~repro.h5lite.file.DatasetInfo` for one dataset."""
        if name not in self._file.datasets:
            raise KeyError(
                f"no dataset named {name!r}; have {self.dataset_names()}")
        return self._file.datasets[name]

    def describe(self) -> Dict[str, object]:
        """A flat metadata summary (what ``python -m repro info`` prints)."""
        stored = self._file.total_stored_bytes()
        logical = sum(d.nelements * np.dtype(d.dtype).itemsize
                      for d in self._file.datasets.values())
        out: Dict[str, object] = {
            "path": self.path,
            "self_describing": self.is_self_describing,
            "format_version": self.header.version if self.header else None,
            "method": (self.header.method if self.header
                       else self.attrs.get("method")),
            "codec": self.codec,
            "error_bound": self.error_bound,
            "fields": list(self.fields),
            "levels": list(self.levels),
            "datasets": len(self._file.datasets),
            "stored_bytes": stored,
            "logical_bytes": logical,
            "compression_ratio": logical / max(stored, 1),
        }
        if self.header is not None:
            out["time"] = self.header.time
            out["step"] = self.header.step
            out["unit_block_size"] = self.header.unit_block_size
            out["remove_redundancy"] = self.header.remove_redundancy
            out["boxes_per_level"] = [lvl.nboxes for lvl in self.header.levels]
        return out

    # -- scanning -------------------------------------------------------
    def _scan(self) -> ReadPlan:
        """The header-based read plan (cached; used by lazy random access)."""
        if self._plan is None:
            self._plan = scan_plotfile(self._file, template=None,
                                       config=self.config)
        return self._plan

    # -- lazy random access --------------------------------------------
    def _decode_chunks(self, plan: ReadPlan, dplan: DatasetReadPlan,
                       indices: Sequence[int],
                       backend: Optional[ExecutionBackend] = None,
                       ) -> Dict[int, np.ndarray]:
        """Decode the requested chunks (cache-aware).

        With ``backend`` given (the query engine's batch path), the missing
        chunks are split into per-worker sub-jobs and decoded through the
        pool — chunk decodes within one dataset are independent, so the
        split changes nothing but wall-clock.  Results are identical either
        way; the serial path stays a single inline :func:`decode_job`.
        """
        out: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        for index in indices:
            cached = self._cache.get((dplan.name, index))
            if cached is not None:
                out[index] = cached
                self.stats.cache_hits += 1
            else:
                missing.append(index)
        if missing:
            jobs = [make_decode_job(self._file, dplan, part, plan=plan)
                    for part in _split_indices(missing, backend)]
            if backend is not None and len(jobs) > 1:
                results = backend.map(decode_job, jobs)
            else:
                results = [decode_job(job) for job in jobs]
            for result in results:
                for index, chunk in zip(result.chunk_indices, result.chunks):
                    self._cache[(dplan.name, index)] = chunk
                    out[index] = chunk
            self.stats.chunks_decoded += len(missing)
            self._sync_io()
        return out

    def chunks_for_box(self, name: str, level: int = 0,
                       box: Optional[Box] = None):
        """What a box read of one field would decode: ``(plan, dplan, indices)``.

        The scouting half of :meth:`read_field`, shared with the query
        engine's batch coalescing and time-slice prefetch (which union these
        indices across requests and decode each chunk once).  Unlike
        :meth:`read_field`, an absent dataset or out-of-range level yields
        ``(plan, None, [])`` instead of raising — a prefetch skips, it does
        not fail.
        """
        plan = self._scan()
        if not 0 <= level < plan.structure.nlevels:
            return plan, None, []
        dplan = plan.dataset(level, name)
        if dplan is None:
            return plan, None, []
        region = box if box is not None else plan.structure[level].domain
        hit = [slot for slot in dplan.slots if slot.block.box.intersects(region)]
        return plan, dplan, (dplan.chunks_for(hit) if hit else [])

    def read_field(self, name: str, level: int = 0, box: Optional[Box] = None,
                   refill: bool = True, fill_value: float = 0.0,
                   max_level: Optional[int] = None) -> np.ndarray:
        """Decode one field over one region, touching only intersecting chunks.

        Returns a dense array covering ``box`` (default: the level's whole
        domain).  Cells no stored block covers keep ``fill_value``; with
        ``refill`` (the default) coarse cells covered by the next finer level
        are restored by conservatively averaging the finer data down — which
        itself decodes only the intersecting fine chunks.

        ``max_level`` makes the read *progressive*: refill never recurses
        past level ``max_level``, so a ``max_level=0`` probe touches only
        coarse chunks and returns immediately — the time-to-first-array path
        of an interactive viewer, which then re-issues the read with a higher
        (or no) cap to refine.  Cells whose data was dropped at write time
        (``remove_redundancy``) and whose finer source lies above the cap
        keep ``fill_value``.  Requesting ``level > max_level`` is a
        contradiction and raises :class:`ValueError`.
        """
        plan = self._scan()
        structure = plan.structure
        if not 0 <= level < structure.nlevels:
            raise ValueError(
                f"level {level} out of range; plotfile has levels "
                f"0..{structure.nlevels - 1}")
        if max_level is not None and level > max_level:
            raise ValueError(
                f"level {level} is finer than max_level {max_level}; a "
                "progressive read cannot return data above its cap")
        if name not in structure.component_names:
            raise KeyError(
                f"unknown field {name!r}; plotfile has {structure.component_names}")
        lvl = structure[level]
        query = lvl.domain if box is None else box
        if query.is_empty():
            return np.full(query.shape, fill_value, dtype=np.float64)
        out = np.full(query.shape, fill_value, dtype=np.float64)

        dplan = plan.dataset(level, name)
        if dplan is not None:
            hit = [slot for slot in dplan.slots if slot.block.box.intersects(query)]
            if hit:
                chunks = self._decode_chunks(plan, dplan, dplan.chunks_for(hit))
                for slot in hit:
                    data = _gather_slot(slot, chunks, dplan.chunk_elements) \
                        .reshape(slot.block.box.shape)
                    overlap = slot.block.box.intersection(query)
                    out[overlap.slices(origin=query.lo)] = \
                        data[overlap.slices(origin=slot.block.box.lo)]

        if (refill and plan.remove_redundancy and level < structure.nlevels - 1
                and (max_level is None or level + 1 <= max_level)):
            ratio = structure.ref_ratios[level]
            for fine_box in structure[level + 1].boxarray:
                overlap = fine_box.coarsen(ratio).intersection(query)
                if overlap.is_empty():
                    continue
                fine = self.read_field(name, level=level + 1,
                                       box=overlap.refine(ratio), refill=refill,
                                       fill_value=fill_value,
                                       max_level=max_level)
                out[overlap.slices(origin=query.lo)] = average_down(fine, ratio)
        return out

    # -- the full staged read ------------------------------------------
    def read(self, template: Optional[AmrHierarchy] = None,
             backend: "ExecutionBackend | str | None" = None,
             comm: Optional[SimComm] = None) -> AmrHierarchy:
        """Reconstruct the whole hierarchy (scan → decode → place → refill).

        ``template`` forces the legacy template-based scan (required for
        pre-header files, available as an override everywhere); without it
        the plan comes from the self-describing header.  ``backend`` follows
        the writer's convention: a name builds a backend owned (and closed)
        by this call, an :class:`ExecutionBackend` instance stays the
        caller's to manage.
        """
        plan = scan_plotfile(self._file, template=template, config=self.config)
        spec = backend if backend is not None else self._backend_spec
        owns = not isinstance(spec, ExecutionBackend)
        resolved = make_backend(spec if spec is not None else self.config.backend,
                                self.config.backend_workers)
        try:
            # chunks read_field already decoded (header-path cache) are
            # reused; a template scan may imply a different layout, so it
            # cannot trust them
            cache = self._cache if template is None else None
            return execute_read(self._file, plan, resolved, comm=comm,
                                stats=self.stats, cache=cache)
        finally:
            self._sync_io()
            if owns:
                resolved.close()


# ----------------------------------------------------------------------
# the reader facade (kept API, staged internals)
# ----------------------------------------------------------------------
class AMRICReader:
    """Reads plotfiles written by :class:`~repro.core.pipeline.AMRICWriter`.

    Self-describing plotfiles (format v1, PR 3) need nothing but the path::

        back = AMRICReader().read_plotfile("plotfile.h5z")

    Pre-header plotfiles still read through the explicit template fallback —
    pass the original hierarchy (or one with identical structure) as
    ``template``, exactly like before.  Decode jobs run on an execution
    backend (serial / thread / process), mirroring the writer.
    """

    def __init__(self, config: Optional[AMRICConfig] = None,
                 backend: "ExecutionBackend | str | None" = None,
                 comm: Optional[SimComm] = None):
        self.config = config or AMRICConfig()
        # same ownership convention as the writer: named backends are ours
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(
            backend if backend is not None else self.config.backend,
            self.config.backend_workers)
        self.comm = comm

    def close(self) -> None:
        """Release the reader-owned backend pool (idempotent)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "AMRICReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def open(self, path: str, source=None) -> PlotfileHandle:
        """A lazy handle on ``path`` sharing this reader's config/backend."""
        return PlotfileHandle(path, config=self.config, backend=self.backend,
                              source=source)

    def read_plotfile(self, path: str,
                      template: Optional[AmrHierarchy] = None) -> AmrHierarchy:
        """Decode ``path`` into a hierarchy; ``template`` only for legacy files."""
        with H5LiteFile(path, "r") as f:
            plan = scan_plotfile(f, template=template, config=self.config)
            return execute_read(f, plan, self.backend, comm=self.comm)

"""Reading AMRIC plotfiles back into AMR hierarchies.

Decompression walks the same filter pipeline in reverse: every chunk of every
``level_<l>/<field>`` dataset is decoded by the 3D-aware filter, the unit
blocks are placed back into their boxes, and the redundant coarse regions that
were dropped before compression are refilled by conservative averaging of the
reconstructed finer level (the values post-analysis would use anyway —
Figure 3 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.amr.multifab import MultiFab
from repro.core.config import AMRICConfig
from repro.core.filter_mod import AMRICLevelFilter
from repro.core.preprocess import preprocess_level
from repro.h5lite.file import H5LiteFile

__all__ = ["AMRICReader"]


class AMRICReader:
    """Reads plotfiles written by :class:`~repro.core.pipeline.AMRICWriter`.

    Reconstruction needs the hierarchy's *structure* (boxes, ratios,
    distribution) — exactly what AMReX stores in its plotfile headers.  This
    reproduction keeps the structure in memory: pass the original hierarchy
    (or one with identical structure) as the template.
    """

    def __init__(self, config: AMRICConfig | None = None):
        self.config = config or AMRICConfig()

    # ------------------------------------------------------------------
    def read_plotfile(self, path: str, template: AmrHierarchy) -> AmrHierarchy:
        """Decode ``path`` into a hierarchy with the template's structure."""
        cfg = self.config
        out = self._empty_like(template)
        with H5LiteFile(path, "r") as f:
            for level_index, level in enumerate(out.levels):
                pre = preprocess_level(template, level_index, cfg.unit_block_size,
                                       remove_redundancy=cfg.remove_redundancy)
                if not pre.unit_blocks:
                    continue
                ranks_with_data = sorted({b.rank for b in pre.unit_blocks})
                per_rank_blocks = {r: pre.blocks_on_rank(r) for r in ranks_with_data}
                for name in template.component_names:
                    dataset = f"level_{level_index}/{name}"
                    if dataset not in f:
                        continue
                    filt = AMRICLevelFilter(compressor=cfg.compressor,
                                            error_bound=cfg.error_bound,
                                            unit_block_size=cfg.unit_block_size)
                    flat = f.read_dataset(dataset, filter=filt).reshape(-1)
                    info = f.datasets[dataset]
                    chunk_elements = info.chunk_elements
                    comp_index = level.multifab.component_index(name)
                    for i, rank in enumerate(ranks_with_data):
                        chunk = flat[i * chunk_elements:(i + 1) * chunk_elements]
                        offset = 0
                        for block in per_rank_blocks[rank]:
                            size = block.size
                            data = chunk[offset:offset + size].reshape(block.box.shape)
                            offset += size
                            fab = level.multifab[block.box_index]
                            fab.component(comp_index)[
                                block.box.slices(origin=fab.box.lo)] = data
        self._fill_covered_regions(out)
        return out

    # ------------------------------------------------------------------
    def _empty_like(self, template: AmrHierarchy) -> AmrHierarchy:
        levels: List[AmrLevel] = []
        for lvl in template.levels:
            ba = BoxArray(list(lvl.boxarray.boxes))
            dm = DistributionMapping(list(lvl.multifab.distribution.rank_of_box),
                                     lvl.multifab.distribution.nranks)
            mf = MultiFab(ba, template.component_names, dm)
            levels.append(AmrLevel(lvl.level, lvl.domain, ba, mf))
        return AmrHierarchy(levels, template.ref_ratios,
                            time=template.time, step=template.step)

    def _fill_covered_regions(self, hierarchy: AmrHierarchy) -> None:
        """Refill removed (covered) coarse cells by averaging the finer level down."""
        if not self.config.remove_redundancy:
            return
        for level_index in range(hierarchy.nlevels - 2, -1, -1):
            coarse = hierarchy[level_index]
            fine = hierarchy[level_index + 1]
            ratio = hierarchy.ref_ratios[level_index]
            for comp in range(hierarchy.ncomp):
                for fine_fab in fine.multifab:
                    coarse_box = fine_fab.box.coarsen(ratio)
                    fine_data = fine_fab.component(comp)
                    shape = coarse_box.shape
                    averaged = fine_data.reshape(
                        shape[0], ratio, shape[1], ratio, shape[2], ratio).mean(axis=(1, 3, 5))
                    for coarse_fab in coarse.multifab:
                        overlap = coarse_fab.box.intersection(coarse_box)
                        if overlap.is_empty():
                            continue
                        coarse_fab.component(comp)[overlap.slices(origin=coarse_fab.box.lo)] = \
                            averaged[overlap.slices(origin=coarse_box.lo)]

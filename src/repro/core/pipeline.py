"""The end-to-end AMRIC in situ writer.

The write is four explicit stages (:mod:`repro.core.stages`), mirroring how
the paper's pipeline separates concerns:

1. **plan** — remove redundant coarse data, truncate into unit blocks
   (§3.1, :mod:`repro.core.preprocess`) and lay out one chunk per rank per
   field with the global chunk size from the collective max (§3.3,
   :mod:`repro.core.filter_mod`);
2. **pack** — build each dataset's field-major write buffer, one chunk slice
   per rank (§3.3 Solution 1, :mod:`repro.core.layout`);
3. **encode** — push every dataset's chunk sequence through the 3D-aware
   AMRIC filter.  Each dataset is an independent work item submitted through
   :class:`~repro.parallel.mpi_sim.SimComm` to an execution backend
   (:mod:`repro.parallel.backend`): the serial backend reproduces the
   single-process behaviour bit-for-bit, the pooled backends encode datasets
   concurrently and still produce byte-identical plotfiles;
4. **commit** — append the encoded chunks to one shared
   :class:`~repro.h5lite.file.H5LiteFile` dataset per level/field (a
   collective write per dataset) and aggregate the report.

The writer returns a :class:`WriteReport` carrying, per level and field, the
raw/compressed sizes, the reconstruction quality (PSNR over the kept data),
the filter-call counts and the per-rank workloads the I/O cost model consumes
(tallied by :class:`~repro.parallel.backend.WorkloadTally` with an exactly
conserving largest-remainder byte split).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.amr.hierarchy import AmrHierarchy
from repro.core.config import AMRICConfig
from repro.core.stages import (
    FilterSpec,
    commit_dataset,
    commit_header,
    dataset_record,
    encode_job,
    make_encode_job,
    pack_dataset,
    plan_write,
)
from repro.h5lite.file import H5LiteFile
from repro.obs import span
from repro.parallel.backend import ExecutionBackend, WorkloadTally, make_backend
from repro.parallel.iomodel import RankWorkload
from repro.parallel.mpi_sim import SimComm

__all__ = ["AMRICWriter", "WriteReport", "LevelFieldRecord"]


@dataclass
class LevelFieldRecord:
    """Compression outcome for one (level, field) dataset."""

    level: int
    field: str
    raw_bytes: int
    compressed_bytes: int
    psnr: float
    max_error: float
    filter_calls: int
    nblocks: int
    #: error-accumulation terms for cell-count-weighted aggregation across
    #: levels (older call sites may leave them at the neutral defaults, which
    #: makes the field's aggregate fall back to the per-level minimum)
    sq_error: float = 0.0
    n_elements: int = 0
    value_min: float = np.inf
    value_max: float = -np.inf

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.compressed_bytes, 1)

    @property
    def mse(self) -> float:
        return self.sq_error / max(self.n_elements, 1)


@dataclass
class WriteReport:
    """Everything a plotfile write produced (sizes, quality, workloads)."""

    method: str
    path: Optional[str]
    records: List[LevelFieldRecord]
    rank_workloads: List[RankWorkload]
    removed_cells: int
    total_cells: int
    ndatasets: int
    elapsed_seconds: float
    error_bound: float
    #: which execution backend encoded the chunks
    backend: str = "serial"
    #: collective-operation counts (barriers/reductions/gathers/writes)
    collectives: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    @property
    def raw_bytes(self) -> int:
        return sum(r.raw_bytes for r in self.records)

    @property
    def compressed_bytes(self) -> int:
        return sum(r.compressed_bytes for r in self.records)

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.compressed_bytes, 1)

    def _records_by_field(self) -> Dict[str, List[LevelFieldRecord]]:
        fields: Dict[str, List[LevelFieldRecord]] = {}
        for rec in self.records:
            fields.setdefault(rec.field, []).append(rec)
        return fields

    @property
    def psnr(self) -> Dict[str, float]:
        """Per-field PSNR aggregated over levels, MSE-weighted by cell count.

        The per-level squared errors are pooled (``sum(sq_err) / sum(n)``)
        and referenced to the field's value range across all levels — the
        PSNR of the whole field as one dataset.  A field with any record
        written without the accumulation terms falls back to the
        conservative per-level minimum (see :attr:`worst_psnr`) — pooling
        only part of a field would silently drop the legacy levels.
        """
        out: Dict[str, float] = {}
        for name, recs in self._records_by_field().items():
            if any(r.n_elements == 0 for r in recs):
                out[name] = min(r.psnr for r in recs)
                continue
            n = sum(r.n_elements for r in recs)
            mse = sum(r.sq_error for r in recs) / n
            vmin = min(r.value_min for r in recs)
            vmax = max(r.value_max for r in recs)
            vrange = (vmax - vmin) if vmax > vmin else 1.0
            out[name] = float("inf") if mse == 0 else \
                float(20.0 * np.log10(vrange) - 10.0 * np.log10(mse))
        return out

    @property
    def worst_psnr(self) -> Dict[str, float]:
        """Per-field PSNR of the worst level (conservative and monotone)."""
        return {name: min(r.psnr for r in recs)
                for name, recs in self._records_by_field().items()}

    @property
    def mean_psnr(self) -> float:
        values = [r.psnr for r in self.records if np.isfinite(r.psnr)]
        return float(np.mean(values)) if values else float("inf")

    @property
    def total_filter_calls(self) -> int:
        return sum(r.filter_calls for r in self.records)

    def as_row(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "error_bound": self.error_bound,
            "compression_ratio": self.compression_ratio,
            "mean_psnr": self.mean_psnr,
            "filter_calls": self.total_filter_calls,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
        }


class AMRICWriter:
    """In situ compressed plotfile writer implementing the AMRIC pipeline."""

    method_name = "amric"

    def __init__(self, config: AMRICConfig | None = None,
                 backend: "ExecutionBackend | str | None" = None,
                 comm: Optional[SimComm] = None, **overrides):
        config = config or AMRICConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        # a backend the writer built from config it also owns (and closes);
        # a caller-supplied ExecutionBackend stays the caller's to manage
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = make_backend(backend if backend is not None else config.backend,
                                    config.backend_workers)
        self.comm = comm

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the writer-owned backend pool (idempotent)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "AMRICWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def write_plotfile(self, hierarchy: AmrHierarchy, path: Optional[str] = None) -> WriteReport:
        """Compress and write one plotfile; return the report.

        ``path`` may be None for in-memory evaluation (the file step is then
        skipped but every compression result is identical).
        """
        cfg = self.config
        start = time.perf_counter()

        # ---- plan: preprocess + chunk layout (collective maxes) ----------
        nranks = max(lvl.multifab.distribution.nranks for lvl in hierarchy.levels)
        if self.comm is not None and self.comm.size != nranks:
            raise ValueError(
                f"communicator has {self.comm.size} ranks but the hierarchy "
                f"is distributed over {nranks}")
        comm = self.comm if self.comm is not None else SimComm(nranks)
        # writer-stage spans report into the process-wide registry (an in
        # situ writer has no query engine whose registry could collect them)
        with span("write.plan"):
            plan = plan_write(hierarchy, cfg, comm)

        # ---- pack / encode / commit, one level at a time -----------------
        # Levels batch the pipeline: a level's datasets pack together, encode
        # concurrently on the backend (one barrier per level) and commit in
        # plan order, so peak memory is one level's buffers — not the whole
        # hierarchy's — matching the in situ write pattern of the real code.
        filter_spec = FilterSpec.from_config(cfg)
        records: List[LevelFieldRecord] = []
        tally = WorkloadTally(nranks)
        ndatasets = 0
        h5file = H5LiteFile(path, "w") if path is not None else None
        try:
            if h5file is not None:
                h5file.attrs["method"] = self.method_name
                h5file.attrs["compressor"] = cfg.compressor
                h5file.attrs["error_bound"] = cfg.error_bound
                h5file.attrs["time"] = hierarchy.time
                h5file.attrs["step"] = hierarchy.step
                h5file.attrs["nlevels"] = hierarchy.nlevels
                h5file.attrs["ref_ratios"] = list(hierarchy.ref_ratios)
                h5file.attrs["components"] = list(hierarchy.component_names)
                # the self-describing header: structure + codec, so the file
                # can be opened without the producing hierarchy in memory
                commit_header(h5file, hierarchy, cfg, method=self.method_name)
            for level_plan in plan.levels:
                if not level_plan.datasets:
                    continue
                level = hierarchy[level_plan.level]
                with span("write.pack"):
                    packed = [pack_dataset(level, d) for d in level_plan.datasets]
                with span("write.encode") as sp:
                    jobs = [make_encode_job(p, filter_spec) for p in packed]
                    results = comm.run_jobs(self.backend, encode_job, jobs)
                    sp.add_bytes(sum(r.compressed_bytes for r in results))
                with span("write.commit"):
                    for dplan, pack, result in zip(level_plan.datasets, packed,
                                                   results):
                        commit_dataset(h5file, dplan, result)
                        comm.record_collective_write()
                        ndatasets += 1
                        records.append(
                            dataset_record(dplan, pack.originals, result))
                        tally.add_dataset(
                            ranks=dplan.ranks,
                            per_rank_elements=dplan.per_rank_elements,
                            chunk_elements=dplan.chunk_elements,
                            compressed_bytes=result.compressed_bytes,
                            count_padding=not cfg.modify_filter)
        finally:
            if h5file is not None:
                h5file.close()
        assert tally.total_compressed == sum(r.compressed_bytes for r in records), \
            "per-rank compressed-byte apportionment must conserve the total"

        return WriteReport(
            method=f"{self.method_name}({cfg.compressor})",
            path=path, records=records, rank_workloads=tally.workloads(),
            removed_cells=plan.removed_cells, total_cells=plan.total_cells,
            ndatasets=ndatasets,
            elapsed_seconds=time.perf_counter() - start,
            error_bound=cfg.error_bound,
            backend=self.backend.name,
            collectives={"barriers": comm.counters.barriers,
                         "reductions": comm.counters.reductions,
                         "gathers": comm.counters.gathers,
                         "collective_writes": comm.counters.collective_writes})

"""The end-to-end AMRIC in situ writer.

For every level of a hierarchy and every field, the writer

1. removes redundant coarse data and truncates the survivors into unit blocks
   (§3.1, :mod:`repro.core.preprocess`);
2. builds each rank's field-major write buffer (§3.3 Solution 1,
   :mod:`repro.core.layout`);
3. plans one chunk per rank per field with the global chunk size equal to the
   largest rank contribution, passing actual sizes to the filter
   (§3.3 Solution 2, :mod:`repro.core.filter_mod`);
4. pushes the chunks through the 3D-aware AMRIC filter (SZ_L/R with unit SLE
   and the adaptive block size, or SZ_Interp over the clustered arrangement)
   into one shared :class:`~repro.h5lite.file.H5LiteFile` dataset per
   level/field.

The writer returns a :class:`WriteReport` carrying, per level and field, the
raw/compressed sizes, the reconstruction quality (PSNR over the kept data),
the filter-call counts and the per-rank workloads the I/O cost model consumes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.hierarchy import AmrHierarchy
from repro.compress.metrics import psnr as psnr_metric
from repro.core.config import AMRICConfig
from repro.core.filter_mod import AMRICLevelFilter, ChunkPlan, plan_level_chunks
from repro.core.preprocess import PreprocessedLevel, extract_block_data, preprocess_level
from repro.h5lite.file import H5LiteFile
from repro.parallel.iomodel import RankWorkload

__all__ = ["AMRICWriter", "WriteReport", "LevelFieldRecord"]


@dataclass
class LevelFieldRecord:
    """Compression outcome for one (level, field) dataset."""

    level: int
    field: str
    raw_bytes: int
    compressed_bytes: int
    psnr: float
    max_error: float
    filter_calls: int
    nblocks: int

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.compressed_bytes, 1)


@dataclass
class WriteReport:
    """Everything a plotfile write produced (sizes, quality, workloads)."""

    method: str
    path: Optional[str]
    records: List[LevelFieldRecord]
    rank_workloads: List[RankWorkload]
    removed_cells: int
    total_cells: int
    ndatasets: int
    elapsed_seconds: float
    error_bound: float

    # ------------------------------------------------------------------
    @property
    def raw_bytes(self) -> int:
        return sum(r.raw_bytes for r in self.records)

    @property
    def compressed_bytes(self) -> int:
        return sum(r.compressed_bytes for r in self.records)

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / max(self.compressed_bytes, 1)

    @property
    def psnr(self) -> Dict[str, float]:
        """Per-field PSNR aggregated over levels (MSE-weighted by cell count)."""
        fields: Dict[str, List[LevelFieldRecord]] = {}
        for rec in self.records:
            fields.setdefault(rec.field, []).append(rec)
        out: Dict[str, float] = {}
        for name, recs in fields.items():
            # aggregate by the worst level (conservative and monotone)
            out[name] = min(r.psnr for r in recs)
        return out

    @property
    def mean_psnr(self) -> float:
        values = [r.psnr for r in self.records if np.isfinite(r.psnr)]
        return float(np.mean(values)) if values else float("inf")

    @property
    def total_filter_calls(self) -> int:
        return sum(r.filter_calls for r in self.records)

    def as_row(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "error_bound": self.error_bound,
            "compression_ratio": self.compression_ratio,
            "mean_psnr": self.mean_psnr,
            "filter_calls": self.total_filter_calls,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
        }


class AMRICWriter:
    """In situ compressed plotfile writer implementing the AMRIC pipeline."""

    method_name = "amric"

    def __init__(self, config: AMRICConfig | None = None, **overrides):
        config = config or AMRICConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config

    # ------------------------------------------------------------------
    def _make_filter(self) -> AMRICLevelFilter:
        cfg = self.config
        return AMRICLevelFilter(
            compressor=cfg.compressor, error_bound=cfg.error_bound,
            use_sle=cfg.use_sle, adaptive_block_size=cfg.adaptive_block_size,
            sz_block_size=cfg.sz_block_size, interp_arrangement=cfg.interp_arrangement,
            interp_anchor_stride=cfg.interp_anchor_stride,
            unit_block_size=cfg.unit_block_size)

    # ------------------------------------------------------------------
    def write_plotfile(self, hierarchy: AmrHierarchy, path: Optional[str] = None) -> WriteReport:
        """Compress and write one plotfile; return the report.

        ``path`` may be None for in-memory evaluation (the file step is then
        skipped but every compression result is identical).
        """
        cfg = self.config
        start = time.perf_counter()
        records: List[LevelFieldRecord] = []
        removed_cells = 0
        total_cells = 0
        ndatasets = 0

        nranks = max(lvl.multifab.distribution.nranks for lvl in hierarchy.levels)
        rank_raw = np.zeros(nranks, dtype=np.int64)
        rank_compressed = np.zeros(nranks, dtype=np.int64)
        rank_launches = np.zeros(nranks, dtype=np.int64)
        rank_padded = np.zeros(nranks, dtype=np.int64)
        rank_chunks = np.zeros(nranks, dtype=np.int64)

        h5file = H5LiteFile(path, "w") if path is not None else None
        try:
            if h5file is not None:
                h5file.attrs["method"] = self.method_name
                h5file.attrs["compressor"] = cfg.compressor
                h5file.attrs["error_bound"] = cfg.error_bound
                h5file.attrs["time"] = hierarchy.time
                h5file.attrs["step"] = hierarchy.step
                h5file.attrs["nlevels"] = hierarchy.nlevels
                h5file.attrs["ref_ratios"] = list(hierarchy.ref_ratios)
                h5file.attrs["components"] = list(hierarchy.component_names)

            for level_index, level in enumerate(hierarchy.levels):
                pre = preprocess_level(hierarchy, level_index, cfg.unit_block_size,
                                       remove_redundancy=cfg.remove_redundancy)
                removed_cells += pre.removed_cells
                total_cells += pre.total_cells
                if not pre.unit_blocks:
                    continue
                ranks_with_data = sorted({b.rank for b in pre.unit_blocks})

                for name in hierarchy.component_names:
                    value_range = max(level.multifab.value_range(name), 0.0)
                    level_filter = self._make_filter()

                    # one chunk per rank that owns data; the global chunk size
                    # is the largest rank contribution (filter modification)
                    per_rank_blocks = {r: pre.blocks_on_rank(r) for r in ranks_with_data}
                    per_rank_elements = [sum(b.size for b in per_rank_blocks[r])
                                         for r in ranks_with_data]
                    layout = plan_level_chunks(per_rank_elements,
                                               modify_filter=cfg.modify_filter)
                    chunk_elements = layout.chunk_elements

                    # one preallocated buffer for the whole dataset; each rank's
                    # blocks are copied straight into its chunk slice (no
                    # per-rank concatenate + zero-filled double buffer)
                    dataset_data = np.empty(
                        len(ranks_with_data) * chunk_elements, dtype=np.float64)
                    actual_sizes: List[int] = []
                    originals: List[List[np.ndarray]] = []
                    for i, rank in enumerate(ranks_with_data):
                        blocks = per_rank_blocks[rank]
                        data = extract_block_data(level, name, blocks)
                        originals.append(data)
                        buf = dataset_data[i * chunk_elements:(i + 1) * chunk_elements]
                        offset = 0
                        for d in data:
                            buf[offset:offset + d.size].reshape(d.shape)[...] = d
                            offset += d.size
                        buf[offset:] = 0.0          # padding tail
                        valid_size = offset
                        plan_positions = [tuple(b.box.lo) for b in blocks]
                        if not cfg.modify_filter:
                            # naive large chunk: the padding tail is real work
                            actual = chunk_elements
                            plan_shapes = [tuple(b.box.shape) for b in blocks]
                            # represent the padding as one extra pseudo block
                            pad = chunk_elements - valid_size
                            if pad > 0:
                                plan_shapes = plan_shapes + [(1, 1, pad)]
                                plan_positions = None
                        else:
                            actual = valid_size
                            plan_shapes = [tuple(b.box.shape) for b in blocks]
                        level_filter.queue_plan(ChunkPlan(field=name,
                                                          block_shapes=plan_shapes,
                                                          value_range=value_range,
                                                          block_positions=plan_positions))
                        actual_sizes.append(actual)
                    dataset_name = f"level_{level_index}/{name}"
                    if h5file is not None:
                        info = h5file.create_dataset(
                            dataset_name, dataset_data, chunk_elements=chunk_elements,
                            filter=level_filter, actual_elements_per_chunk=actual_sizes,
                            attrs={"level": level_index, "field": name,
                                   "value_range": value_range})
                        compressed_bytes = info.stored_nbytes
                    else:
                        # in-memory path: run the filter directly, chunk by chunk
                        compressed_bytes = 0
                        for i in range(len(ranks_with_data)):
                            payload = level_filter.encode(
                                dataset_data[i * chunk_elements:(i + 1) * chunk_elements],
                                actual_elements=actual_sizes[i])
                            compressed_bytes += len(payload)
                    ndatasets += 1

                    # quality over the kept (non-redundant) data
                    sq_err = 0.0
                    max_err = 0.0
                    n_elems = 0
                    gmin, gmax = np.inf, -np.inf
                    for data, recons in zip(originals, level_filter.last_reconstructions):
                        for orig, rec in zip(data, recons):
                            diff = orig - rec
                            sq_err += float(np.sum(diff * diff))
                            max_err = max(max_err, float(np.max(np.abs(diff))))
                            n_elems += orig.size
                            gmin = min(gmin, float(orig.min()))
                            gmax = max(gmax, float(orig.max()))
                    raw_bytes = n_elems * 8
                    mse = sq_err / max(n_elems, 1)
                    vrange = (gmax - gmin) if gmax > gmin else 1.0
                    field_psnr = float("inf") if mse == 0 else \
                        20.0 * np.log10(vrange) - 10.0 * np.log10(mse)

                    records.append(LevelFieldRecord(
                        level=level_index, field=name, raw_bytes=raw_bytes,
                        compressed_bytes=compressed_bytes, psnr=field_psnr,
                        max_error=max_err, filter_calls=level_filter.stats.calls,
                        nblocks=len(pre.unit_blocks)))

                    # per-rank workload bookkeeping for the I/O cost model
                    offset = 0
                    for i, rank in enumerate(ranks_with_data):
                        valid = sum(b.size for b in per_rank_blocks[rank])
                        rank_raw[rank] += valid * 8
                        rank_launches[rank] += 1
                        rank_chunks[rank] += 1
                        if not cfg.modify_filter:
                            rank_padded[rank] += (chunk_elements - valid) * 8
                    # split compressed bytes between ranks proportionally to raw size
                    total_valid = sum(per_rank_elements)
                    for i, rank in enumerate(ranks_with_data):
                        share = per_rank_elements[i] / max(total_valid, 1)
                        rank_compressed[rank] += int(round(compressed_bytes * share))
        finally:
            if h5file is not None:
                h5file.close()

        workloads = [RankWorkload(raw_bytes=int(rank_raw[r]),
                                  compressed_bytes=int(rank_compressed[r]),
                                  compressor_launches=int(rank_launches[r]),
                                  padded_bytes=int(rank_padded[r]),
                                  chunks_written=int(max(rank_chunks[r], 1)))
                     for r in range(nranks)]
        return WriteReport(
            method=f"{self.method_name}({self.config.compressor})",
            path=path, records=records, rank_workloads=workloads,
            removed_cells=removed_cells, total_cells=total_cells,
            ndatasets=ndatasets, elapsed_seconds=time.perf_counter() - start,
            error_bound=self.config.error_bound)

"""Per-rank buffer layouts (§3.3 Solution 1).

AMReX stores a box's components contiguously (box-major): the write buffer of
a rank is ``[box0: field0..fieldN][box1: field0..fieldN]...``, which caps the
HDF5 chunk size at the smallest box to avoid compressing different physical
fields together.  AMRIC changes the *loop order* when filling the buffer so
the same field of every box is contiguous (field-major):
``[field0: box0..boxM][field1: box0..boxM]...``, letting a chunk span a whole
field.

Both layouts are implemented here over unit blocks, together with the segment
bookkeeping the writers and the small-chunk baseline need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.amr.hierarchy import AmrLevel
from repro.core.preprocess import UnitBlock, extract_block_data

__all__ = ["RankBuffer", "build_rank_buffer_field_major", "build_rank_buffer_box_major"]


@dataclass
class RankBuffer:
    """One rank's linearised write buffer plus its segment structure."""

    rank: int
    layout: str                            #: "field_major" or "box_major"
    data: np.ndarray                       #: the 1D buffer
    #: per segment: (field name, block index within the rank, element count)
    segments: List[Tuple[str, int, int]]
    #: per field: (start, stop) element range in the buffer (field-major only)
    field_ranges: Dict[str, Tuple[int, int]]

    @property
    def nelements(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def field_slice(self, name: str) -> np.ndarray:
        if name not in self.field_ranges:
            raise KeyError(f"field {name!r} has no contiguous range in a {self.layout} buffer")
        start, stop = self.field_ranges[name]
        return self.data[start:stop]

    @property
    def smallest_segment(self) -> int:
        return min((n for _, _, n in self.segments), default=0)


def build_rank_buffer_field_major(level: AmrLevel, blocks: Sequence[UnitBlock],
                                  rank: int, components: Sequence[str]) -> RankBuffer:
    """AMRIC's layout: all of one field's blocks, then the next field's."""
    rank_blocks = [b for b in blocks if b.rank == rank]
    parts: List[np.ndarray] = []
    segments: List[Tuple[str, int, int]] = []
    field_ranges: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for name in components:
        start = offset
        data = extract_block_data(level, name, rank_blocks)
        for i, block_data in enumerate(data):
            flat = block_data.reshape(-1)
            parts.append(flat)
            segments.append((name, i, flat.size))
            offset += flat.size
        field_ranges[name] = (start, offset)
    buffer = np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)
    return RankBuffer(rank=rank, layout="field_major", data=buffer,
                      segments=segments, field_ranges=field_ranges)


def build_rank_buffer_box_major(level: AmrLevel, blocks: Sequence[UnitBlock],
                                rank: int, components: Sequence[str]) -> RankBuffer:
    """AMReX's original layout: for each block, all its fields back to back."""
    rank_blocks = [b for b in blocks if b.rank == rank]
    per_field_data = {name: extract_block_data(level, name, rank_blocks)
                      for name in components}
    parts: List[np.ndarray] = []
    segments: List[Tuple[str, int, int]] = []
    for i, block in enumerate(rank_blocks):
        for name in components:
            flat = per_field_data[name][i].reshape(-1)
            parts.append(flat)
            segments.append((name, i, flat.size))
    buffer = np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)
    return RankBuffer(rank=rank, layout="box_major", data=buffer,
                      segments=segments, field_ranges={})

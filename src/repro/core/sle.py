"""Unit-block encoding strategies for SZ_L/R (§3.2 Solution 1 and its rivals).

Given the list of 3D unit blocks a pre-processed AMR level produces, there are
three ways to push them through SZ_L/R:

* **LM (linear merging)** — the original approach: merge the unit blocks into
  one long array (stacking along the last axis) and compress it as a single
  buffer.  Prediction then crosses the seams between blocks that are not
  neighbours in the original dataset, which hurts accuracy (Figure 6 right).
* **unit SLE** — AMRIC: predict and quantise every unit block *separately*
  but encode all of their quantisation codes with one shared Huffman table
  (Figure 6 left).
* **individual** — predict each block separately *and* give each its own
  Huffman table: best prediction but large encoding overhead (the dilemma SLE
  resolves).

Each strategy returns the compressed buffer plus per-block reconstructions so
rate–distortion and error-slice comparisons (Figures 6, 7 and 9) can be
produced without decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.compress.base import CompressedBuffer
from repro.compress.sz_lr import SZLRCompressor

__all__ = ["EncodedBlocks", "compress_blocks_sle", "compress_blocks_lm",
           "compress_blocks_individual", "STRATEGIES"]


@dataclass
class EncodedBlocks:
    """Result of compressing a list of unit blocks with one strategy."""

    strategy: str
    buffer: CompressedBuffer
    reconstructions: List[np.ndarray]

    @property
    def compressed_nbytes(self) -> int:
        return self.buffer.compressed_nbytes

    @property
    def original_nbytes(self) -> int:
        return int(sum(r.nbytes for r in self.reconstructions))

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / max(self.compressed_nbytes, 1)


def _value_range(blocks: Sequence[np.ndarray]) -> float:
    gmin = min(float(b.min()) for b in blocks)
    gmax = max(float(b.max()) for b in blocks)
    return gmax - gmin


def compress_blocks_sle(blocks: Sequence[np.ndarray], compressor: SZLRCompressor,
                        value_range: float | None = None) -> EncodedBlocks:
    """Unit SLE: per-block prediction, one shared Huffman table."""
    if not blocks:
        raise ValueError("need at least one block")
    value_range = value_range if value_range is not None else _value_range(blocks)
    buffer, recons = compressor.compress_many_with_reconstruction(
        blocks, shared_encoding=True, value_range=value_range)
    return EncodedBlocks("sle", buffer, list(recons))


def compress_blocks_individual(blocks: Sequence[np.ndarray], compressor: SZLRCompressor,
                               value_range: float | None = None) -> EncodedBlocks:
    """Per-block prediction and per-block Huffman tables (no sharing)."""
    if not blocks:
        raise ValueError("need at least one block")
    value_range = value_range if value_range is not None else _value_range(blocks)
    buffer, recons = compressor.compress_many_with_reconstruction(
        blocks, shared_encoding=False, value_range=value_range)
    return EncodedBlocks("individual", buffer, list(recons))


def compress_blocks_lm(blocks: Sequence[np.ndarray], compressor: SZLRCompressor,
                       value_range: float | None = None) -> EncodedBlocks:
    """Linear merging: stack the blocks along the last axis and compress once.

    Blocks are padded (edge mode) to a common cross-section so they can be
    stacked; prediction crosses the seams, which is exactly the accuracy loss
    the paper attributes to merging non-adjacent blocks.
    """
    if not blocks:
        raise ValueError("need at least one block")
    value_range = value_range if value_range is not None else _value_range(blocks)
    ndim = blocks[0].ndim
    cross = tuple(max(b.shape[d] for b in blocks) for d in range(ndim - 1))
    padded: List[np.ndarray] = []
    for b in blocks:
        pads = [(0, cross[d] - b.shape[d]) for d in range(ndim - 1)] + [(0, 0)]
        padded.append(np.pad(b, pads, mode="edge"))
    merged = np.concatenate(padded, axis=ndim - 1)
    buffer, merged_recon = compressor.compress_many_with_reconstruction(
        [merged], shared_encoding=True, value_range=value_range)
    recon = merged_recon[0]
    out: List[np.ndarray] = []
    offset = 0
    for b in blocks:
        length = b.shape[-1]
        slab = recon[..., offset:offset + length]
        out.append(np.ascontiguousarray(
            slab[tuple(slice(0, s) for s in b.shape[:-1]) + (slice(None),)]))
        offset += length
    return EncodedBlocks("lm", buffer, out)


#: name → strategy callable (used by the Figure 6/7 benches)
STRATEGIES = {
    "sle": compress_blocks_sle,
    "lm": compress_blocks_lm,
    "individual": compress_blocks_individual,
}

"""Compression-oriented pre-processing of AMR data (§3.1 of the paper).

Three steps, all operating on one AMR level at a time:

1. **Redundancy removal** — coarse regions covered by the next finer level are
   dropped.  The covered regions are found with box intersections against the
   finer level's (coarsened) box array; their position never needs to be
   stored because it is implied by the finer level's box positions.
2. **Uniform truncation** — the remaining (irregular) per-box regions are cut
   into unit blocks of at most ``unit_block_size`` per side so the compressor
   sees a collection of equal-ish 3D cubes instead of arbitrary box shapes.
3. **Reorganisation** — SZ_L/R consumes the unit blocks as an ordered list
   (linearised along the scan order, the cheapest arrangement); SZ_Interp
   consumes a single 3D array, so the blocks are packed into a compact,
   cube-like cluster (or a linear stack, for the Figure 5 comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.compress.blocks import pad_to_multiple

__all__ = [
    "UnitBlock",
    "PreprocessedLevel",
    "kept_regions_for_level",
    "truncate_regions",
    "preprocess_level",
    "pack_blocks_cluster",
    "pack_blocks_linear",
    "unpack_blocks",
    "PackedArrangement",
]


@dataclass
class UnitBlock:
    """One truncated unit block: where it lives and which box it came from."""

    box: Box                  #: region in the level's index space
    box_index: int            #: index of the originating AMR box
    rank: int                 #: owning MPI rank

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.box.shape

    @property
    def size(self) -> int:
        return self.box.size


@dataclass
class PreprocessedLevel:
    """The §3.1 output for one level: kept regions truncated into unit blocks."""

    level: int
    unit_blocks: List[UnitBlock]
    removed_cells: int            #: redundant coarse cells dropped
    total_cells: int              #: cells of the level before removal

    @property
    def kept_cells(self) -> int:
        return sum(b.size for b in self.unit_blocks)

    @property
    def removed_fraction(self) -> float:
        if self.total_cells == 0:
            return 0.0
        return self.removed_cells / self.total_cells

    def blocks_on_rank(self, rank: int) -> List[UnitBlock]:
        return [b for b in self.unit_blocks if b.rank == rank]


# ----------------------------------------------------------------------
# step 1: redundancy removal
# ----------------------------------------------------------------------
def kept_regions_for_level(hierarchy: AmrHierarchy, level: int,
                           remove_redundancy: bool = True) -> List[List[Box]]:
    """Per box of ``level``: the disjoint sub-boxes that survive redundancy removal.

    With ``remove_redundancy`` off (or on the finest level) every box survives
    whole.
    """
    lvl = hierarchy[level]
    if not remove_redundancy or level >= hierarchy.nlevels - 1:
        return [[box] for box in lvl.boxarray]
    ratio = hierarchy.ref_ratios[level]
    finer_coarsened = hierarchy[level + 1].boxarray.coarsen(ratio)
    kept: List[List[Box]] = []
    for box in lvl.boxarray:
        kept.append(finer_coarsened.complement_in(box))
    return kept


# ----------------------------------------------------------------------
# step 2: uniform truncation
# ----------------------------------------------------------------------
def truncate_regions(kept: Sequence[Sequence[Box]], distribution,
                     unit_block_size: int) -> List[UnitBlock]:
    """Cut every kept region into unit blocks of at most ``unit_block_size`` per side."""
    if unit_block_size < 1:
        raise ValueError("unit_block_size must be >= 1")
    out: List[UnitBlock] = []
    for box_index, regions in enumerate(kept):
        rank = distribution[box_index]
        for region in regions:
            for unit in region.split(unit_block_size):
                out.append(UnitBlock(box=unit, box_index=box_index, rank=rank))
    return out


def preprocess_level(hierarchy: AmrHierarchy, level: int, unit_block_size: int,
                     remove_redundancy: bool = True) -> PreprocessedLevel:
    """Run steps 1–2 for one level."""
    lvl = hierarchy[level]
    kept = kept_regions_for_level(hierarchy, level, remove_redundancy)
    blocks = truncate_regions(kept, lvl.multifab.distribution, unit_block_size)
    total = lvl.num_cells
    kept_cells = sum(b.size for b in blocks)
    return PreprocessedLevel(level=level, unit_blocks=blocks,
                             removed_cells=total - kept_cells, total_cells=total)


def extract_block_data(level: AmrLevel, component: str,
                       blocks: Sequence[UnitBlock]) -> List[np.ndarray]:
    """Pull the field data of each unit block out of the level's fabs.

    Returns views into the fab storage (no gather copy); consumers that need
    contiguous memory copy at their own boundary, and none of them write.
    """
    comp = level.multifab.component_index(component)
    out: List[np.ndarray] = []
    for block in blocks:
        fab = level.multifab[block.box_index]
        out.append(fab.component(comp)[block.box.slices(origin=fab.box.lo)])
    return out


# ----------------------------------------------------------------------
# step 3: reorganisation for SZ_Interp
# ----------------------------------------------------------------------
@dataclass
class PackedArrangement:
    """How a list of unit blocks was packed into one 3D array."""

    mode: str                                  #: "cluster" or "linear"
    unit_shape: Tuple[int, int, int]           #: the padded per-block cell shape
    grid_shape: Tuple[int, int, int]           #: blocks along each axis of the packing
    block_shapes: List[Tuple[int, ...]]        #: original (pre-padding) shapes
    fill_value: float
    slot_of_block: List[int] = field(default_factory=list)  #: packing slot per block

    def __post_init__(self) -> None:
        if not self.slot_of_block:
            self.slot_of_block = list(range(len(self.block_shapes)))

    @property
    def nblocks(self) -> int:
        return len(self.block_shapes)


def _slot_corner(slot: int, grid_shape, unit_shape):
    gi = slot // (grid_shape[1] * grid_shape[2])
    gj = (slot // grid_shape[2]) % grid_shape[1]
    gk = slot % grid_shape[2]
    return (gi * unit_shape[0], gj * unit_shape[1], gk * unit_shape[2])


def _pack(blocks: Sequence[np.ndarray], grid_shape: Tuple[int, int, int],
          mode: str, slot_of_block: List[int] | None = None
          ) -> Tuple[np.ndarray, PackedArrangement]:
    if not blocks:
        raise ValueError("cannot pack an empty block list")
    unit_shape = tuple(int(max(b.shape[d] for b in blocks)) for d in range(3))
    fill_value = float(np.mean([float(b.mean()) for b in blocks]))
    packed = np.full((grid_shape[0] * unit_shape[0],
                      grid_shape[1] * unit_shape[1],
                      grid_shape[2] * unit_shape[2]), fill_value, dtype=np.float64)
    if slot_of_block is None:
        slot_of_block = list(range(len(blocks)))
    shapes: List[Tuple[int, ...]] = []
    for index, block in enumerate(blocks):
        corner = _slot_corner(slot_of_block[index], grid_shape, unit_shape)
        # pad the block (edge mode) to the unit shape so interpolation does not
        # see artificial discontinuities inside a slot
        padded = np.pad(block, [(0, unit_shape[d] - block.shape[d]) for d in range(3)],
                        mode="edge")
        packed[corner[0]:corner[0] + unit_shape[0],
               corner[1]:corner[1] + unit_shape[1],
               corner[2]:corner[2] + unit_shape[2]] = padded
        shapes.append(tuple(block.shape))
    arrangement = PackedArrangement(mode=mode, unit_shape=unit_shape,
                                    grid_shape=grid_shape, block_shapes=shapes,
                                    fill_value=fill_value,
                                    slot_of_block=list(slot_of_block))
    return packed, arrangement


def _spatial_slots(positions: Sequence[Tuple[int, ...]]
                   ) -> Tuple[Tuple[int, int, int], List[int]] | None:
    """Grid shape + slot per block when the blocks' positions form a regular grid.

    Keeping spatial neighbours adjacent in the packed cube is what makes the
    clustered arrangement interpolation-friendly; when the positions do not
    tile a complete grid the caller falls back to a compact generic packing.
    """
    if not positions or len(set(positions)) != len(positions):
        return None
    axes = []
    for d in range(3):
        axes.append(sorted({p[d] for p in positions}))
    grid_shape = tuple(len(a) for a in axes)
    if int(np.prod(grid_shape)) != len(positions):
        return None
    index_of = [{v: i for i, v in enumerate(a)} for a in axes]
    slots = []
    for p in positions:
        gi, gj, gk = (index_of[d][p[d]] for d in range(3))
        slots.append((gi * grid_shape[1] + gj) * grid_shape[2] + gk)
    return grid_shape, slots


def pack_blocks_cluster(blocks: Sequence[np.ndarray],
                        positions: Sequence[Tuple[int, ...]] | None = None
                        ) -> Tuple[np.ndarray, PackedArrangement]:
    """Pack unit blocks into a compact cube-like cluster (§3.1, Figure 4 bottom).

    When ``positions`` (the blocks' lower corners in the level's index space)
    are provided and form a complete rectangular grid, the packing reproduces
    the blocks' spatial arrangement so the global interpolation sees real
    neighbours; otherwise the blocks are packed into the most cube-like grid
    in (position-sorted) order.
    """
    n = len(blocks)
    if n == 0:
        raise ValueError("cannot pack an empty block list")
    if positions is not None and len(positions) == n:
        spatial = _spatial_slots([tuple(int(v) for v in p) for p in positions])
        if spatial is not None:
            grid_shape, slots = spatial
            return _pack(blocks, grid_shape, "cluster", slots)
    gx = int(np.ceil(n ** (1.0 / 3.0)))
    gy = int(np.ceil(np.sqrt(n / gx)))
    gz = int(np.ceil(n / (gx * gy)))
    slots = None
    if positions is not None and len(positions) == n:
        # sort by spatial position so nearby blocks land in nearby slots
        ranked = sorted(range(n), key=lambda i: tuple(int(v) for v in positions[i]))
        slots = [0] * n
        for slot, block_index in enumerate(ranked):
            slots[block_index] = slot
    return _pack(blocks, (gx, gy, gz), "cluster", slots)


def pack_blocks_linear(blocks: Sequence[np.ndarray],
                       positions: Sequence[Tuple[int, ...]] | None = None
                       ) -> Tuple[np.ndarray, PackedArrangement]:
    """Stack unit blocks along the last axis (the cheap linear arrangement)."""
    n = len(blocks)
    if n == 0:
        raise ValueError("cannot pack an empty block list")
    return _pack(blocks, (1, 1, n), "linear")


def unpack_blocks(packed: np.ndarray, arrangement: PackedArrangement) -> List[np.ndarray]:
    """Invert :func:`pack_blocks_cluster` / :func:`pack_blocks_linear`."""
    us = arrangement.unit_shape
    gs = arrangement.grid_shape
    out: List[np.ndarray] = []
    for index, shape in enumerate(arrangement.block_shapes):
        corner = _slot_corner(arrangement.slot_of_block[index], gs, us)
        slot = packed[corner[0]:corner[0] + us[0],
                      corner[1]:corner[1] + us[1],
                      corner[2]:corner[2] + us[2]]
        out.append(np.ascontiguousarray(slot[tuple(slice(0, s) for s in shape)]))
    return out

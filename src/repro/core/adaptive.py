"""Adaptive SZ_L/R block-size selection (§3.2 Solution 2, Equation 1).

AMReX unit blocks are typically powers of two, which a 6×6×6 SZ truncation
does not divide evenly; the leftover "residue" blocks are thin (6×6×2, 6×2×2,
2×2×2) and predict poorly.  Equation 1 of the paper switches the SZ block
size to 4×4×4 exactly when those residues would appear:

.. math::

    \\text{SZ\\_BlkSize} = \\begin{cases}
        4^3 & \\text{if unitBlkSize} \\bmod 6 \\le 2 \\\\
        6^3 & \\text{if unitBlkSize} \\bmod 6 > 2 \\\\
        6^3 & \\text{if unitBlkSize} \\ge 64
    \\end{cases}
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["select_sz_block_size", "residue_block_shapes"]


def select_sz_block_size(unit_block_size: int, base_block_size: int = 6,
                         small_block_size: int = 4, large_unit_threshold: int = 64) -> int:
    """Equation 1 of the paper.

    Parameters
    ----------
    unit_block_size:
        Edge length of the AMR unit blocks produced by the pre-processing.
    base_block_size / small_block_size:
        The default (6) and fallback (4) SZ block sizes.
    large_unit_threshold:
        Above this unit size residues are a negligible fraction and the
        default block size is kept regardless.
    """
    if unit_block_size < 1:
        raise ValueError("unit_block_size must be >= 1")
    if unit_block_size >= large_unit_threshold:
        return base_block_size
    if unit_block_size % base_block_size <= 2:
        return small_block_size
    return base_block_size


def residue_block_shapes(unit_block_size: int, sz_block_size: int
                         ) -> Tuple[Tuple[int, int, int], ...]:
    """The sub-block shapes a cubic unit block decomposes into (Figure 8).

    Returns every distinct (counted with multiplicity) sub-block shape produced
    when a ``unit³`` cube is truncated by ``sz³`` blocks without padding.
    """
    if unit_block_size < 1 or sz_block_size < 1:
        raise ValueError("sizes must be >= 1")
    full, rem = divmod(unit_block_size, sz_block_size)
    segments = [sz_block_size] * full + ([rem] if rem else [])
    shapes = []
    for a in segments:
        for b in segments:
            for c in segments:
                shapes.append((a, b, c))
    return tuple(shapes)

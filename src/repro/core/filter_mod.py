"""HDF5 filter-side modifications (§3.3 Solution 2).

Two pieces:

* :func:`plan_level_chunks` — the global chunk size for a level's shared
  dataset is the **largest per-rank contribution**; smaller ranks either pad
  (naive) or pass their actual size to the filter (AMRIC).
* :class:`AMRICLevelFilter` — an :class:`~repro.h5lite.filters.Filter` whose
  ``encode`` understands AMRIC's pre-processed chunk contents: the chunk is a
  field-major rank buffer made of 3D unit blocks, and the filter compresses it
  with 3D SZ (SLE or clustered-interpolation) instead of treating it as a flat
  stream.  The block structure travels inside the compressed payload so a
  chunk is self-describing, mirroring how the real AMRIC feeds its modified
  H5Z-SZ filter the metadata it needs.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.compress.registry import create_codec, resolve_codec
from repro.core.preprocess import (
    PackedArrangement,
    pack_blocks_cluster,
    pack_blocks_linear,
    unpack_blocks,
)
from repro.h5lite.filters import Filter
from repro.parallel.collective import SharedDatasetLayout, plan_shared_dataset

__all__ = ["plan_level_chunks", "ChunkPlan", "AMRICLevelFilter"]


def plan_level_chunks(per_rank_elements: Sequence[int],
                      modify_filter: bool = True) -> SharedDatasetLayout:
    """Chunk layout for one level's shared dataset (one chunk per rank)."""
    return plan_shared_dataset(per_rank_elements, pass_actual_size=modify_filter)


@dataclass
class ChunkPlan:
    """Block structure of one chunk (= one rank's field data)."""

    field: str
    block_shapes: List[Tuple[int, int, int]]   #: unit-block shapes, in buffer order
    value_range: float                          #: field value range (for the relative bound)
    #: unit-block lower corners in the level's index space (lets the clustered
    #: SZ_Interp arrangement keep spatial neighbours adjacent)
    block_positions: Optional[List[Tuple[int, int, int]]] = None

    @property
    def nelements(self) -> int:
        return int(sum(int(np.prod(s)) for s in self.block_shapes))

    def to_json(self) -> dict:
        return {"field": self.field, "block_shapes": [list(s) for s in self.block_shapes],
                "value_range": self.value_range,
                "block_positions": ([list(p) for p in self.block_positions]
                                    if self.block_positions is not None else None)}

    @staticmethod
    def from_json(obj: dict) -> "ChunkPlan":
        positions = obj.get("block_positions")
        return ChunkPlan(field=obj["field"],
                         block_shapes=[tuple(s) for s in obj["block_shapes"]],
                         value_range=float(obj["value_range"]),
                         block_positions=([tuple(p) for p in positions]
                                          if positions is not None else None))


class AMRICLevelFilter(Filter):
    """The modified compression filter: 3D-aware, actual-size-aware.

    The writer queues one :class:`ChunkPlan` per upcoming ``encode`` call (in
    write order); the filter consumes them, rebuilds the 3D unit blocks from
    the flat chunk, compresses them with the configured SZ algorithm and emits
    a self-describing payload.  ``decode`` needs no side information.
    """

    filter_id = "amric_3d"

    def __init__(self, compressor: str = "sz_lr", error_bound: float = 1e-3,
                 use_sle: bool = True, adaptive_block_size: bool = True,
                 sz_block_size: int = 6, interp_arrangement: str = "cluster",
                 interp_anchor_stride: int = 16, unit_block_size: int = 16,
                 reuse_codec: bool = True):
        super().__init__()
        resolve_codec(compressor)        # unknown names fail fast with ValueError
        self.compressor = compressor
        self.error_bound = float(error_bound)
        self.use_sle = bool(use_sle)
        self.adaptive_block_size = bool(adaptive_block_size)
        self.sz_block_size = int(sz_block_size)
        self.interp_arrangement = interp_arrangement
        self.interp_anchor_stride = int(interp_anchor_stride)
        self.unit_block_size = int(unit_block_size)
        #: carry one shared Huffman table across the chunks (= ranks) of the
        #: same SLE plan instead of rebuilding it per chunk; a chunk whose
        #: symbols the table misses transparently rebuilds and re-caches it
        self.reuse_codec = bool(reuse_codec)
        self._shared_codec = None
        self._codec_scope = None      # (field, value_range) the cached table belongs to
        self._many_codec = None       # cached multi-array codec (relative bound)
        self._packed_codec = None     # cached single-array codec (absolute bound)
        self._packed_codec_eb: Optional[float] = None
        self._pending_plans: List[ChunkPlan] = []
        #: reconstructions of the blocks of every encoded chunk (encode order),
        #: kept so the writer can compute PSNR without re-reading the file
        self.last_reconstructions: List[List[np.ndarray]] = []

    # ------------------------------------------------------------------
    def queue_plan(self, plan: ChunkPlan) -> None:
        self._pending_plans.append(plan)

    def _sz_block_size_for(self) -> int:
        from repro.core.adaptive import select_sz_block_size

        if not self.adaptive_block_size:
            return self.sz_block_size
        return select_sz_block_size(self.unit_block_size, base_block_size=self.sz_block_size)

    # ------------------------------------------------------------------
    def encode(self, chunk: np.ndarray, actual_elements: Optional[int] = None) -> bytes:
        if not self._pending_plans:
            raise RuntimeError("AMRICLevelFilter.encode called without a queued ChunkPlan")
        plan = self._pending_plans.pop(0)
        chunk = np.asarray(chunk, dtype=np.float64).reshape(-1)
        nvalid = plan.nelements
        if actual_elements is not None and actual_elements != nvalid:
            raise ValueError(
                f"chunk plan expects {nvalid} valid elements, writer passed {actual_elements}")

        # rebuild the 3D unit blocks from the flat (field-major) chunk prefix
        blocks: List[np.ndarray] = []
        offset = 0
        for shape in plan.block_shapes:
            size = int(np.prod(shape))
            blocks.append(chunk[offset:offset + size].reshape(shape))
            offset += size

        spec = resolve_codec(self.compressor)
        if spec.supports_many:
            # multi-array (unit-block) codecs compress the blocks directly,
            # which is what unit SLE (§3.2 Solution 1) relies on
            if self._many_codec is None:
                self._many_codec = spec.create(
                    self.error_bound, block_size=self._sz_block_size_for())
            comp = self._many_codec
            # the cached table is only valid within one SLE plan — chunks of
            # the same field with the same quantisation grid; a different
            # field (or bound) has a different symbol distribution
            scope = (plan.field, plan.value_range)
            if self.reuse_codec and self._codec_scope != scope:
                self._shared_codec = None
                self._codec_scope = scope
            buffer, recons = comp.compress_many_with_reconstruction(
                blocks, shared_encoding=self.use_sle, value_range=plan.value_range,
                codec=self._shared_codec if self.reuse_codec else None)
            if self.reuse_codec:
                self._shared_codec = comp.last_shared_codec
            body = buffer.payload
            mode = spec.name
            arrangement_json = None
        else:
            # single-array codecs see one packed 3D arrangement of the blocks
            if self.interp_arrangement == "cluster":
                packed, arrangement = pack_blocks_cluster(blocks, positions=plan.block_positions)
            else:
                packed, arrangement = pack_blocks_linear(blocks)
            abs_eb = self.error_bound * plan.value_range
            if self._packed_codec is None or self._packed_codec_eb != abs_eb:
                self._packed_codec = spec.create(
                    abs_eb, mode="abs", anchor_stride=self.interp_anchor_stride)
                self._packed_codec_eb = abs_eb
            comp = self._packed_codec
            buffer, packed_recon = comp.compress_with_reconstruction(packed)
            recons = unpack_blocks(packed_recon, arrangement)
            body = buffer.payload
            mode = spec.name
            arrangement_json = {
                "mode": arrangement.mode,
                "unit_shape": list(arrangement.unit_shape),
                "grid_shape": list(arrangement.grid_shape),
                "block_shapes": [list(s) for s in arrangement.block_shapes],
                "fill_value": arrangement.fill_value,
                "slot_of_block": list(arrangement.slot_of_block),
            }

        header = json.dumps({
            "mode": mode,
            "plan": plan.to_json(),
            "chunk_elements": int(chunk.size),
            "error_bound": self.error_bound,
            "use_sle": self.use_sle,
            "sz_block_size": self._sz_block_size_for(),
            "interp_anchor_stride": self.interp_anchor_stride,
            "arrangement": arrangement_json,
        }).encode("utf-8")
        payload = struct.pack("<Q", len(header)) + header + body

        self.last_reconstructions.append(recons)
        self._account(chunk, nvalid, payload)
        return payload

    # ------------------------------------------------------------------
    def decode(self, payload: bytes, chunk_elements: int) -> np.ndarray:
        (header_len,) = struct.unpack_from("<Q", payload, 0)
        header = json.loads(bytes(payload[8:8 + header_len]).decode("utf-8"))
        body = payload[8 + header_len:]
        plan = ChunkPlan.from_json(header["plan"])

        spec = resolve_codec(header["mode"])
        if spec.supports_many:
            comp = spec.create(header["error_bound"], block_size=header["sz_block_size"])
            blocks = comp.decompress_many(body)
        else:
            arr = header["arrangement"]
            arrangement = PackedArrangement(
                mode=arr["mode"], unit_shape=tuple(arr["unit_shape"]),
                grid_shape=tuple(arr["grid_shape"]),
                block_shapes=[tuple(s) for s in arr["block_shapes"]],
                fill_value=float(arr["fill_value"]),
                slot_of_block=list(arr.get("slot_of_block", [])))
            comp = spec.create(header["error_bound"], mode="abs",
                               anchor_stride=header["interp_anchor_stride"])
            packed = comp.decompress(body)
            blocks = unpack_blocks(packed, arrangement)

        out = np.zeros(chunk_elements, dtype=np.float64)
        offset = 0
        for block in blocks:
            flat = np.asarray(block, dtype=np.float64).reshape(-1)
            out[offset:offset + flat.size] = flat
            offset += flat.size
        return out

"""AMRIC — the paper's contribution: in situ 3D AMR compression through the filter.

The pieces map one-to-one onto the paper's design sections:

* :mod:`repro.core.preprocess` — §3.1 pre-processing: redundancy removal,
  uniform truncation into unit blocks, compressor-specific reorganisation
  (linear for SZ_L/R, clustered cube for SZ_Interp).
* :mod:`repro.core.sle` — §3.2 Solution 1: unit Shared Lossless Encoding.
* :mod:`repro.core.adaptive` — §3.2 Solution 2 (Equation 1): adaptive SZ
  block size.
* :mod:`repro.core.layout` — §3.3 Solution 1: box-major → field-major layout.
* :mod:`repro.core.filter_mod` — §3.3 Solution 2: global chunk size with
  per-rank actual sizes passed to the filter.
* :mod:`repro.core.pipeline` / :mod:`repro.core.reader` — the end-to-end
  in situ writer (:class:`AMRICWriter`) and the staged reader
  (:class:`AMRICReader`, :class:`PlotfileHandle`).
* :mod:`repro.core.header` — the versioned self-describing plotfile header
  that lets the reader rebuild the structural template from the file alone.
"""

from repro.core.config import AMRICConfig
from repro.core.pipeline import AMRICWriter, WriteReport, LevelFieldRecord
from repro.core.reader import (
    AMRICReader,
    DecodeJob,
    DecodeResult,
    PlotfileHandle,
    ReadPlan,
    ReadStats,
    decode_job,
    execute_read,
    scan_plotfile,
)
from repro.core.header import PlotfileHeader, build_header, template_from_header
from repro.core.adaptive import select_sz_block_size
from repro.core.stages import (
    DatasetPlan,
    EncodeJob,
    EncodeResult,
    FilterSpec,
    WritePlan,
    encode_job,
    pack_dataset,
    plan_write,
)

__all__ = [
    "AMRICConfig",
    "AMRICWriter",
    "AMRICReader",
    "PlotfileHandle",
    "PlotfileHeader",
    "build_header",
    "template_from_header",
    "WriteReport",
    "LevelFieldRecord",
    "select_sz_block_size",
    "WritePlan",
    "DatasetPlan",
    "FilterSpec",
    "EncodeJob",
    "EncodeResult",
    "plan_write",
    "pack_dataset",
    "encode_job",
    "ReadPlan",
    "ReadStats",
    "DecodeJob",
    "DecodeResult",
    "decode_job",
    "scan_plotfile",
    "execute_read",
]

"""Self-describing plotfile headers (the format layer of the read redesign).

A plotfile used to be readable only with the producing hierarchy in memory:
:class:`~repro.core.reader.AMRICReader` demanded a structural *template* to
know which boxes, ranks and unit blocks each stored chunk corresponds to.
This module serialises exactly that structure — boxes, refinement ratios,
distribution mapping, field names, preprocessing parameters, codec name and
options — into a versioned JSON header that travels inside the H5Lite
superblock (:attr:`~repro.h5lite.file.H5LiteFile.header`).  With the header
present, any consumer can rebuild the structural template from the file alone
(:func:`template_from_header`) and decode lazily or in full; without it the
old template-requiring read keeps working as an explicit fallback.

Versioning and compatibility rules (DESIGN.md §5):

* ``format`` must equal :data:`FORMAT_NAME` and ``version`` must be an
  integer ``<=`` :data:`FORMAT_VERSION`; a newer version raises
  :class:`ValueError` (never a silently garbled hierarchy).
* Unknown *extra* keys are ignored, so older readers tolerate additive
  evolution within a major version.
* Every structural field is validated on parse; a corrupt or truncated
  header raises :class:`ValueError` with a message naming the bad field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.amr.multifab import MultiFab

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "CHUNK_ALIGNMENT_RANK",
    "CHUNK_ALIGNMENT_STREAM",
    "CHUNK_ALIGNMENT_BOX_MAJOR",
    "LevelStructure",
    "PlotfileHeader",
    "build_header",
    "structure_fingerprint",
    "template_from_header",
]

FORMAT_NAME = "amric-plotfile"
FORMAT_VERSION = 1

#: one padded chunk per participating rank (the AMRIC field-major layout)
CHUNK_ALIGNMENT_RANK = "rank"
#: chunking decoupled from ranks; rank data concatenated back-to-back
CHUNK_ALIGNMENT_STREAM = "stream"
#: box-major field-interleaved level datasets (the AMReX-original baseline)
CHUNK_ALIGNMENT_BOX_MAJOR = "box_major"

_ALIGNMENTS = (CHUNK_ALIGNMENT_RANK, CHUNK_ALIGNMENT_STREAM,
               CHUNK_ALIGNMENT_BOX_MAJOR)


class _HeaderError(ValueError):
    """Raised for any malformed header (a ValueError so callers need one except)."""


def _require(obj: dict, key: str, kind, context: str):
    if key not in obj:
        raise _HeaderError(f"malformed plotfile header: {context} is missing {key!r}")
    value = obj[key]
    if kind is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _HeaderError(
                f"malformed plotfile header: {context}[{key!r}] must be a number, "
                f"got {type(value).__name__}")
        return float(value)
    if kind is int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise _HeaderError(
                f"malformed plotfile header: {context}[{key!r}] must be an int, "
                f"got {type(value).__name__}")
        return int(value)
    if not isinstance(value, kind):
        raise _HeaderError(
            f"malformed plotfile header: {context}[{key!r}] must be "
            f"{getattr(kind, '__name__', kind)}, got {type(value).__name__}")
    return value


def _intvect(value, context: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value or \
            not all(isinstance(v, int) and not isinstance(v, bool) for v in value):
        raise _HeaderError(
            f"malformed plotfile header: {context} must be a non-empty list of ints")
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class LevelStructure:
    """The stored structure of one AMR level: domain, boxes, distribution."""

    level: int
    domain_lo: Tuple[int, ...]
    domain_hi: Tuple[int, ...]
    box_los: Tuple[Tuple[int, ...], ...]
    box_his: Tuple[Tuple[int, ...], ...]
    rank_of_box: Tuple[int, ...]
    nranks: int

    @property
    def nboxes(self) -> int:
        return len(self.box_los)

    def domain(self) -> Box:
        return Box(self.domain_lo, self.domain_hi)

    def boxes(self) -> List[Box]:
        return [Box(lo, hi) for lo, hi in zip(self.box_los, self.box_his)]

    def to_json(self) -> dict:
        return {
            "level": self.level,
            "domain": [list(self.domain_lo), list(self.domain_hi)],
            "boxes": [[list(lo), list(hi)]
                      for lo, hi in zip(self.box_los, self.box_his)],
            "rank_of_box": list(self.rank_of_box),
            "nranks": self.nranks,
        }

    @staticmethod
    def from_json(obj: dict, index: int) -> "LevelStructure":
        ctx = f"levels[{index}]"
        if not isinstance(obj, dict):
            raise _HeaderError(f"malformed plotfile header: {ctx} must be an object")
        level = _require(obj, "level", int, ctx)
        domain = _require(obj, "domain", (list, tuple), ctx)
        if len(domain) != 2:
            raise _HeaderError(f"malformed plotfile header: {ctx}['domain'] must be [lo, hi]")
        boxes = _require(obj, "boxes", (list, tuple), ctx)
        if not boxes:
            raise _HeaderError(f"malformed plotfile header: {ctx} has no boxes")
        box_los, box_his = [], []
        for b, entry in enumerate(boxes):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise _HeaderError(
                    f"malformed plotfile header: {ctx}['boxes'][{b}] must be [lo, hi]")
            box_los.append(_intvect(entry[0], f"{ctx}.boxes[{b}].lo"))
            box_his.append(_intvect(entry[1], f"{ctx}.boxes[{b}].hi"))
        rank_of_box = _intvect(_require(obj, "rank_of_box", (list, tuple), ctx),
                               f"{ctx}.rank_of_box")
        nranks = _require(obj, "nranks", int, ctx)
        if len(rank_of_box) != len(box_los):
            raise _HeaderError(
                f"malformed plotfile header: {ctx} has {len(box_los)} boxes but "
                f"{len(rank_of_box)} rank assignments")
        if nranks < 1 or any(r < 0 or r >= nranks for r in rank_of_box):
            raise _HeaderError(
                f"malformed plotfile header: {ctx} rank assignments escape [0, {nranks})")
        return LevelStructure(
            level=level,
            domain_lo=_intvect(domain[0], f"{ctx}.domain.lo"),
            domain_hi=_intvect(domain[1], f"{ctx}.domain.hi"),
            box_los=tuple(box_los), box_his=tuple(box_his),
            rank_of_box=rank_of_box, nranks=nranks)


@dataclass(frozen=True)
class PlotfileHeader:
    """Everything needed to open a plotfile without the producing simulation."""

    version: int
    method: str                               #: producing writer ("amric", "nocomp", ...)
    codec: str                                #: codec registry name ("none" when raw)
    error_bound: float
    error_bound_mode: str
    unit_block_size: int
    remove_redundancy: bool
    chunk_alignment: str                      #: one of the CHUNK_ALIGNMENT_* constants
    components: Tuple[str, ...]
    ref_ratios: Tuple[int, ...]
    time: float
    step: int
    levels: Tuple[LevelStructure, ...]
    codec_options: Dict[str, object] = field(default_factory=dict)

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": self.version,
            "method": self.method,
            "codec": self.codec,
            "error_bound": self.error_bound,
            "error_bound_mode": self.error_bound_mode,
            "unit_block_size": self.unit_block_size,
            "remove_redundancy": self.remove_redundancy,
            "chunk_alignment": self.chunk_alignment,
            "components": list(self.components),
            "ref_ratios": list(self.ref_ratios),
            "time": self.time,
            "step": self.step,
            "levels": [lvl.to_json() for lvl in self.levels],
            "codec_options": dict(self.codec_options),
        }

    @staticmethod
    def from_json(obj) -> "PlotfileHeader":
        if not isinstance(obj, dict):
            raise _HeaderError(
                f"malformed plotfile header: expected an object, got {type(obj).__name__}")
        fmt = obj.get("format")
        if fmt != FORMAT_NAME:
            raise _HeaderError(
                f"malformed plotfile header: format is {fmt!r}, expected {FORMAT_NAME!r}")
        version = _require(obj, "version", int, "header")
        if version < 1 or version > FORMAT_VERSION:
            raise _HeaderError(
                f"plotfile header version {version} is not supported by this reader "
                f"(supports 1..{FORMAT_VERSION}); upgrade repro to read this file")
        components = _require(obj, "components", (list, tuple), "header")
        if not components or not all(isinstance(c, str) for c in components):
            raise _HeaderError(
                "malformed plotfile header: components must be a non-empty list of names")
        levels_json = _require(obj, "levels", (list, tuple), "header")
        if not levels_json:
            raise _HeaderError("malformed plotfile header: no levels recorded")
        levels = tuple(LevelStructure.from_json(lvl, i)
                       for i, lvl in enumerate(levels_json))
        ref_ratios_json = _require(obj, "ref_ratios", (list, tuple), "header")
        ref_ratios = tuple(int(r) for r in ref_ratios_json) if ref_ratios_json else ()
        if len(ref_ratios) != len(levels) - 1:
            raise _HeaderError(
                f"malformed plotfile header: {len(levels)} levels need "
                f"{len(levels) - 1} ref_ratios, got {len(ref_ratios)}")
        chunk_alignment = _require(obj, "chunk_alignment", str, "header")
        if chunk_alignment not in _ALIGNMENTS:
            raise _HeaderError(
                f"malformed plotfile header: unknown chunk_alignment "
                f"{chunk_alignment!r}; expected one of {_ALIGNMENTS}")
        unit_block_size = _require(obj, "unit_block_size", int, "header")
        if unit_block_size < 1:
            raise _HeaderError("malformed plotfile header: unit_block_size must be >= 1")
        codec_options = obj.get("codec_options", {})
        if not isinstance(codec_options, dict):
            raise _HeaderError("malformed plotfile header: codec_options must be an object")
        return PlotfileHeader(
            version=version,
            method=_require(obj, "method", str, "header"),
            codec=_require(obj, "codec", str, "header"),
            error_bound=_require(obj, "error_bound", float, "header"),
            error_bound_mode=_require(obj, "error_bound_mode", str, "header"),
            unit_block_size=unit_block_size,
            remove_redundancy=bool(_require(obj, "remove_redundancy", bool, "header")),
            chunk_alignment=chunk_alignment,
            components=tuple(components),
            ref_ratios=ref_ratios,
            time=_require(obj, "time", float, "header"),
            step=_require(obj, "step", int, "header"),
            levels=levels,
            codec_options=dict(codec_options))


# ----------------------------------------------------------------------
# building / reconstructing
# ----------------------------------------------------------------------
def _level_structure(level: AmrLevel) -> LevelStructure:
    dm = level.multifab.distribution
    return LevelStructure(
        level=int(level.level),
        domain_lo=tuple(int(v) for v in level.domain.lo),
        domain_hi=tuple(int(v) for v in level.domain.hi),
        box_los=tuple(tuple(int(v) for v in b.lo) for b in level.boxarray),
        box_his=tuple(tuple(int(v) for v in b.hi) for b in level.boxarray),
        rank_of_box=tuple(int(r) for r in dm.rank_of_box),
        nranks=int(dm.nranks))


def build_header(hierarchy: AmrHierarchy, *, method: str, codec: str,
                 error_bound: float, error_bound_mode: str = "rel",
                 unit_block_size: int = 1, remove_redundancy: bool = False,
                 chunk_alignment: str = CHUNK_ALIGNMENT_RANK,
                 codec_options: Optional[Dict[str, object]] = None) -> PlotfileHeader:
    """Serialise one hierarchy's structure + codec configuration into a header."""
    if chunk_alignment not in _ALIGNMENTS:
        raise ValueError(
            f"chunk_alignment must be one of {_ALIGNMENTS}, got {chunk_alignment!r}")
    return PlotfileHeader(
        version=FORMAT_VERSION,
        method=str(method), codec=str(codec),
        error_bound=float(error_bound), error_bound_mode=str(error_bound_mode),
        unit_block_size=int(unit_block_size),
        remove_redundancy=bool(remove_redundancy),
        chunk_alignment=chunk_alignment,
        components=tuple(hierarchy.component_names),
        ref_ratios=tuple(hierarchy.ref_ratios),
        time=float(hierarchy.time), step=int(hierarchy.step),
        levels=tuple(_level_structure(lvl) for lvl in hierarchy.levels),
        codec_options=dict(codec_options or {}))


def header_from_config(hierarchy: AmrHierarchy, config, method: str = "amric"
                       ) -> PlotfileHeader:
    """The AMRIC writer's header: structure + the config fields decode depends on."""
    return build_header(
        hierarchy, method=method, codec=config.compressor,
        error_bound=config.error_bound, error_bound_mode=config.error_bound_mode,
        unit_block_size=config.unit_block_size,
        remove_redundancy=config.remove_redundancy,
        chunk_alignment=CHUNK_ALIGNMENT_RANK,
        codec_options={
            "use_sle": config.use_sle,
            "adaptive_block_size": config.adaptive_block_size,
            "sz_block_size": config.sz_block_size,
            "interp_arrangement": config.interp_arrangement,
            "interp_anchor_stride": config.interp_anchor_stride,
            "modify_filter": config.modify_filter,
        })


def structure_fingerprint(header: PlotfileHeader) -> str:
    """A stable digest of everything that determines a plotfile's layout.

    Two plotfiles share a fingerprint exactly when their boxes, refinement
    ratios, distribution mappings, components and preprocessing parameters
    coincide — i.e. when their chunked element streams are laid out
    identically.  The series subsystem compares consecutive steps'
    fingerprints to detect regrids (a changed fingerprint forces a keyframe;
    delta streams would otherwise misalign).
    """
    import hashlib
    import json

    doc = {
        "levels": [lvl.to_json() for lvl in header.levels],
        "ref_ratios": list(header.ref_ratios),
        "components": list(header.components),
        "unit_block_size": header.unit_block_size,
        "remove_redundancy": header.remove_redundancy,
        "chunk_alignment": header.chunk_alignment,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def template_from_header(header: PlotfileHeader) -> AmrHierarchy:
    """Rebuild a zero-filled hierarchy with the stored structure.

    The result is what :class:`~repro.core.reader.AMRICReader` used to demand
    as its ``template`` argument — same boxes, same distribution, same
    refinement ratios — reconstructed from the file alone.  Structural
    inconsistencies (boxes escaping domains, broken nesting chains) surface as
    :class:`ValueError` from the AMR constructors, never as a silently wrong
    hierarchy.
    """
    levels: List[AmrLevel] = []
    for lvl in header.levels:
        ba = BoxArray(lvl.boxes())
        dm = DistributionMapping(list(lvl.rank_of_box), lvl.nranks)
        mf = MultiFab(ba, header.components, dm)
        levels.append(AmrLevel(level=lvl.level, domain=lvl.domain(),
                               boxarray=ba, multifab=mf))
    return AmrHierarchy(levels, header.ref_ratios,
                        time=header.time, step=header.step)

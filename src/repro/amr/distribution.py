"""Box → MPI rank assignment (AMReX ``DistributionMapping``).

AMRIC's HDF5-filter modification (§3.3, Solution 2) depends on how much data
each rank owns: the global chunk size is the maximum per-rank data size, and
the filter receives each rank's *actual* size.  The distribution mapping is
therefore part of the substrate, with the two strategies AMReX commonly uses:
round-robin and knapsack (size-balanced) assignment.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

__all__ = ["DistributionMapping"]


class DistributionMapping:
    """Assignment of box indices to MPI ranks."""

    def __init__(self, rank_of_box: Sequence[int], nranks: int):
        self.rank_of_box: List[int] = [int(r) for r in rank_of_box]
        self.nranks = int(nranks)
        if self.nranks < 1:
            raise ValueError("nranks must be >= 1")
        if any(r < 0 or r >= self.nranks for r in self.rank_of_box):
            raise ValueError("rank indices out of range")

    def __len__(self) -> int:
        return len(self.rank_of_box)

    def __getitem__(self, box_index: int) -> int:
        return self.rank_of_box[box_index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributionMapping):
            return NotImplemented
        return self.rank_of_box == other.rank_of_box and self.nranks == other.nranks

    def boxes_on_rank(self, rank: int) -> List[int]:
        """Indices of boxes owned by ``rank`` (in box order)."""
        if rank < 0 or rank >= self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return [i for i, r in enumerate(self.rank_of_box) if r == rank]

    def counts_per_rank(self) -> List[int]:
        counts = [0] * self.nranks
        for r in self.rank_of_box:
            counts[r] += 1
        return counts

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    @staticmethod
    def round_robin(nboxes: int, nranks: int) -> "DistributionMapping":
        """Box ``i`` goes to rank ``i % nranks``."""
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        return DistributionMapping([i % nranks for i in range(nboxes)], nranks)

    @staticmethod
    def knapsack(box_sizes: Sequence[int], nranks: int) -> "DistributionMapping":
        """Greedy size-balancing: largest box to the currently lightest rank.

        This mirrors AMReX's knapsack strategy closely enough to produce the
        (im)balance characteristics the paper's chunk-size discussion relies on.
        """
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        order = sorted(range(len(box_sizes)), key=lambda i: box_sizes[i], reverse=True)
        heap = [(0, r) for r in range(nranks)]  # (load, rank)
        heapq.heapify(heap)
        rank_of_box = [0] * len(box_sizes)
        for i in order:
            load, rank = heapq.heappop(heap)
            rank_of_box[i] = rank
            heapq.heappush(heap, (load + int(box_sizes[i]), rank))
        return DistributionMapping(rank_of_box, nranks)

    def load_per_rank(self, box_sizes: Sequence[int]) -> List[int]:
        """Total size owned by each rank."""
        if len(box_sizes) != len(self.rank_of_box):
            raise ValueError("box_sizes length mismatch")
        loads = [0] * self.nranks
        for size, rank in zip(box_sizes, self.rank_of_box):
            loads[rank] += int(size)
        return loads

    def imbalance(self, box_sizes: Sequence[int]) -> float:
        """max/mean rank load; 1.0 means perfectly balanced."""
        loads = self.load_per_rank(box_sizes)
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistributionMapping(nboxes={len(self)}, nranks={self.nranks})"

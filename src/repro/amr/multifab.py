"""Per-box field data: ``FArrayBox`` and ``MultiFab`` (AMReX semantics).

An :class:`FArrayBox` holds the floating point data of *one* box for *all*
components (fields) of a level — AMReX stores the components of a box
contiguously, which is exactly the data-layout constraint §3.3 of the paper
works around.  A :class:`MultiFab` is the per-level collection of fabs plus
the box→rank distribution mapping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping

__all__ = ["FArrayBox", "MultiFab"]


class FArrayBox:
    """Multi-component floating point data on a single box.

    Data is stored as an array of shape ``(ncomp,) + box.shape`` in C order,
    i.e. each component occupies a contiguous slab — matching AMReX's
    component-major fab storage.
    """

    def __init__(self, box: Box, ncomp: int = 1, dtype=np.float64,
                 data: np.ndarray | None = None):
        if box.is_empty():
            raise ValueError("cannot allocate an FArrayBox on an empty box")
        self.box = box
        self.ncomp = int(ncomp)
        if self.ncomp < 1:
            raise ValueError("ncomp must be >= 1")
        expected = (self.ncomp,) + box.shape
        if data is None:
            self.data = np.zeros(expected, dtype=dtype)
        else:
            data = np.asarray(data, dtype=dtype)
            if data.shape != expected:
                raise ValueError(f"data shape {data.shape} != expected {expected}")
            self.data = data

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.box.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def component(self, comp: int) -> np.ndarray:
        """View of component ``comp`` (shape = box.shape)."""
        return self.data[comp]

    def set_component(self, comp: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != self.box.shape:
            raise ValueError(f"component shape {values.shape} != box shape {self.box.shape}")
        self.data[comp] = values

    def copy(self) -> "FArrayBox":
        return FArrayBox(self.box, self.ncomp, dtype=self.dtype, data=self.data.copy())

    def linearize(self) -> np.ndarray:
        """Box-major, component-contiguous 1D buffer (the AMReX plotfile order)."""
        return self.data.reshape(-1)

    def min(self, comp: int | None = None) -> float:
        return float(self.data.min() if comp is None else self.data[comp].min())

    def max(self, comp: int | None = None) -> float:
        return float(self.data.max() if comp is None else self.data[comp].max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FArrayBox(box={self.box}, ncomp={self.ncomp}, dtype={self.dtype})"


class MultiFab:
    """All fabs of one AMR level, with component names and a rank mapping."""

    def __init__(self, boxarray: BoxArray, component_names: Sequence[str],
                 distribution: DistributionMapping | None = None,
                 dtype=np.float64):
        if len(component_names) == 0:
            raise ValueError("MultiFab needs at least one component")
        if len(set(component_names)) != len(component_names):
            raise ValueError("component names must be unique")
        self.boxarray = boxarray
        self.component_names: Tuple[str, ...] = tuple(component_names)
        self.dtype = np.dtype(dtype)
        self.distribution = distribution or DistributionMapping.round_robin(len(boxarray), nranks=1)
        if len(self.distribution) != len(boxarray):
            raise ValueError("distribution mapping length must match number of boxes")
        self.fabs: List[FArrayBox] = [
            FArrayBox(box, ncomp=len(self.component_names), dtype=dtype) for box in boxarray
        ]

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def ncomp(self) -> int:
        return len(self.component_names)

    @property
    def nboxes(self) -> int:
        return len(self.boxarray)

    def __len__(self) -> int:
        return self.nboxes

    def __iter__(self) -> Iterator[FArrayBox]:
        return iter(self.fabs)

    def __getitem__(self, index: int) -> FArrayBox:
        return self.fabs[index]

    def component_index(self, name: str) -> int:
        try:
            return self.component_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown component {name!r}; have {self.component_names}") from exc

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def fill(self, name: str, func) -> None:
        """Fill component ``name`` on every box by evaluating ``func``.

        ``func`` receives the cell-index coordinate arrays ``(i, j, k, ...)``
        (each of shape = box.shape) and must return an array of that shape.
        """
        comp = self.component_index(name)
        for fab in self.fabs:
            coords = np.meshgrid(
                *[np.arange(l, h + 1) for l, h in zip(fab.box.lo, fab.box.hi)],
                indexing="ij",
            )
            fab.set_component(comp, func(*coords))

    def set_from_global(self, name: str, global_array: np.ndarray,
                        domain: Box) -> None:
        """Copy the portion of a domain-covering array into every box."""
        comp = self.component_index(name)
        if global_array.shape != domain.shape:
            raise ValueError(
                f"global array shape {global_array.shape} != domain shape {domain.shape}")
        for fab in self.fabs:
            overlap = fab.box.intersection(domain)
            if overlap != fab.box:
                raise ValueError(f"box {fab.box} is not contained in the domain {domain}")
            fab.set_component(comp, global_array[fab.box.slices(origin=domain.lo)])

    def to_global(self, name: str, domain: Box, fill_value: float = 0.0) -> np.ndarray:
        """Assemble component ``name`` onto a dense array covering ``domain``."""
        comp = self.component_index(name)
        out = np.full(domain.shape, fill_value, dtype=self.dtype)
        for fab in self.fabs:
            overlap = fab.box.intersection(domain)
            if overlap.is_empty():
                continue
            out[overlap.slices(origin=domain.lo)] = \
                fab.component(comp)[overlap.slices(origin=fab.box.lo)]
        return out

    def boxes_on_rank(self, rank: int) -> List[int]:
        return self.distribution.boxes_on_rank(rank)

    def rank_nbytes(self, rank: int) -> int:
        return sum(self.fabs[i].nbytes for i in self.boxes_on_rank(rank))

    @property
    def nbytes(self) -> int:
        return sum(fab.nbytes for fab in self.fabs)

    def min(self, name: str) -> float:
        comp = self.component_index(name)
        return min(float(fab.component(comp).min()) for fab in self.fabs)

    def max(self, name: str) -> float:
        comp = self.component_index(name)
        return max(float(fab.component(comp).max()) for fab in self.fabs)

    def value_range(self, name: str) -> float:
        return self.max(name) - self.min(name)

    def copy(self) -> "MultiFab":
        out = MultiFab(self.boxarray, self.component_names, self.distribution, dtype=self.dtype)
        for dst, src in zip(out.fabs, self.fabs):
            dst.data[...] = src.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MultiFab(nboxes={self.nboxes}, ncomp={self.ncomp}, "
                f"components={self.component_names})")

"""Collections of boxes tiling a single AMR level (AMReX ``BoxArray``).

A :class:`BoxArray` stores the rectangular patches of one refinement level.
The two operations AMRIC leans on are

* :meth:`BoxArray.intersections` — which parts of a box overlap boxes of the
  array (used to find coarse data covered by the next finer level, §3.1 of the
  paper), and
* :meth:`BoxArray.complement_in` — the uncovered remainder of a box, i.e. the
  data that must actually be compressed after redundancy removal.

AMReX accelerates these queries with a hashed spatial index; here a coarse
bucket grid provides the same asymptotics for the problem sizes a Python
reproduction runs at.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.amr.box import Box, bounding_box

__all__ = ["BoxArray"]


class BoxArray:
    """An ordered collection of (usually disjoint) boxes on one level."""

    def __init__(self, boxes: Iterable[Box]):
        self._boxes: List[Box] = [b for b in boxes if not b.is_empty()]
        if self._boxes:
            ndim = self._boxes[0].ndim
            if any(b.ndim != ndim for b in self._boxes):
                raise ValueError("all boxes in a BoxArray must share a dimension")

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __getitem__(self, index: int) -> Box:
        return self._boxes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxArray):
            return NotImplemented
        return self._boxes == other._boxes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxArray(n={len(self)}, cells={self.num_cells})"

    @property
    def boxes(self) -> Tuple[Box, ...]:
        return tuple(self._boxes)

    @property
    def ndim(self) -> int:
        if not self._boxes:
            raise ValueError("empty BoxArray has no dimensionality")
        return self._boxes[0].ndim

    @property
    def num_cells(self) -> int:
        """Total number of cells covered (boxes assumed disjoint)."""
        return sum(b.size for b in self._boxes)

    def minimal_box(self) -> Box:
        """Smallest box enclosing the whole array."""
        return bounding_box(self._boxes)

    def is_disjoint(self) -> bool:
        """True when no two boxes overlap (the AMReX invariant per level)."""
        for i, a in enumerate(self._boxes):
            for b in self._boxes[i + 1:]:
                if a.intersects(b):
                    return False
        return True

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def refine(self, ratio: Sequence[int] | int) -> "BoxArray":
        return BoxArray([b.refine(ratio) for b in self._boxes])

    def coarsen(self, ratio: Sequence[int] | int) -> "BoxArray":
        return BoxArray([b.coarsen(ratio) for b in self._boxes])

    def grow(self, n: Sequence[int] | int) -> "BoxArray":
        return BoxArray([b.grow(n) for b in self._boxes])

    def max_size(self, max_size: Sequence[int] | int) -> "BoxArray":
        """Chop every box so no side exceeds ``max_size`` (AMReX ``maxSize``)."""
        out: List[Box] = []
        for b in self._boxes:
            out.extend(b.split(max_size))
        return BoxArray(out)

    # ------------------------------------------------------------------
    # geometric queries
    # ------------------------------------------------------------------
    def intersections(self, box: Box) -> List[Tuple[int, Box]]:
        """All non-empty overlaps of ``box`` with boxes in the array.

        Returns ``(index, overlap_box)`` pairs; AMReX's ``BoxArray::intersections``.
        """
        out: List[Tuple[int, Box]] = []
        for i, b in enumerate(self._boxes):
            overlap = box.intersection(b)
            if not overlap.is_empty():
                out.append((i, overlap))
        return out

    def intersects(self, box: Box) -> bool:
        return any(box.intersects(b) for b in self._boxes)

    def contains_box(self, box: Box) -> bool:
        """True when every cell of ``box`` is covered by the array."""
        uncovered = self.complement_in(box)
        return len(uncovered) == 0

    def complement_in(self, box: Box) -> List[Box]:
        """Disjoint boxes covering the part of ``box`` *not* covered by the array.

        This is the redundancy-removal primitive: with ``self`` the next finer
        level's BoxArray coarsened to this level, the complement of a coarse
        box is exactly the non-redundant coarse data.
        """
        remaining: List[Box] = [box] if not box.is_empty() else []
        for b in self._boxes:
            next_remaining: List[Box] = []
            for piece in remaining:
                next_remaining.extend(piece.difference(b))
            remaining = next_remaining
            if not remaining:
                break
        return remaining

    def coverage_mask(self, box: Box) -> np.ndarray:
        """Boolean mask over ``box`` marking cells covered by the array."""
        mask = np.zeros(box.shape, dtype=bool)
        for _, overlap in self.intersections(box):
            mask[overlap.slices(origin=box.lo)] = True
        return mask

    def covered_fraction(self, domain: Box) -> float:
        """Fraction of ``domain`` covered by this array (the paper's "density")."""
        if domain.size == 0:
            return 0.0
        covered = 0
        for _, overlap in self.intersections(domain):
            covered += overlap.size
        return covered / domain.size

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def decompose(domain: Box, max_grid_size: Sequence[int] | int) -> "BoxArray":
        """Tile ``domain`` into boxes of at most ``max_grid_size`` per side.

        Mirrors AMReX's domain decomposition used to build level 0.
        """
        return BoxArray([domain]).max_size(max_grid_size)

    @staticmethod
    def from_mask(mask: np.ndarray, origin: Sequence[int] | None = None,
                  max_grid_size: int = 32) -> "BoxArray":
        """Cover the True cells of ``mask`` with boxes (greedy box growing).

        Used by the regridder to convert tagged cells into a BoxArray; all True
        cells are covered, some False cells may be included (AMR grids always
        over-cover tags).
        """
        from repro.amr.regrid import cluster_tags  # local import to avoid a cycle

        return cluster_tags(mask, origin=origin, max_grid_size=max_grid_size)

"""Axis-aligned boxes in cell-index space (AMReX ``Box`` semantics).

A :class:`Box` is a closed integer rectangle ``[lo, hi]`` (both ends
inclusive), matching the AMReX convention.  Boxes support the small algebra
AMRIC's pre-processing needs: intersection, containment, refinement and
coarsening by a per-level ratio, shifting, growing and slicing an ndarray that
covers an enclosing box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Box"]

IntVect = Tuple[int, ...]


def _as_intvect(value: Sequence[int] | int, dim: int | None = None) -> IntVect:
    """Normalise ``value`` into a tuple of python ints.

    Scalars are broadcast to ``dim`` entries when ``dim`` is given.
    """
    if np.isscalar(value):
        if dim is None:
            raise ValueError("scalar IntVect requires an explicit dimension")
        return tuple(int(value) for _ in range(dim))
    vect = tuple(int(v) for v in value)  # type: ignore[union-attr]
    if dim is not None and len(vect) != dim:
        raise ValueError(f"expected {dim}-dimensional IntVect, got {vect}")
    return vect


@dataclass(frozen=True)
class Box:
    """A closed integer box ``[lo, hi]`` in cell-index space.

    Parameters
    ----------
    lo, hi:
        Inclusive lower / upper cell indices.  ``hi`` must be >= ``lo`` in
        every dimension (use :meth:`Box.empty` for an explicitly empty box).
    """

    lo: IntVect
    hi: IntVect

    def __post_init__(self) -> None:
        lo = _as_intvect(self.lo)
        hi = _as_intvect(self.hi)
        if len(lo) != len(hi):
            raise ValueError(f"lo {lo} and hi {hi} have mismatched dimensions")
        if len(lo) == 0:
            raise ValueError("zero-dimensional boxes are not supported")
        if any(h < l - 1 for l, h in zip(lo, hi)):
            raise ValueError(f"invalid box: lo={lo} hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_shape(shape: Sequence[int], lo: Sequence[int] | None = None) -> "Box":
        """Build the box covering ``shape`` cells starting at ``lo`` (default 0)."""
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValueError(f"shape must be positive, got {shape}")
        if lo is None:
            lo = (0,) * len(shape)
        lo = _as_intvect(lo, len(shape))
        hi = tuple(l + s - 1 for l, s in zip(lo, shape))
        return Box(lo, hi)

    @staticmethod
    def empty(ndim: int) -> "Box":
        """An explicitly empty box (hi = lo - 1)."""
        return Box((0,) * ndim, (-1,) * ndim)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> IntVect:
        return tuple(max(h - l + 1, 0) for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Number of cells in the box."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    def is_empty(self) -> bool:
        return any(h < l for l, h in zip(self.lo, self.hi))

    def contains_point(self, point: Sequence[int]) -> bool:
        point = _as_intvect(point, self.ndim)
        return all(l <= p <= h for l, p, h in zip(self.lo, point, self.hi))

    def contains(self, other: "Box") -> bool:
        """True if ``other`` lies entirely inside this box."""
        if other.is_empty():
            return True
        return all(sl <= ol and oh <= sh
                   for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi))

    def intersects(self, other: "Box") -> bool:
        return not self.intersection(other).is_empty()

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def intersection(self, other: "Box") -> "Box":
        """The overlap of two boxes (may be empty)."""
        if self.ndim != other.ndim:
            raise ValueError("cannot intersect boxes of different dimensions")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h < l for l, h in zip(lo, hi)):
            return Box.empty(self.ndim)
        return Box(lo, hi)

    def bounding_union(self, other: "Box") -> "Box":
        """Smallest box containing both boxes."""
        if other.is_empty():
            return self
        if self.is_empty():
            return other
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def shift(self, offset: Sequence[int] | int) -> "Box":
        offset = _as_intvect(offset, self.ndim)
        return Box(tuple(l + o for l, o in zip(self.lo, offset)),
                   tuple(h + o for h, o in zip(self.hi, offset)))

    def grow(self, n: Sequence[int] | int) -> "Box":
        n = _as_intvect(n, self.ndim)
        return Box(tuple(l - g for l, g in zip(self.lo, n)),
                   tuple(h + g for h, g in zip(self.hi, n)))

    def refine(self, ratio: Sequence[int] | int) -> "Box":
        """Refine to the next finer level (AMReX ``Box::refine``)."""
        ratio = _as_intvect(ratio, self.ndim)
        if any(r < 1 for r in ratio):
            raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
        lo = tuple(l * r for l, r in zip(self.lo, ratio))
        hi = tuple((h + 1) * r - 1 for h, r in zip(self.hi, ratio))
        return Box(lo, hi)

    def coarsen(self, ratio: Sequence[int] | int) -> "Box":
        """Coarsen to the next coarser level (floor division, AMReX semantics)."""
        ratio = _as_intvect(ratio, self.ndim)
        if any(r < 1 for r in ratio):
            raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
        lo = tuple(int(np.floor(l / r)) for l, r in zip(self.lo, ratio))
        hi = tuple(int(np.floor(h / r)) for h, r in zip(self.hi, ratio))
        return Box(lo, hi)

    def difference(self, other: "Box") -> list["Box"]:
        """This box minus ``other``, as a list of disjoint boxes.

        The decomposition sweeps one dimension at a time, producing at most
        ``2 * ndim`` boxes.  Cells in the result exactly cover
        ``self \\ other``.
        """
        overlap = self.intersection(other)
        if overlap.is_empty():
            return [] if self.is_empty() else [self]
        if overlap == self:
            return []
        pieces: list[Box] = []
        remaining = self
        for axis in range(self.ndim):
            lo = list(remaining.lo)
            hi = list(remaining.hi)
            # part below the overlap along `axis`
            if remaining.lo[axis] < overlap.lo[axis]:
                below_hi = list(hi)
                below_hi[axis] = overlap.lo[axis] - 1
                pieces.append(Box(tuple(lo), tuple(below_hi)))
            # part above the overlap along `axis`
            if remaining.hi[axis] > overlap.hi[axis]:
                above_lo = list(lo)
                above_lo[axis] = overlap.hi[axis] + 1
                pieces.append(Box(tuple(above_lo), tuple(hi)))
            # shrink remaining to the overlap extent along `axis`
            lo[axis] = overlap.lo[axis]
            hi[axis] = overlap.hi[axis]
            remaining = Box(tuple(lo), tuple(hi))
        return pieces

    # ------------------------------------------------------------------
    # ndarray helpers
    # ------------------------------------------------------------------
    def slices(self, origin: Sequence[int] | None = None) -> Tuple[slice, ...]:
        """Slices selecting this box inside an array whose [0,..] cell is ``origin``.

        ``origin`` defaults to the box's own ``lo`` of the *enclosing* array,
        i.e. index 0 of the target array corresponds to cell ``origin``.
        """
        if origin is None:
            origin = (0,) * self.ndim
        origin = _as_intvect(origin, self.ndim)
        return tuple(slice(l - o, h - o + 1) for l, h, o in zip(self.lo, self.hi, origin))

    def cells(self) -> Iterator[IntVect]:
        """Iterate over every cell index in the box (small boxes only)."""
        if self.is_empty():
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        grids = np.meshgrid(*ranges, indexing="ij")
        stacked = np.stack([g.ravel() for g in grids], axis=1)
        for row in stacked:
            yield tuple(int(v) for v in row)

    def split(self, max_size: Sequence[int] | int) -> list["Box"]:
        """Chop the box into pieces no larger than ``max_size`` along each axis."""
        if self.is_empty():
            return []
        max_size = _as_intvect(max_size, self.ndim)
        if any(m < 1 for m in max_size):
            raise ValueError("max_size must be >= 1")
        per_axis: list[list[tuple[int, int]]] = []
        for l, h, m in zip(self.lo, self.hi, max_size):
            segs = []
            start = l
            while start <= h:
                end = min(start + m - 1, h)
                segs.append((start, end))
                start = end + 1
            per_axis.append(segs)
        out: list[Box] = []
        def recurse(axis: int, lo: list[int], hi: list[int]) -> None:
            if axis == self.ndim:
                out.append(Box(tuple(lo), tuple(hi)))
                return
            for s, e in per_axis[axis]:
                recurse(axis + 1, lo + [s], hi + [e])
        recurse(0, [], [])
        return out

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(lo={self.lo}, hi={self.hi})"

    def __iter__(self) -> Iterator[IntVect]:
        return self.cells()


def bounding_box(boxes: Iterable[Box]) -> Box:
    """Smallest box enclosing every box in ``boxes``."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("bounding_box of an empty collection")
    out = boxes[0]
    for b in boxes[1:]:
        out = out.bounding_union(b)
    return out

"""Uniform-resolution reconstruction of an AMR hierarchy (Figure 3 semantics).

Post-analysis and visualisation usually want a single uniform grid: coarse
data is up-sampled to the finest resolution and overwritten wherever finer
data exists — the redundant coarse cells underneath finer levels are never
used, which is the justification for discarding them before compression.

The same routine is used to compare an original and a decompressed hierarchy
on equal footing (Table 3 / Figure 10 style evaluations).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import AmrHierarchy

__all__ = ["upsample_array", "flatten_to_uniform", "covered_mask"]


def upsample_array(array: np.ndarray, ratio: int) -> np.ndarray:
    """Piecewise-constant upsampling by an integer ratio along every axis."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    out = array
    for axis in range(array.ndim):
        out = np.repeat(out, ratio, axis=axis)
    return out


def covered_mask(hierarchy: AmrHierarchy, level: int) -> np.ndarray:
    """Boolean mask over level ``level``'s domain: True where finer data covers it."""
    lvl = hierarchy[level]
    mask = np.zeros(lvl.domain.shape, dtype=bool)
    if level >= hierarchy.nlevels - 1:
        return mask
    ratio = hierarchy.ref_ratios[level]
    fine_coarsened = hierarchy[level + 1].boxarray.coarsen(ratio)
    for box in fine_coarsened:
        overlap = box.intersection(lvl.domain)
        if not overlap.is_empty():
            mask[overlap.slices(origin=lvl.domain.lo)] = True
    return mask


def flatten_to_uniform(hierarchy: AmrHierarchy, name: str,
                       fill_value: float = 0.0) -> np.ndarray:
    """Combine every level of one component onto the finest uniform grid.

    Coarse data is up-sampled (piecewise constant) to the finest resolution;
    finer levels overwrite coarser data wherever they exist.  The redundant
    coarse points (e.g. "0D" in Figure 3) therefore never reach the output.
    """
    finest = hierarchy.nlevels - 1
    fine_domain = hierarchy[finest].domain
    out = np.full(fine_domain.shape, fill_value, dtype=np.float64)

    for level, lvl in enumerate(hierarchy.levels):
        ratio_to_finest = hierarchy.ratio_between(level, finest)
        comp = lvl.multifab.component_index(name)
        for fab in lvl.multifab:
            data = fab.component(comp)
            up = upsample_array(data, ratio_to_finest)
            fine_box = fab.box.refine(ratio_to_finest) if ratio_to_finest > 1 else fab.box
            overlap = fine_box.intersection(fine_domain)
            if overlap.is_empty():
                continue
            out[overlap.slices(origin=fine_domain.lo)] = \
                up[overlap.slices(origin=fine_box.lo)]
    return out


def flatten_all_components(hierarchy: AmrHierarchy,
                           fill_value: float = 0.0) -> Dict[str, np.ndarray]:
    """Flatten every component of the hierarchy onto the finest uniform grid."""
    return {name: flatten_to_uniform(hierarchy, name, fill_value=fill_value)
            for name in hierarchy.component_names}

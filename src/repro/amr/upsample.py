"""Uniform-resolution reconstruction of an AMR hierarchy (Figure 3 semantics).

Post-analysis and visualisation usually want a single uniform grid: coarse
data is up-sampled to the finest resolution and overwritten wherever finer
data exists — the redundant coarse cells underneath finer levels are never
used, which is the justification for discarding them before compression.

The same routine is used to compare an original and a decompressed hierarchy
on equal footing (Table 3 / Figure 10 style evaluations).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import AmrHierarchy

__all__ = ["upsample_array", "average_down", "fill_covered_from_finer",
           "flatten_to_uniform", "covered_mask"]


def upsample_array(array: np.ndarray, ratio: int) -> np.ndarray:
    """Piecewise-constant upsampling by an integer ratio along every axis."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    out = array
    for axis in range(array.ndim):
        out = np.repeat(out, ratio, axis=axis)
    return out


def average_down(array: np.ndarray, ratio: int) -> np.ndarray:
    """Conservative (block-mean) coarsening by an integer ratio on every axis.

    The inverse of :func:`upsample_array` in the conservative sense: each
    coarse cell is the mean of its ``ratio**ndim`` fine children — exactly the
    value a post-analysis average-down would produce (Figure 3 of the paper).
    This is the one canonical stencil; the write and read paths both use it so
    a future stencil change cannot silently diverge between them.
    """
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    array = np.asarray(array)
    if ratio == 1:
        return array.copy()
    if any(s % ratio for s in array.shape):
        raise ValueError(
            f"array shape {array.shape} is not divisible by ratio {ratio}")
    split_shape = []
    for s in array.shape:
        split_shape.extend((s // ratio, ratio))
    mean_axes = tuple(range(1, 2 * array.ndim, 2))
    return array.reshape(split_shape).mean(axis=mean_axes)


def fill_covered_from_finer(hierarchy: AmrHierarchy) -> None:
    """Refill covered coarse cells by averaging the next finer level down.

    Walks the hierarchy fine → coarse so values cascade through intermediate
    levels; each fine fab is conservatively averaged (:func:`average_down`)
    and written into every coarse fab it overlaps.  This is the read-side
    counterpart of the pre-compression redundancy removal (§3.1): the dropped
    coarse cells are restored to the values post-analysis would use anyway.
    """
    for level_index in range(hierarchy.nlevels - 2, -1, -1):
        coarse = hierarchy[level_index]
        fine = hierarchy[level_index + 1]
        ratio = hierarchy.ref_ratios[level_index]
        for comp in range(hierarchy.ncomp):
            for fine_fab in fine.multifab:
                coarse_box = fine_fab.box.coarsen(ratio)
                averaged = average_down(fine_fab.component(comp), ratio)
                for coarse_fab in coarse.multifab:
                    overlap = coarse_fab.box.intersection(coarse_box)
                    if overlap.is_empty():
                        continue
                    coarse_fab.component(comp)[overlap.slices(origin=coarse_fab.box.lo)] = \
                        averaged[overlap.slices(origin=coarse_box.lo)]


def covered_mask(hierarchy: AmrHierarchy, level: int) -> np.ndarray:
    """Boolean mask over level ``level``'s domain: True where finer data covers it."""
    lvl = hierarchy[level]
    mask = np.zeros(lvl.domain.shape, dtype=bool)
    if level >= hierarchy.nlevels - 1:
        return mask
    ratio = hierarchy.ref_ratios[level]
    fine_coarsened = hierarchy[level + 1].boxarray.coarsen(ratio)
    for box in fine_coarsened:
        overlap = box.intersection(lvl.domain)
        if not overlap.is_empty():
            mask[overlap.slices(origin=lvl.domain.lo)] = True
    return mask


def flatten_to_uniform(hierarchy: AmrHierarchy, name: str,
                       fill_value: float = 0.0) -> np.ndarray:
    """Combine every level of one component onto the finest uniform grid.

    Coarse data is up-sampled (piecewise constant) to the finest resolution;
    finer levels overwrite coarser data wherever they exist.  The redundant
    coarse points (e.g. "0D" in Figure 3) therefore never reach the output.
    """
    finest = hierarchy.nlevels - 1
    fine_domain = hierarchy[finest].domain
    out = np.full(fine_domain.shape, fill_value, dtype=np.float64)

    for level, lvl in enumerate(hierarchy.levels):
        ratio_to_finest = hierarchy.ratio_between(level, finest)
        comp = lvl.multifab.component_index(name)
        for fab in lvl.multifab:
            data = fab.component(comp)
            up = upsample_array(data, ratio_to_finest)
            fine_box = fab.box.refine(ratio_to_finest) if ratio_to_finest > 1 else fab.box
            overlap = fine_box.intersection(fine_domain)
            if overlap.is_empty():
                continue
            out[overlap.slices(origin=fine_domain.lo)] = \
                up[overlap.slices(origin=fine_box.lo)]
    return out


def flatten_all_components(hierarchy: AmrHierarchy,
                           fill_value: float = 0.0) -> Dict[str, np.ndarray]:
    """Flatten every component of the hierarchy onto the finest uniform grid."""
    return {name: flatten_to_uniform(hierarchy, name, fill_value=fill_value)
            for name in hierarchy.component_names}

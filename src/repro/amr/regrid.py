"""Cell tagging and box generation (regridding).

AMR applications refine where a criterion fires — e.g. "refine a block when its
maximum value exceeds a threshold" or "when the norm of the gradient is large"
(Figure 1 of the paper).  This module provides

* :func:`tag_cells` — build a boolean tag mask from a field and a criterion,
* :func:`cluster_tags` — cover the tagged cells with rectangular boxes
  (a simplified Berger–Rigoutsos clustering: recursive bisection at the
  weakest signature cut until boxes are efficient enough or small enough),
* :func:`make_fine_boxarray` — the full tagging → clustering → refine pipeline
  that produces the next finer level's :class:`~repro.amr.boxarray.BoxArray`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray

__all__ = ["tag_cells", "cluster_tags", "make_fine_boxarray"]


def tag_cells(field: np.ndarray, criterion: str = "threshold",
              threshold: float | None = None,
              gradient_threshold: float | None = None) -> np.ndarray:
    """Return a boolean mask of cells that should be refined.

    Parameters
    ----------
    field:
        The field driving refinement (e.g. baryon density), any dimension.
    criterion:
        ``"threshold"`` — tag cells whose value exceeds ``threshold``
        (default: the field mean, the example criterion in §2.3);
        ``"gradient"`` — tag cells whose gradient magnitude exceeds
        ``gradient_threshold`` (default: mean + std of the gradient norm).
    """
    field = np.asarray(field, dtype=np.float64)
    if criterion == "threshold":
        if threshold is None:
            threshold = float(field.mean())
        return field > threshold
    if criterion == "gradient":
        grads = np.gradient(field)
        if field.ndim == 1:
            grads = [grads]
        norm = np.sqrt(sum(g * g for g in grads))
        if gradient_threshold is None:
            gradient_threshold = float(norm.mean() + norm.std())
        return norm > gradient_threshold
    raise ValueError(f"unknown tagging criterion {criterion!r}")


def _signature_cut(tags: np.ndarray, axis: int) -> int | None:
    """Find a cut index along ``axis`` using the Berger–Rigoutsos signature.

    Prefers holes (zero signature) and otherwise the strongest inflection of
    the second derivative of the signature; returns None if no useful cut.
    """
    axes = tuple(a for a in range(tags.ndim) if a != axis)
    sig = tags.sum(axis=axes)
    n = sig.shape[0]
    if n < 4:
        return None
    # holes in the signature are ideal cut points
    holes = np.nonzero(sig == 0)[0]
    interior_holes = holes[(holes > 0) & (holes < n - 1)]
    if interior_holes.size:
        # cut at the hole closest to the centre
        return int(interior_holes[np.argmin(np.abs(interior_holes - n // 2))])
    # otherwise use the largest Laplacian sign change (inflection)
    lap = np.diff(sig.astype(np.int64), n=2)
    if lap.size < 2:
        return None
    changes = lap[:-1] * lap[1:]
    idx = np.nonzero(changes < 0)[0]
    if idx.size == 0:
        return None
    strength = np.abs(lap[idx + 1] - lap[idx])
    best = idx[np.argmax(strength)] + 2  # offset: diff(n=2) shifts by 2
    if best <= 1 or best >= n - 1:
        return None
    return int(best)


def _minimal_tag_box(tags: np.ndarray) -> Box | None:
    """Smallest box (in local indices) enclosing the True cells of ``tags``."""
    nz = np.nonzero(tags)
    if nz[0].size == 0:
        return None
    lo = tuple(int(axis.min()) for axis in nz)
    hi = tuple(int(axis.max()) for axis in nz)
    return Box(lo, hi)


def cluster_tags(tags: np.ndarray, origin: Sequence[int] | None = None,
                 max_grid_size: int = 32, min_efficiency: float = 0.7,
                 blocking_factor: int = 4) -> BoxArray:
    """Cover tagged cells with boxes (simplified Berger–Rigoutsos).

    Parameters
    ----------
    tags:
        Boolean tag mask over the (coarse-level) region being considered.
    origin:
        Cell index of ``tags[0, 0, ...]`` in the level's index space.
    max_grid_size:
        Maximum box side length.
    min_efficiency:
        Stop splitting a box once at least this fraction of its cells is tagged.
    blocking_factor:
        Boxes are snapped outward so each side is a multiple of this factor,
        mirroring AMReX's ``blocking_factor`` (which is why unit-block sizes in
        AMR data are "typically a power of two", §3.2 of the paper).
    """
    tags = np.asarray(tags, dtype=bool)
    if origin is None:
        origin = (0,) * tags.ndim
    origin = tuple(int(o) for o in origin)

    out: List[Box] = []

    def recurse(local_box: Box, depth: int) -> None:
        sub = tags[local_box.slices()]
        enclosing = _minimal_tag_box(sub)
        if enclosing is None:
            return
        # shrink to the minimal enclosing box of the tags
        tight = enclosing.shift(local_box.lo)
        sub = tags[tight.slices()]
        efficiency = sub.mean()
        too_big = any(s > max_grid_size for s in tight.shape)
        if (efficiency >= min_efficiency and not too_big) or depth > 32:
            out.append(tight)
            return
        # choose the longest axis to cut
        axis = int(np.argmax(tight.shape))
        cut = _signature_cut(sub, axis)
        if cut is None or cut <= 0 or cut >= tight.shape[axis]:
            cut = tight.shape[axis] // 2
        if cut <= 0 or cut >= tight.shape[axis]:
            out.append(tight)
            return
        lo1, hi1 = list(tight.lo), list(tight.hi)
        lo2, hi2 = list(tight.lo), list(tight.hi)
        hi1[axis] = tight.lo[axis] + cut - 1
        lo2[axis] = tight.lo[axis] + cut
        recurse(Box(tuple(lo1), tuple(hi1)), depth + 1)
        recurse(Box(tuple(lo2), tuple(hi2)), depth + 1)

    recurse(Box.from_shape(tags.shape), 0)

    # snap to the blocking factor and the domain, then enforce max size
    snapped: List[Box] = []
    domain = Box.from_shape(tags.shape)
    for box in out:
        lo = [(l // blocking_factor) * blocking_factor for l in box.lo]
        hi = [((h + blocking_factor) // blocking_factor) * blocking_factor - 1 for h in box.hi]
        snapped_box = Box(tuple(lo), tuple(hi)).intersection(domain)
        if not snapped_box.is_empty():
            snapped.append(snapped_box)

    # remove overlaps introduced by snapping: keep boxes disjoint by
    # subtracting previously accepted boxes from each new candidate.
    disjoint: List[Box] = []
    for box in snapped:
        pieces = [box]
        for accepted in disjoint:
            next_pieces: List[Box] = []
            for piece in pieces:
                next_pieces.extend(piece.difference(accepted))
            pieces = next_pieces
            if not pieces:
                break
        disjoint.extend(pieces)

    shifted = [b.shift(origin) for b in disjoint]
    result = BoxArray(shifted).max_size(max_grid_size)
    return result


def make_fine_boxarray(field: np.ndarray, coarse_domain: Box, ratio: int,
                       criterion: str = "threshold", threshold: float | None = None,
                       gradient_threshold: float | None = None,
                       max_grid_size: int = 32, blocking_factor: int = 4,
                       min_efficiency: float = 0.7) -> BoxArray:
    """Tag a coarse field and produce the next finer level's BoxArray.

    The returned boxes are expressed in the *fine* index space (coarse boxes
    refined by ``ratio``), ready to build an :class:`~repro.amr.hierarchy.AmrLevel`.
    """
    field = np.asarray(field)
    if field.shape != coarse_domain.shape:
        raise ValueError(
            f"field shape {field.shape} must equal the coarse domain shape {coarse_domain.shape}")
    tags = tag_cells(field, criterion=criterion, threshold=threshold,
                     gradient_threshold=gradient_threshold)
    if not tags.any():
        return BoxArray([])
    coarse_ba = cluster_tags(tags, origin=coarse_domain.lo,
                             max_grid_size=max_grid_size,
                             min_efficiency=min_efficiency,
                             blocking_factor=blocking_factor)
    return coarse_ba.refine(ratio)

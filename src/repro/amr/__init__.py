"""AMReX-like patch-based AMR substrate.

This subpackage provides the data structures AMRIC needs from the host AMR
framework:

* :class:`~repro.amr.box.Box` — an axis-aligned rectangle in cell-index space,
  with the intersection/refine/coarsen algebra AMReX exposes.
* :class:`~repro.amr.boxarray.BoxArray` — the collection of boxes that tile one
  AMR level, plus intersection and coverage queries used for redundancy
  removal.
* :class:`~repro.amr.multifab.FArrayBox` / :class:`~repro.amr.multifab.MultiFab`
  — per-box, multi-component floating point data.
* :class:`~repro.amr.hierarchy.AmrHierarchy` — the multi-level dataset an AMR
  application dumps at each plotfile step.
* :mod:`~repro.amr.regrid` — cell tagging and box generation (how levels are
  created from refinement criteria).
* :class:`~repro.amr.distribution.DistributionMapping` — box → MPI-rank
  assignment.
* :mod:`~repro.amr.upsample` — conversion of a hierarchy to a single uniform
  grid for post-analysis and PSNR evaluation.
"""

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.multifab import FArrayBox, MultiFab
from repro.amr.hierarchy import AmrLevel, AmrHierarchy
from repro.amr.distribution import DistributionMapping
from repro.amr.regrid import tag_cells, cluster_tags, make_fine_boxarray
from repro.amr.upsample import flatten_to_uniform, covered_mask

__all__ = [
    "Box",
    "BoxArray",
    "FArrayBox",
    "MultiFab",
    "AmrLevel",
    "AmrHierarchy",
    "DistributionMapping",
    "tag_cells",
    "cluster_tags",
    "make_fine_boxarray",
    "flatten_to_uniform",
    "covered_mask",
]
